"""Shared infrastructure for the figure-regeneration benchmarks.

Every benchmark regenerates one of the paper's figures (or an ablation)
at a configurable scale:

* ``REPRO_BENCH_SCALE=smoke`` (default) — laptop scale: fewer
  datacenters, slots and runs, so the whole suite finishes in minutes.
  The qualitative claims (who wins, direction of deltas) already hold.
* ``REPRO_BENCH_SCALE=paper`` — the full Sec. VII parameters: 20
  datacenters, 100 slots, up to 20 files per slot, 10 runs.

Each benchmark prints a paper-style table (scheduler, mean cost per
slot, 95% CI) and appends a JSON record to
``benchmarks/results/<scale>.jsonl`` for the EXPERIMENTS.md log.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Optional

import pytest

from repro import obs
from repro.baselines import DirectScheduler
from repro.core import PostcardScheduler
from repro.flowbased import FlowBasedScheduler
from repro.sim.runner import ExperimentSetting, SchedulerComparison, run_comparison

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Collector of the most recent run_figure call; report() folds its
#: key counters and span totals into the JSONL record so BENCH_*.json
#: tracks a perf trajectory (pivots/iterations, LP size, build vs.
#: solve split), not just wall time.
_last_collector: Optional[obs.Collector] = None

#: The counters worth tracking across PRs (sums over the whole figure).
_TRACKED_COUNTERS = (
    "lp.highs.iterations",
    "lp.simplex.pivots",
    "lp.ipm.iterations",
    "lp.rows",
    "lp.cols",
    "lp.nonzeros",
    "timeexp.nodes",
    "timeexp.arcs",
    "scheduler.rejected",
    "scheduler.replans",
    "heuristic.admitted",
    "heuristic.rejected",
    "hybrid.escalations",
    "hybrid.fast_slots",
)

#: The spans that answer "where did the time go".  lp.build covers the
#: whole model-construction side (graph + assembly); lp.solve covers
#: the backend side (lowering + optimize, with lp.compile nested).
_TRACKED_SPANS = (
    "timeexp.build",
    "lp.build",
    "lp.compile",
    "lp.solve",
    "scheduler.build_model",
    "scheduler.fastlane",
    "sim.scheduler",
    "sim.audit",
)


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    if scale not in ("smoke", "paper"):
        raise ValueError(f"REPRO_BENCH_SCALE must be smoke|paper, got {scale!r}")
    return scale


def scaled_setting(name: str, capacity: float, max_deadline: int) -> ExperimentSetting:
    """One of the paper's four settings at the active scale.

    Capacities and file sizes are the paper's own (the contention ratio
    between a file and a link is what drives the crossover); the smoke
    scale only shrinks the datacenter count, the slot count and the
    files-per-slot range.

    Deadlines are fixed at ``max_deadline`` for every file.  The paper
    parameterizes each setting only by ``max_k T_k``; drawing
    ``T_k ~ U[1, max]`` would make the largest files (100 GB, deadline
    1 slot) undeliverable under store-and-forward semantics in the
    30 GB/slot settings, so the fixed reading is the one under which
    all schedulers face a fully feasible workload.
    """
    if bench_scale() == "paper":
        return ExperimentSetting(
            name, capacity=capacity, max_deadline=max_deadline
        )
    return ExperimentSetting(
        name,
        capacity=capacity,
        max_deadline=max_deadline,
        num_datacenters=10,
        num_slots=12,
        max_files=10,
    )


def bench_runs() -> int:
    return 10 if bench_scale() == "paper" else 3


def standard_factories():
    """Postcard, both flow-based variants, and the naive baseline.

    The paper's own baseline algorithm is the two-phase decomposition
    (Sec. II-B); the exact flow LP is a strictly stronger baseline we
    add for fairness.
    """
    return {
        "postcard": lambda t, h: PostcardScheduler(t, h, on_infeasible="drop"),
        "flow-based": lambda t, h: FlowBasedScheduler(t, h, on_infeasible="drop"),
        "flow-2phase": lambda t, h: FlowBasedScheduler(
            t, h, variant="two_phase", on_infeasible="drop"
        ),
        "direct": lambda t, h: DirectScheduler(t, h, on_infeasible="drop"),
    }


def run_figure(setting: ExperimentSetting, factories=None) -> SchedulerComparison:
    global _last_collector
    with obs.collecting() as collector:
        comparison = run_comparison(
            setting,
            factories or standard_factories(),
            runs=bench_runs(),
            base_seed=2012,
        )
    _last_collector = collector
    return comparison


def obs_record(collector: Optional[obs.Collector]) -> dict:
    """The observability block appended to each figure's JSONL record."""
    if collector is None:
        return {}
    counters = {
        name: collector.counters[name].total
        for name in _TRACKED_COUNTERS
        if name in collector.counters
    }
    span_seconds = {
        name: round(collector.spans[name].total, 6)
        for name in _TRACKED_SPANS
        if name in collector.spans
    }
    return {"counters": counters, "span_seconds": span_seconds}


def report(figure: str, comparison: SchedulerComparison, paper_claim: str) -> None:
    """Print the regenerated figure and log it for EXPERIMENTS.md."""
    print()
    print(f"=== {figure} ({bench_scale()} scale) — {comparison.setting.describe()}")
    print(f"paper claim: {paper_claim}")
    print(comparison.to_table())

    RESULTS_DIR.mkdir(exist_ok=True)
    record = {
        "figure": figure,
        "scale": bench_scale(),
        "setting": comparison.setting.describe(),
        "runs": comparison.runs,
        "means": {
            name: comparison.interval(name).mean for name in comparison.costs
        },
        "half_widths": {
            name: comparison.interval(name).half_width for name in comparison.costs
        },
        "rejected": {
            name: sum(r.total_rejected for r in results)
            for name, results in comparison.results.items()
        },
    }
    obs_block = obs_record(_last_collector)
    if obs_block:
        record["obs"] = obs_block
    with open(RESULTS_DIR / f"{bench_scale()}.jsonl", "a") as fh:
        fh.write(json.dumps(record) + "\n")


@pytest.fixture(scope="session")
def scale():
    return bench_scale()
