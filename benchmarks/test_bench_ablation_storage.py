"""Ablation A1 — what does store-and-forward itself contribute?

Runs Postcard twice on identical workloads: once with full holdover
(the paper's model) and once with storage disabled everywhere but the
destination (data must keep moving every slot).  The gap is the value
of temporal storage; the paper's thesis predicts it grows when capacity
is limited and deadlines are loose.
"""

import pytest
from conftest import bench_runs, bench_scale, report, scaled_setting

from repro.core import PostcardScheduler
from repro.sim.runner import run_comparison


def _factories():
    return {
        "postcard-full": lambda t, h: PostcardScheduler(t, h, on_infeasible="drop"),
        "postcard-no-storage": lambda t, h: PostcardScheduler(
            t, h, storage="destination_only", on_infeasible="drop"
        ),
    }


def _run(setting):
    return run_comparison(setting, _factories(), runs=bench_runs(), base_seed=2012)


def test_bench_storage_ablation_limited_capacity(benchmark):
    setting = scaled_setting("ablation-storage", capacity=30.0, max_deadline=8)
    comparison = benchmark.pedantic(_run, args=(setting,), rounds=1, iterations=1)
    report(
        "Ablation A1 (c=30, T=8)",
        comparison,
        "full storage <= destination-only storage",
    )
    full = comparison.interval("postcard-full").mean
    hot = comparison.interval("postcard-no-storage").mean
    assert full <= hot * 1.02
    # Storage is actually exercised, not just allowed.
    used = sum(
        r.total_storage_gb_slots for r in comparison.results["postcard-full"]
    )
    assert used > 0
