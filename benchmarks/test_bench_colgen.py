"""Ablation A12 — column generation vs the arc-based flow LP.

At fleet scale the arc LP's variable count is files x links; the
path-based master holds only the few paths that matter.  This bench
confirms the objectives coincide and reports problem sizes and times.
"""

import time

import pytest
from conftest import bench_runs

from repro.analysis import format_table, mean_ci
from repro.core.state import NetworkState
from repro.flowbased import solve_flow_column_generation
from repro.flowbased.model import build_flow_model
from repro.net.generators import complete_topology
from repro.traffic import PaperWorkload


def _one_instance(seed):
    topo = complete_topology(10, capacity=40.0, seed=seed)
    workload = PaperWorkload(topo, max_deadline=4, max_files=8, min_files=8, seed=seed)
    requests = workload.requests_at(0)

    arc_state = NetworkState(topo, horizon=20)
    started = time.perf_counter()
    built = build_flow_model(arc_state, requests)
    _, arc_solution = built.solve()
    arc_seconds = time.perf_counter() - started
    arc_vars = built.model.num_variables

    cg_state = NetworkState(topo, horizon=20)
    started = time.perf_counter()
    result = solve_flow_column_generation(cg_state, requests)
    cg_seconds = time.perf_counter() - started

    assert result.objective == pytest.approx(arc_solution.objective, rel=1e-5)
    return {
        "arc_vars": arc_vars,
        "cg_columns": result.columns_generated,
        "arc_seconds": arc_seconds,
        "cg_seconds": cg_seconds,
        "cg_iterations": result.iterations,
    }


def test_bench_colgen(benchmark):
    def run():
        return [_one_instance(8000 + i) for i in range(bench_runs())]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            "arc LP",
            mean_ci([r["arc_vars"] for r in results]).mean,
            mean_ci([r["arc_seconds"] for r in results]).mean,
            "-",
        ],
        [
            "column generation",
            mean_ci([r["cg_columns"] for r in results]).mean,
            mean_ci([r["cg_seconds"] for r in results]).mean,
            f"{mean_ci([r['cg_iterations'] for r in results]).mean:.1f} iters",
        ],
    ]
    print()
    print("=== Ablation A12: arc LP vs path pricing (same optima, pinned)")
    print(format_table(["formulation", "variables/columns", "seconds", "note"], rows))

    # The master stays tiny relative to the arc formulation.
    assert (
        mean_ci([r["cg_columns"] for r in results]).mean
        < mean_ci([r["arc_vars"] for r in results]).mean / 3
    )
