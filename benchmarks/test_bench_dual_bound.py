"""Ablation A13 — certifying schedules without the LP.

The subgradient dual bound brackets the optimum from below with only
shortest-path computations; the greedy heuristic brackets from above.
Together they certify heuristic quality LP-free:

    dual bound <= LP optimum <= greedy cost

This bench reports both gaps per seed (tightness of the bound, and the
certified optimality factor of the greedy schedule).
"""

import pytest
from conftest import bench_runs

from repro.analysis import format_table, mean_ci
from repro.baselines import GreedyStoreAndForwardScheduler
from repro.core import build_postcard_model
from repro.core.bounds import dual_lower_bound
from repro.core.state import NetworkState
from repro.net.generators import complete_topology
from repro.traffic import PaperWorkload


def _one_instance(seed):
    topo = complete_topology(6, capacity=30.0, seed=seed)
    workload = PaperWorkload(topo, max_deadline=4, max_files=5, seed=seed + 11)
    requests = workload.requests_at(0)

    lp_state = NetworkState(topo, horizon=30)
    _, solution = build_postcard_model(lp_state, requests).solve()

    bound_state = NetworkState(topo, horizon=30)
    bound = dual_lower_bound(bound_state, requests, iterations=300)

    greedy = GreedyStoreAndForwardScheduler(topo, horizon=30, on_infeasible="drop")
    greedy.on_slot(0, [r.with_release(0) for r in requests])
    greedy_cost = greedy.state.current_cost_per_slot()

    return bound.lower_bound, solution.objective, greedy_cost


def test_bench_dual_bound(benchmark):
    def run():
        return [_one_instance(9000 + i) for i in range(bench_runs())]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for bound, lp, greedy in results:
        rows.append(
            [bound, lp, greedy, f"{lp / bound:.3f}", f"{greedy / bound:.3f}"]
        )
    print()
    print("=== Ablation A13: dual bound <= LP <= greedy (per seed)")
    print(
        format_table(
            ["dual bound", "LP optimum", "greedy", "LP/bound", "certified factor"],
            rows,
        )
    )

    for bound, lp, greedy in results:
        assert bound <= lp + 1e-6
        assert lp <= greedy + 1e-6
    # The bound is useful, not vacuous: within 25% of the LP on average.
    mean_gap = mean_ci([lp / bound for bound, lp, _g in results]).mean
    assert mean_gap < 1.25
