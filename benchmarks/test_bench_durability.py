"""Durability cost — O(1) WAL journaling vs. O(state) snapshot rewrites.

Runs the measurement core of ``scripts/bench_durability.py`` at a
reduced scale and asserts the two claims the committed
``results/BENCH_durability.json`` records at full scale: durable bytes
per request stay flat in N under the write-ahead log, and grow with N
under the legacy snapshot-every-slot discipline.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from bench_durability import evaluate_gates, run_points  # noqa: E402


def test_bench_durability_wal_is_flat(tmp_path):
    points = run_points([100, 300], batch=10, checkpoint_every=10,
                        workdir=str(tmp_path))
    gates = evaluate_gates(points, max_wal_bytes=4096.0, max_growth=1.25)
    assert gates["wal_bytes_per_request"]["ok"], gates
    assert gates["wal_flat_in_n"]["ok"], gates
    assert gates["legacy_grows_in_n"]["ok"], gates
    # Every admit record is small and bounded: the O(1) claim per record.
    for point in points:
        assert point["wal"]["admit_bytes_max"] < 1024
