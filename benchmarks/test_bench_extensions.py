"""Ablation A4 — the Sec. VI extension problems.

(a) Bulk backhaul: after an online Postcard day, how much backup
    volume rides entirely on leftover paid bandwidth?
(b) Budget admission: how many files fit under shrinking budgets, and
    how tight is the LP-relaxation upper bound?
"""

import pytest

from repro.analysis import format_table
from repro.core import PostcardScheduler
from repro.extensions import (
    maximize_bulk_throughput,
    maximize_transfers_under_budget,
)
from repro.net.generators import complete_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload, TransferRequest


def _warm_state():
    """A network state after a short online day of paid traffic."""
    topo = complete_topology(6, capacity=50.0, seed=23)
    scheduler = PostcardScheduler(topo, horizon=60, on_infeasible="drop")
    workload = PaperWorkload(topo, max_deadline=4, max_files=5, seed=11)
    Simulation(scheduler, workload, num_slots=6).run()
    return scheduler.state


def test_bench_bulk_backhaul(benchmark):
    def run():
        state = _warm_state()
        backups = [
            TransferRequest(0, 3, 400.0, 10, release_slot=7),
            TransferRequest(1, 4, 400.0, 10, release_slot=7),
            TransferRequest(2, 5, 400.0, 10, release_slot=7),
        ]
        result = maximize_bulk_throughput(state, backups)
        return state, result

    state, result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("=== Ablation A4a: bulk backhaul over leftover bandwidth")
    print(
        f"delivered {result.total_delivered:.0f} GB of 1200 GB requested, "
        f"at zero added cost"
    )
    assert result.total_delivered > 0
    # The defining property: no link's charge rises.
    for (src, dst, slot), volume in result.schedule.link_slot_volumes().items():
        assert (
            state.committed_volume(src, dst, slot) + volume
            <= state.charged_volume(src, dst) + 1e-6
        )


def test_bench_budget_admission(benchmark):
    def run():
        state = _warm_state()
        candidates = [
            TransferRequest(i % 6, (i + 2) % 6, 30.0 + 10 * i, 4, release_slot=7)
            for i in range(6)
        ]
        baseline = state.current_cost_per_slot()
        rows = []
        for budget_factor in (1.05, 1.2, 1.5, 3.0):
            budget = baseline * budget_factor
            result = maximize_transfers_under_budget(state, candidates, budget)
            rows.append(
                [
                    f"{budget_factor:.2f}x",
                    result.admitted_count,
                    result.fractional_optimum,
                    result.cost_per_slot,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("=== Ablation A4b: files admitted under a cost budget")
    print(format_table(["budget", "admitted", "LP bound", "cost/slot"], rows))
    admitted = [r[1] for r in rows]
    # More budget never admits fewer files, and the LP bound holds.
    assert admitted == sorted(admitted)
    for row in rows:
        assert row[1] <= row[2] + 1e-6
