"""Fabric capacity — near-linear shard scaling, p99 decisions under a tick.

Two layers of defense around the broker-fabric exit criterion:

* The committed ``results/BENCH_fabric.json`` (written by
  ``scripts/bench_fabric.py`` at full scale: 1/2/4 shard subprocesses,
  closed loop at 8 outstanding per shard) must carry passing gates —
  4-shard capacity at least 3x single-shard, every shard's p99
  decision latency under the 250 ms tick — and the gates must
  *recompute* from the recorded sweep, so a hand-edited record cannot
  sneak through.
* The measurement core re-runs here at reduced scale (1 vs 2 shards,
  fewer requests) and must still show shards scaling: two shards
  clearly beat one at the same per-shard concurrency.
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))

from bench_fabric import (  # noqa: E402
    TICK_SECONDS,
    evaluate_gates,
    run_point,
)

RECORD = pathlib.Path(__file__).parent / "results" / "BENCH_fabric.json"


def test_committed_fabric_record_gates():
    record = json.loads(RECORD.read_text())
    assert record["benchmark"] == "fabric-capacity"
    shard_counts = [point["shards"] for point in record["sweep"]]
    assert 1 in shard_counts and 4 in shard_counts
    gates = record["gates"]
    assert gates["ok"], gates
    # Gates recompute from the sweep itself — the record is internally
    # consistent, not just asserted.
    recomputed = evaluate_gates(
        record["sweep"],
        min_speedup=3.0,
        tick_seconds=record["scenario"]["tick_seconds"],
    )
    assert recomputed["ok"], recomputed
    assert recomputed["linear_scaling"]["speedup"] >= 3.0
    for point in record["sweep"]:
        assert point["fleet"]["failed"] == 0
        assert point["fleet"]["drained"] is True
        for name, shard in point["per_shard"].items():
            if shard["submitted"]:
                assert shard["decision_p99_s"] < record["scenario"]["tick_seconds"], (
                    point["shards"], name, shard["decision_p99_s"],
                )


def test_fabric_capacity_scales_live(tmp_path):
    one = run_point(1, per_shard_requests=40, outstanding=8,
                    workdir=str(tmp_path))
    two = run_point(2, per_shard_requests=40, outstanding=8,
                    workdir=str(tmp_path))
    assert one["fleet"]["failed"] == 0 and two["fleet"]["failed"] == 0
    assert one["fleet"]["drained"] and two["fleet"]["drained"]
    # Same per-shard pressure, twice the shards: comfortably more than
    # half a shard of headroom even on a noisy runner.
    assert two["fleet"]["capacity_per_s"] >= 1.5 * one["fleet"]["capacity_per_s"]
    for point in (one, two):
        for shard in point["per_shard"].values():
            if shard["submitted"]:
                assert shard["decision_p99_s"] < TICK_SECONDS
