"""Fast-path ablation — what do incremental assembly and warm starts buy?

Runs Postcard twice on identical workloads: once with the production
fast path (cached time-expanded arcs, direct assembly, warm-start
hints — the scheduler defaults) and once from scratch every slot
(``postcard-scratch`` in the registry).  The two must land on
*identical* costs — the fast path is an implementation change, not a
policy change — while the tracked ``lp.build``/``lp.solve`` spans in
the JSONL record show where the time went.

The committed ``results/BENCH_fastpath.json`` (written by
``scripts/bench_fastpath.py``) holds the reference timing record for
the default scenario; this benchmark tracks the same claim inside the
figure-regeneration harness.
"""

import pytest
from conftest import bench_runs, report, scaled_setting

from repro.registry import scheduler_factory
from repro.sim.runner import run_comparison


def _factories():
    return {
        "postcard": scheduler_factory("postcard"),
        "postcard-scratch": scheduler_factory("postcard-scratch"),
    }


def _run(setting):
    return run_comparison(setting, _factories(), runs=bench_runs(), base_seed=2012)


def test_bench_fastpath_identical_costs(benchmark):
    setting = scaled_setting("fastpath", capacity=100.0, max_deadline=3)
    comparison = benchmark.pedantic(_run, args=(setting,), rounds=1, iterations=1)
    report(
        "Fast path (incremental + warm vs. from-scratch)",
        comparison,
        "identical schedules, lower build+solve time",
    )
    fast = comparison.results["postcard"]
    scratch = comparison.results["postcard-scratch"]
    # Bit-identical run for run, not merely equal on average.
    for fast_run, scratch_run in zip(fast, scratch):
        assert fast_run.final_cost_per_slot == scratch_run.final_cost_per_slot
        assert list(fast_run.cost_trajectory()) == list(
            scratch_run.cost_trajectory()
        )
