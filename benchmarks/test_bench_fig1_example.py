"""Fig. 1 — the motivating example, regenerated exactly.

Paper: sending 6 MB from D2 to D3 within 15 minutes costs 20 per
interval on the direct link, but only 12 per interval when split and
relayed through D1 (prices 1 and 3 vs 10).
"""

import pytest

from repro.baselines import DirectScheduler
from repro.core import PostcardScheduler
from repro.net.generators import fig1_topology
from repro.traffic import TransferRequest


def _run_fig1():
    request = TransferRequest(2, 3, 6.0, 3, release_slot=0)
    direct = DirectScheduler(fig1_topology(), horizon=100)
    direct.on_slot(0, [request.with_release(0)])
    postcard = PostcardScheduler(fig1_topology(), horizon=100)
    postcard.on_slot(0, [request.with_release(0)])
    return (
        direct.state.current_cost_per_slot(),
        postcard.state.current_cost_per_slot(),
    )


def test_bench_fig1(benchmark):
    direct_cost, postcard_cost = benchmark(_run_fig1)
    print()
    print("=== Fig. 1 motivating example")
    print(f"direct   (paper: 20): {direct_cost:.2f} per interval")
    print(f"postcard (paper: 12): {postcard_cost:.2f} per interval")
    assert direct_cost == pytest.approx(20.0)
    assert postcard_cost == pytest.approx(12.0)
