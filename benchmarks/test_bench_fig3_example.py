"""Fig. 3 — the worked time-expanded example, regenerated exactly.

Paper: File 1 = (2->4, 8 GB, T=4) and File 2 = (1->4, 10 GB, T=2) on
the 4-datacenter network with per-slot capacity 5.  Costs per interval:
naive 52, flow-based 50, Postcard 32.67.
"""

import pytest

from repro.baselines import DirectScheduler
from repro.core import PostcardScheduler
from repro.flowbased import FlowBasedScheduler
from repro.net.generators import fig3_topology
from repro.traffic import TransferRequest


def _files():
    return [
        TransferRequest(2, 4, 8.0, 4, release_slot=3),
        TransferRequest(1, 4, 10.0, 2, release_slot=3),
    ]


def _run_fig3():
    postcard = PostcardScheduler(fig3_topology(), horizon=100)
    postcard.on_slot(3, _files())
    flow = FlowBasedScheduler(fig3_topology(), horizon=100)
    flow.on_slot(3, _files())
    direct = DirectScheduler(fig3_topology(), horizon=100)
    direct.on_slot(3, _files())
    return (
        postcard.state.current_cost_per_slot(),
        flow.state.current_cost_per_slot(),
        direct.state.current_cost_per_slot(),
    )


def test_bench_fig3(benchmark):
    postcard_cost, flow_cost, direct_cost = benchmark(_run_fig3)
    print()
    print("=== Fig. 3 worked example")
    print(f"postcard   (paper: 32.67): {postcard_cost:.2f} per interval")
    print(f"flow-based (paper: 50):    {flow_cost:.2f} per interval")
    print(f"naive      (paper: 52):    {direct_cost:.2f} per interval")
    assert postcard_cost == pytest.approx(98.0 / 3.0)
    assert flow_cost == pytest.approx(50.0)
    assert direct_cost == pytest.approx(52.0)
