"""Fig. 4 — ample capacity (c = 100 GB/slot), urgent files (max T = 3).

Paper claim: "the flow-based approach outperforms Postcard
significantly when there are sufficient link capacities" — the
constant-rate fluid model spreads each file thinly, while
store-and-forward relaying is bursty and pays for higher peaks.
"""

from conftest import report, run_figure, scaled_setting


def test_bench_fig4(benchmark):
    setting = scaled_setting("fig4", capacity=100.0, max_deadline=3)
    comparison = benchmark.pedantic(
        run_figure, args=(setting,), rounds=1, iterations=1
    )
    report(
        "Fig. 4",
        comparison,
        "flow-based < postcard (ample capacity, urgent files)",
    )
    assert comparison.interval("flow-based").mean <= comparison.interval(
        "postcard"
    ).mean * 1.02
