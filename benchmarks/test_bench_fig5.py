"""Fig. 5 — ample capacity (c = 100 GB/slot), delay-tolerant (max T = 8).

Paper claims: the flow-based approach still wins under ample capacity,
but "Postcard leads to lower costs when there are more delay tolerant
files in the system" — its cost falls sharply relative to Fig. 4.

Reproduction note (see EXPERIMENTS.md): the second claim reproduces
cleanly.  The first does not under honest accounting — with a fully
delay-tolerant workload our exact online Postcard overtakes even the
exact flow LP at T = 8, because the store-and-forward pipelining
penalty (peak F/(T-1) per hop instead of F/T) vanishes as T grows
while the time-shifting gains keep accruing.  The asserted invariant
here is the delay-tolerance claim; the winner is recorded, not forced.
"""

from conftest import report, run_figure, scaled_setting


def test_bench_fig5(benchmark):
    setting = scaled_setting("fig5", capacity=100.0, max_deadline=8)
    comparison = benchmark.pedantic(
        run_figure, args=(setting,), rounds=1, iterations=1
    )
    report(
        "Fig. 5",
        comparison,
        "postcard cheaper than its own Fig. 4 cost (delay tolerance pays)",
    )

    # Cross-figure claim: delay tolerance lowers Postcard's cost.
    fig4 = run_figure(scaled_setting("fig4", capacity=100.0, max_deadline=3))
    assert (
        comparison.interval("postcard").mean
        <= fig4.interval("postcard").mean * 1.02
    )
    # And the flow-vs-postcard gap narrows (or inverts) from Fig. 4 to
    # Fig. 5 — the direction the paper's argument predicts.
    gap4 = fig4.interval("postcard").mean / fig4.interval("flow-based").mean
    gap5 = (
        comparison.interval("postcard").mean
        / comparison.interval("flow-based").mean
    )
    assert gap5 <= gap4 * 1.02
