"""Fig. 6 — limited capacity (c = 30 GB/slot), urgent files (max T = 3).

Paper claim: "Postcard demonstrates superior performance when link
capacities are throttled" — cheap links get occupied by urgent traffic
for a few slots, and only store-and-forward can wait for them to free
up while still meeting deadlines.

The asserted comparison is against the paper's own baseline algorithm,
the two-phase decomposition; the exact flow LP (a stronger baseline
than the paper used) is reported alongside.
"""

from conftest import report, run_figure, scaled_setting


def test_bench_fig6(benchmark):
    setting = scaled_setting("fig6", capacity=30.0, max_deadline=3)
    comparison = benchmark.pedantic(
        run_figure, args=(setting,), rounds=1, iterations=1
    )
    report(
        "Fig. 6",
        comparison,
        "postcard < flow-based (limited capacity, urgent files)",
    )
    assert comparison.interval("postcard").mean <= comparison.interval(
        "flow-2phase"
    ).mean * 1.02
