"""Fig. 7 — limited capacity (c = 30 GB/slot), delay-tolerant (max T = 8).

Paper claims: Postcard still wins under limited capacity, and both
approaches get cheaper than in the urgent setting of Fig. 6 — more
delay tolerance means more "time-shifting" opportunities.
"""

from conftest import report, run_figure, scaled_setting


def test_bench_fig7(benchmark):
    setting = scaled_setting("fig7", capacity=30.0, max_deadline=8)
    comparison = benchmark.pedantic(
        run_figure, args=(setting,), rounds=1, iterations=1
    )
    report(
        "Fig. 7",
        comparison,
        "postcard < flow-based; both cheaper than their Fig. 6 costs",
    )
    assert comparison.interval("postcard").mean <= comparison.interval(
        "flow-2phase"
    ).mean * 1.02
    assert comparison.interval("postcard").mean <= comparison.interval(
        "flow-based"
    ).mean * 1.02

    fig6 = run_figure(scaled_setting("fig6", capacity=30.0, max_deadline=3))
    assert (
        comparison.interval("postcard").mean
        <= fig6.interval("postcard").mean * 1.02
    )
    assert (
        comparison.interval("flow-based").mean
        <= fig6.interval("flow-based").mean * 1.02
    )
