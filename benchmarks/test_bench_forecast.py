"""Forecast-driven proactive scheduling — cheaper bills, equal admission.

Two layers of defense around the forecast exit criterion:

* The committed ``results/BENCH_forecast.json`` (written by
  ``scripts/bench_forecast.py`` at full scale: 4 diurnal days over a
  3-DC mesh, an urgent short-deadline stream merged with day-deadline
  bulk, daily billing) must carry passing gates — the forecast-aware
  hybrid at least 5% cheaper than the reactive hybrid with identical
  admission, zero lateness, and no stability-guard trips — plus a
  seed sweep in which every draw keeps the direction.
* The comparison core re-runs here at reduced scale (two days) so a
  regression in the reservation plumbing fails in CI even before the
  record is regenerated.  The 5% margin is not re-gated live (it
  grows with the number of billed days); direction and admission
  equality are.
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))

from bench_forecast import WORKLOAD_SEED, compare  # noqa: E402

RECORD = pathlib.Path(__file__).parent / "results" / "BENCH_forecast.json"

MIN_REDUCTION_PERCENT = 5.0


def test_committed_forecast_record_gates():
    record = json.loads(RECORD.read_text())
    assert record["benchmark"] == "forecast"
    headline = record["headline"]
    assert headline["reduction_percent"] >= MIN_REDUCTION_PERCENT, headline
    # Equal admission: the forecast shapes placement, never admission.
    assert headline["reactive_rejected"] == headline["forecast_rejected"]
    assert headline["reactive_max_lateness"] == 0
    assert headline["forecast_max_lateness"] == 0
    assert headline["guard_trips"] == 0
    # The headline number is internally consistent with the raw bills,
    # so a hand-edited record cannot sneak through.
    reactive = headline["reactive_bill"]
    forecast = headline["forecast_bill"]
    assert reactive > 0 and forecast > 0
    recomputed = 100.0 * (1.0 - forecast / reactive)
    assert abs(recomputed - headline["reduction_percent"]) < 0.1, headline
    # The sweep must keep the direction on every seed, at equal
    # admission throughout.
    sweep = record["seed_sweep"]
    assert len(sweep) >= 3
    assert any(row["workload_seed"] == WORKLOAD_SEED for row in sweep)
    for row in sweep:
        assert row["reduction_percent"] > 0, row
        assert row["reactive_rejected"] == row["forecast_rejected"], row
        assert row["guard_trips"] == 0, row


def test_forecast_beats_reactive_live():
    """Reduced-scale re-run: direction and admission equality in CI."""
    row = compare(WORKLOAD_SEED, days=2)
    assert row["reactive_rejected"] == row["forecast_rejected"], row
    assert row["forecast_max_lateness"] == 0, row
    assert row["guard_trips"] == 0, row
    assert row["forecast_bill"] < row["reactive_bill"], row
