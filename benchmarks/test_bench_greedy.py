"""Ablation A8 — LP optimality vs heuristic speed.

The greedy store-and-forward heuristic replaces the per-slot LP with
k-cheapest-path search and headroom-first placement.  This bench
measures both sides of the trade on identical workloads: the cost gap
it concedes and the wall-clock factor it saves.
"""

import pytest
from conftest import bench_runs

from repro.analysis import format_table, mean_ci
from repro.baselines import GreedyStoreAndForwardScheduler
from repro.core import PostcardScheduler
from repro.net.generators import complete_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload


def _run(seed):
    topo = complete_topology(8, capacity=30.0, seed=seed)
    out = {}
    for name, factory in {
        "postcard-lp": lambda: PostcardScheduler(topo, 30, on_infeasible="drop"),
        "greedy-s&f": lambda: GreedyStoreAndForwardScheduler(
            topo, 30, on_infeasible="drop"
        ),
    }.items():
        scheduler = factory()
        workload = PaperWorkload(topo, max_deadline=6, max_files=6, seed=seed + 70)
        result = Simulation(scheduler, workload, num_slots=8).run()
        out[name] = (
            scheduler.state.current_cost_per_slot(),
            result.solve_seconds_total,
            result.total_rejected,
        )
    return out


def test_bench_greedy_vs_lp(benchmark):
    def run():
        return [_run(5000 + i) for i in range(bench_runs())]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    stats = {}
    for name in ("postcard-lp", "greedy-s&f"):
        cost = mean_ci([r[name][0] for r in results])
        seconds = mean_ci([r[name][1] for r in results])
        rejected = sum(r[name][2] for r in results)
        stats[name] = (cost.mean, seconds.mean)
        rows.append([name, cost.mean, cost.half_width, seconds.mean, rejected])
    print()
    print("=== Ablation A8: exact LP vs greedy heuristic")
    print(
        format_table(
            ["scheduler", "cost/slot", "95% CI +/-", "solve s", "rejected"], rows
        )
    )
    gap = stats["greedy-s&f"][0] / stats["postcard-lp"][0]
    speedup = stats["postcard-lp"][1] / max(stats["greedy-s&f"][1], 1e-9)
    print(f"greedy concedes {gap - 1:.1%} cost for a {speedup:.0f}x speedup")

    # The LP is the optimum per slot: the heuristic cannot beat it on
    # average (tiny slack for rejection asymmetries).
    assert stats["postcard-lp"][0] <= stats["greedy-s&f"][0] * 1.02
    assert speedup > 2.0
