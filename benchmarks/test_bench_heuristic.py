"""Heuristic fast lane vs. hybrid vs. the Postcard LP (PR 4).

Runs the three schedulers on identical workloads through the
figure-regeneration harness.  The claims under track:

* the fast lane never violates a deadline (the harness audits every
  run) and admits the whole feasible Sec. VII workload;
* its cost stays within a bounded factor of the LP (ALAP packing
  trades bill for speed), and the hybrid closes most of that gap by
  escalating pressured slots;
* the fast lane's decision time is far below the LP's solve time.

The committed ``results/BENCH_heuristic.json`` (written by
``scripts/bench_heuristic.py``) holds the single-slot scaling sweep —
50 to 2000 requests per slot — behind the "near-linear admission"
claim; this benchmark tracks the cost side at figure scale.
"""

import pytest
from conftest import bench_runs, report, scaled_setting

from repro.registry import scheduler_factory
from repro.sim.runner import run_comparison


def _factories():
    return {
        "postcard": scheduler_factory("postcard"),
        "heuristic": scheduler_factory("heuristic"),
        "hybrid": scheduler_factory("hybrid"),
    }


def _run(setting):
    return run_comparison(setting, _factories(), runs=bench_runs(), base_seed=2012)


def test_bench_heuristic_cost_and_speed(benchmark):
    setting = scaled_setting("heuristic", capacity=100.0, max_deadline=3)
    comparison = benchmark.pedantic(_run, args=(setting,), rounds=1, iterations=1)
    report(
        "Fast lane vs. hybrid vs. LP",
        comparison,
        "heuristic within 2.5x of LP cost, hybrid within 1.6x, "
        "both orders of magnitude faster per slot",
    )
    # Deadline guarantee: the audit inside run_comparison already
    # raised on any late completion; admission must also be total on
    # the feasible Sec. VII workload.
    for results in comparison.results.values():
        assert all(r.total_rejected == 0 for r in results)
        assert all(r.max_lateness() == 0 for r in results)

    # Cost pins (mirror tests/test_hybrid.py on the bench geometry).
    assert comparison.ratio("heuristic", "postcard") <= 2.5
    assert comparison.ratio("hybrid", "postcard") <= 1.6

    # The fast lane decides in a fraction of the LP's solve time.
    lp_seconds = sum(
        r.solve_seconds_total for r in comparison.results["postcard"]
    )
    fast_seconds = sum(
        r.solve_seconds_total for r in comparison.results["heuristic"]
    )
    assert fast_seconds < lp_seconds
