"""Ablation A10 — where does the Postcard-vs-flow crossover live?

Sec. VII fixes the load (1-20 files/slot) and varies capacity; here we
fix limited capacity (c = 30) and sweep the offered load instead.  The
paper's argument predicts the store-and-forward advantage grows with
contention: more concurrent files means cheap links are more often
transiently occupied, which only a time-shifting scheduler can wait
out.
"""

import pytest
from conftest import bench_runs

from repro.analysis import format_table, mean_ci
from repro.core import PostcardScheduler
from repro.flowbased import FlowBasedScheduler
from repro.sim.runner import ExperimentSetting, run_comparison

LOADS = [3, 6, 12]


def _comparison(max_files):
    setting = ExperimentSetting(
        f"load{max_files}",
        capacity=30.0,
        max_deadline=4,
        num_datacenters=8,
        num_slots=10,
        min_files=max(1, max_files // 2),
        max_files=max_files,
    )
    factories = {
        "postcard": lambda t, h: PostcardScheduler(t, h, on_infeasible="drop"),
        "flow-based": lambda t, h: FlowBasedScheduler(t, h, on_infeasible="drop"),
    }
    return run_comparison(setting, factories, runs=bench_runs(), base_seed=2012)


def test_bench_load_sweep(benchmark):
    def run():
        return {load: _comparison(load) for load in LOADS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    ratios = {}
    for load in LOADS:
        comparison = results[load]
        post = comparison.interval("postcard")
        flow = comparison.interval("flow-based")
        ratios[load] = post.mean / flow.mean
        rows.append([f"{load} files/slot", post.mean, flow.mean, f"{ratios[load]:.3f}"])
    print()
    print("=== Ablation A10: offered-load sweep at c=30 GB/slot")
    print(
        format_table(
            ["load", "postcard", "flow-based", "post/flow ratio"], rows
        )
    )

    # The relative position of Postcard improves (ratio non-increasing,
    # modulo noise) as contention rises.
    assert ratios[LOADS[-1]] <= ratios[LOADS[0]] * 1.05
