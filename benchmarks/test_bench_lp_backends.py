"""Ablation A2 — LP backend cross-check and relative speed.

The pure-Python simplex must agree with HiGHS on a real (small)
Postcard instance; HiGHS should be the faster backend on anything
non-trivial, which is why it is the default.
"""

import pytest

from repro.core import PostcardScheduler
from repro.core.formulation import build_postcard_model
from repro.core.state import NetworkState
from repro.net.generators import complete_topology
from repro.traffic import TransferRequest


def _instance():
    topo = complete_topology(4, capacity=25.0, seed=17)
    state = NetworkState(topo, horizon=20)
    requests = [
        TransferRequest(0, 1, 20.0, 3, release_slot=0),
        TransferRequest(1, 2, 15.0, 3, release_slot=0),
        TransferRequest(2, 3, 30.0, 4, release_slot=0),
    ]
    return state, requests


@pytest.mark.parametrize("backend", ["highs", "simplex", "interior_point"])
def test_bench_backend(benchmark, backend):
    def solve():
        state, requests = _instance()
        built = build_postcard_model(state, requests)
        _, solution = built.solve(backend=backend)
        return solution.objective

    objective = benchmark(solve)
    # Cross-check against the other backend once.
    state, requests = _instance()
    other = "simplex" if backend == "highs" else "highs"
    _, reference = build_postcard_model(state, requests).solve(backend=other)
    assert objective == pytest.approx(reference.objective, rel=1e-6, abs=1e-6)
