"""Ablation A17 — what does multicast sharing save over the paper's
per-destination expansion?

Sec. III replicates a one-to-many job as independent files; shared-
upstream multicast carries common prefixes once.  Sweep the fan-out and
report both costs; the saving should grow with the destination count.
"""

import pytest
from conftest import bench_runs

from repro.analysis import format_table, mean_ci
from repro.core import PostcardScheduler
from repro.core.state import NetworkState
from repro.extensions import solve_multicast
from repro.net.generators import complete_topology
from repro.traffic import expand_multicast

FANOUTS = [1, 2, 4, 6]


def _one(fanout, seed):
    topo = complete_topology(8, capacity=40.0, seed=seed)
    destinations = list(range(1, fanout + 1))

    state = NetworkState(topo, horizon=20)
    shared = solve_multicast(state, 0, destinations, 30.0, deadline_slots=4)

    separate = PostcardScheduler(
        complete_topology(8, capacity=40.0, seed=seed), horizon=20
    )
    separate.on_slot(0, expand_multicast(0, destinations, 30.0, 4, release_slot=0))
    return shared.cost_per_slot, separate.state.current_cost_per_slot()


def test_bench_multicast(benchmark):
    def run():
        out = {}
        for fanout in FANOUTS:
            out[fanout] = [_one(fanout, 9900 + i) for i in range(bench_runs())]
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    savings = {}
    for fanout in FANOUTS:
        shared = mean_ci([s for s, _e in results[fanout]]).mean
        expanded = mean_ci([e for _s, e in results[fanout]]).mean
        savings[fanout] = 1.0 - shared / expanded
        rows.append([fanout, shared, expanded, f"{savings[fanout]:.1%}"])
    print()
    print("=== Ablation A17: shared multicast vs per-destination files")
    print(
        format_table(
            ["destinations", "multicast", "separate files", "saving"], rows
        )
    )

    # Sharing can never lose, and the saving grows with fan-out.
    for fanout in FANOUTS:
        for shared, expanded in results[fanout]:
            assert shared <= expanded + 1e-6
    assert savings[FANOUTS[-1]] >= savings[FANOUTS[0]] - 1e-9