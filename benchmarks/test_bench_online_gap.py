"""Ablation A6 — the price of being online.

Postcard commits each slot's schedule without knowing future arrivals.
This bench measures, on identical instances:

* the myopic online controller (the paper's setting),
* lookahead controllers previewing 2 and 4 future slots,
* the offline hindsight optimum (all files in one LP).

The empirical competitive ratio (online / offline) quantifies how much
the unknown future costs; lookahead should sit between the two.
"""

import pytest
from conftest import bench_runs

from repro.analysis import format_table, mean_ci
from repro.core import (
    LookaheadPostcardScheduler,
    PostcardScheduler,
    solve_offline,
)
from repro.net.generators import complete_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload, TraceWorkload


def _one_instance(seed):
    topo = complete_topology(6, capacity=30.0, seed=seed)
    slots = 6
    horizon = slots + 8
    base = PaperWorkload(topo, max_deadline=6, max_files=4, seed=seed + 500)
    all_requests = base.all_requests(slots)

    costs = {}
    online = PostcardScheduler(topo, horizon=horizon, on_infeasible="drop")
    Simulation(online, TraceWorkload(all_requests), slots).run()
    costs["online"] = online.state.current_cost_per_slot()

    for window in (2, 4):
        trace = TraceWorkload(all_requests)
        ahead = LookaheadPostcardScheduler(
            topo, horizon=horizon, preview=trace.requests_at,
            lookahead=window, on_infeasible="drop",
        )
        Simulation(ahead, trace, slots).run()
        costs[f"lookahead-{window}"] = ahead.state.current_cost_per_slot()

    offline = solve_offline(topo, all_requests, horizon=horizon)
    costs["offline"] = offline.cost_per_slot
    return costs


def test_bench_online_gap(benchmark):
    def run():
        return [_one_instance(3000 + i) for i in range(bench_runs())]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    names = ["online", "lookahead-2", "lookahead-4", "offline"]
    rows = []
    means = {}
    for name in names:
        ci = mean_ci([r[name] for r in results])
        means[name] = ci.mean
        ratio = ci.mean / mean_ci([r["offline"] for r in results]).mean
        rows.append([name, ci.mean, ci.half_width, f"{ratio:.3f}"])
    print()
    print("=== Ablation A6: online vs lookahead vs offline optimum")
    print(format_table(["controller", "cost/slot", "95% CI +/-", "vs offline"], rows))

    # Offline bounds everything; per-instance (same traffic!), not just
    # on averages.
    for r in results:
        for name in names[:-1]:
            assert r[name] >= r["offline"] - 1e-6
    # Deep lookahead should not lose to myopia on average (small slack
    # for LP-degeneracy tie-breaks).
    assert means["lookahead-4"] <= means["online"] * 1.05
