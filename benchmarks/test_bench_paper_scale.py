"""Ablation A14 — the paper's tractability claim, at the paper's scale.

The whole point of the time-expanded simplification (Sec. V) is that
the resulting problem is *solvable with standard machinery*.  This
bench builds and solves exactly one online round at full Sec. VII
scale — 20 datacenters (380 links), 20 files of 10-100 GB, maximum
tolerable transfer time 8 slots — and reports LP size and wall-clock
time.  This is the per-slot cost a provider would pay to run Postcard
live; at 5-minute slots, anything under a couple of minutes is
real-time capable with two orders of magnitude to spare.
"""

import time

import pytest

from repro.analysis import format_table
from repro.core import build_postcard_model
from repro.core.state import NetworkState
from repro.net.generators import paper_topology
from repro.traffic import PaperWorkload


def _paper_slot(max_deadline):
    topology = paper_topology(capacity=30.0, seed=2012)
    state = NetworkState(topology, horizon=120)
    workload = PaperWorkload(
        topology, max_deadline=max_deadline, min_files=20, max_files=20, seed=7
    )
    requests = workload.requests_at(0)

    build_start = time.perf_counter()
    built = build_postcard_model(state, requests)
    build_seconds = time.perf_counter() - build_start

    solve_start = time.perf_counter()
    schedule, solution = built.solve()
    solve_seconds = time.perf_counter() - solve_start

    schedule.validate(requests, capacity_fn=state.residual_capacity)
    return {
        "variables": built.model.num_variables,
        "constraints": built.model.num_constraints,
        "build_s": build_seconds,
        "solve_s": solve_seconds,
        "objective": solution.objective,
    }


@pytest.mark.parametrize("max_deadline", [3, 8])
def test_bench_paper_scale_slot(benchmark, max_deadline):
    stats = benchmark.pedantic(
        _paper_slot, args=(max_deadline,), rounds=1, iterations=1
    )
    print()
    print(f"=== Ablation A14: one Sec. VII slot at paper scale (maxT={max_deadline})")
    print(
        format_table(
            ["vars", "constraints", "build s", "solve s", "cost/slot"],
            [[
                stats["variables"],
                stats["constraints"],
                stats["build_s"],
                stats["solve_s"],
                stats["objective"],
            ]],
        )
    )
    # Real-time headroom: a 5-minute slot gives 300 seconds.
    assert stats["build_s"] + stats["solve_s"] < 150.0
