"""Ablation A5 — percentile sensitivity.

The paper optimizes for the 100-th percentile (peak) scheme.  Here the
same recorded schedules are re-billed under q = 90, 95 and 100: lower
percentiles forgive the busiest slots, so bills can only go down, and
the *bursty* scheduler (Postcard) benefits more than the smooth one
(flow-based) — a quantified version of the paper's Sec. VII discussion
of bursty relay traffic.
"""

import pytest
from conftest import bench_runs, scaled_setting

from repro.analysis import format_table, mean_ci
from repro.charging import PercentileCharging
from repro.core import PostcardScheduler
from repro.flowbased import FlowBasedScheduler
from repro.net.generators import paper_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload


def _run_once(setting, seed):
    topo = paper_topology(
        capacity=setting.capacity,
        num_datacenters=setting.num_datacenters,
        seed=seed,
    )
    out = {}
    for name, factory in {
        "postcard": lambda t, h: PostcardScheduler(t, h, on_infeasible="drop"),
        "flow-based": lambda t, h: FlowBasedScheduler(t, h, on_infeasible="drop"),
    }.items():
        scheduler = factory(topo, setting.num_slots + setting.max_deadline)
        workload = PaperWorkload(
            topo,
            max_deadline=setting.max_deadline,
            max_files=setting.max_files,
            seed=seed + 1000,
        )
        Simulation(scheduler, workload, setting.num_slots).run()
        ledger = scheduler.state.ledger
        out[name] = {
            q: ledger.cost_per_slot(PercentileCharging(q)) for q in (90, 95, 100)
        }
    return out


def test_bench_percentile_rebilling(benchmark):
    setting = scaled_setting("percentile", capacity=30.0, max_deadline=8)

    def run():
        results = []
        for run_index in range(bench_runs()):
            results.append(_run_once(setting, 2012 + run_index))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    means = {}
    for name in ("postcard", "flow-based"):
        for q in (90, 95, 100):
            ci = mean_ci([r[name][q] for r in results])
            means[(name, q)] = ci.mean
            rows.append([name, q, ci.mean, ci.half_width])
    print()
    print("=== Ablation A5: the same traffic re-billed at q-th percentile")
    print(format_table(["scheduler", "q", "cost/slot", "95% CI +/-"], rows))

    for name in ("postcard", "flow-based"):
        assert means[(name, 90)] <= means[(name, 95)] + 1e-9
        assert means[(name, 95)] <= means[(name, 100)] + 1e-9
    # Burstiness dividend: the q=90 discount (relative) is at least as
    # large for Postcard as for the smooth flow-based schedules.
    postcard_discount = 1.0 - means[("postcard", 90)] / means[("postcard", 100)]
    flow_discount = 1.0 - means[("flow-based", 90)] / means[("flow-based", 100)]
    assert postcard_discount >= flow_discount - 0.05
