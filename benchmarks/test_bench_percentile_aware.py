"""Ablation A9 — is q-awareness worth it under real 95th-percentile bills?

The paper's optimizer assumes q = 100.  When the ISP actually bills the
95th (or 90th) percentile, the percentile-aware scheduler spends each
link's free burst slots deliberately.  This bench bills both schedulers
under the *same* q-percentile scheme and reports the saving.
"""

import pytest
from conftest import bench_runs

from repro.analysis import format_table, mean_ci
from repro.charging import PercentileCharging
from repro.core import PostcardScheduler
from repro.extensions import PercentileAwareScheduler
from repro.net.generators import complete_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload

Q = 90.0


def _run(seed):
    topo = complete_topology(6, capacity=30.0, seed=seed)
    horizon = 30
    out = {}
    for name, factory in {
        "q100-postcard": lambda: PostcardScheduler(topo, horizon, on_infeasible="drop"),
        "q-aware": lambda: PercentileAwareScheduler(
            topo, horizon, q=Q, on_infeasible="drop"
        ),
    }.items():
        scheduler = factory()
        workload = PaperWorkload(topo, max_deadline=6, max_files=5, seed=seed + 40)
        Simulation(scheduler, workload, num_slots=10).run()
        out[name] = scheduler.state.ledger.cost_per_slot(PercentileCharging(Q))
    return out


def test_bench_percentile_aware(benchmark):
    def run():
        return [_run(6000 + i) for i in range(bench_runs())]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    means = {}
    for name in ("q100-postcard", "q-aware"):
        ci = mean_ci([r[name] for r in results])
        means[name] = ci.mean
        rows.append([name, ci.mean, ci.half_width])
    print()
    print(f"=== Ablation A9: both schedulers billed at q={Q:g}")
    print(format_table(["scheduler", f"bill@q={Q:g}", "95% CI +/-"], rows))
    saving = 1.0 - means["q-aware"] / means["q100-postcard"]
    print(f"q-awareness saves {saving:.1%} of the percentile bill")

    assert means["q-aware"] <= means["q100-postcard"] * 1.02
