"""Ablation A11 — what does re-planning in-flight transfers buy?

The paper commits each file's full schedule at arrival.  The replanning
controller executes one slot at a time and re-optimizes everything not
yet transmitted.  Ordering on identical instances:

    offline optimum <= replanning <= commit-once (on average)

because replanning strictly enlarges the feasible adjustments at each
step, while the offline optimum sees the whole future at once.
"""

import pytest
from conftest import bench_runs

from repro.analysis import format_table, mean_ci
from repro.core import (
    PostcardScheduler,
    ReplanningPostcardScheduler,
    solve_offline,
)
from repro.net.generators import complete_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload, TraceWorkload


def _one_instance(seed):
    topo = complete_topology(6, capacity=30.0, seed=seed)
    arrival_slots = 5
    drain = 8
    workload = PaperWorkload(topo, max_deadline=6, max_files=4, seed=seed + 300)
    requests = workload.all_requests(arrival_slots)
    horizon = arrival_slots + drain + 6

    out = {}
    once = PostcardScheduler(topo, horizon=horizon, on_infeasible="drop")
    Simulation(once, TraceWorkload(requests), arrival_slots + drain).run()
    out["commit-once"] = once.state.current_cost_per_slot()

    replan = ReplanningPostcardScheduler(topo, horizon=horizon, on_infeasible="drop")
    Simulation(replan, TraceWorkload(requests), arrival_slots + drain).run()
    out["replanning"] = replan.state.current_cost_per_slot()

    out["offline"] = solve_offline(topo, requests, horizon=horizon).cost_per_slot
    return out


def test_bench_replanning(benchmark):
    def run():
        return [_one_instance(7000 + i) for i in range(bench_runs())]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    names = ["commit-once", "replanning", "offline"]
    rows = []
    means = {}
    for name in names:
        ci = mean_ci([r[name] for r in results])
        means[name] = ci.mean
        rows.append([name, ci.mean, ci.half_width])
    print()
    print("=== Ablation A11: commit-once vs replanning vs offline")
    print(format_table(["controller", "cost/slot", "95% CI +/-"], rows))
    recovered = (
        (means["commit-once"] - means["replanning"])
        / max(means["commit-once"] - means["offline"], 1e-9)
    )
    print(f"replanning recovers {recovered:.0%} of the online-offline gap")

    for r in results:
        assert r["offline"] <= r["replanning"] + 1e-6
    assert means["replanning"] <= means["commit-once"] * 1.01
