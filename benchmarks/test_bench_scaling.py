"""Ablation A3 — how the Postcard LP scales.

One online slot's LP is solved for growing datacenter counts and
deadline horizons; the printed table records variables, constraints and
solve time.  The time-expanded graph grows as
O(num_links * horizon * files), which is why the paper's time-slotted
simplification matters: the general continuous-time problem has no such
finite parameterization.
"""

import time

import pytest

from repro.analysis import format_table
from repro.core.formulation import build_postcard_model
from repro.core.state import NetworkState
from repro.net.generators import complete_topology
from repro.traffic import PaperWorkload


def _solve_one_slot(num_dcs: int, max_deadline: int, files: int):
    topo = complete_topology(num_dcs, capacity=60.0, seed=1)
    state = NetworkState(topo, horizon=60)
    workload = PaperWorkload(
        topo, max_deadline=max_deadline, min_files=files, max_files=files, seed=7
    )
    requests = workload.requests_at(0)
    built = build_postcard_model(state, requests)
    started = time.perf_counter()
    schedule, _ = built.solve()
    elapsed = time.perf_counter() - started
    return built.model.num_variables, built.model.num_constraints, elapsed


@pytest.mark.parametrize(
    "num_dcs,max_deadline",
    [(5, 3), (10, 3), (15, 3), (10, 6), (10, 9)],
)
def test_bench_scaling(benchmark, num_dcs, max_deadline):
    num_vars, num_cons, _ = _solve_one_slot(num_dcs, max_deadline, files=5)
    result = benchmark.pedantic(
        _solve_one_slot,
        args=(num_dcs, max_deadline, 5),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["DCs", "maxT", "vars", "constraints", "solve s"],
            [[num_dcs, max_deadline, num_vars, num_cons, result[2]]],
        )
    )
    # A slot must stay interactive at any bench scale.
    assert result[2] < 60.0
