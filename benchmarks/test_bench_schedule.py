"""Schedule churn — incremental rebuilds bit-identical to cold, and faster.

Two layers of defense around the link-schedule exit criterion:

* The committed ``results/BENCH_schedule.json`` (written by
  ``scripts/bench_schedule.py`` at full scale: 40 rolling-window
  builds over a 10-DC windowed mesh, a schedule mutation every 4th
  build) must carry passing gates — every incremental build
  arc-for-arc identical to its cold build, and the best incremental
  pass at least 20% faster — plus a windowed-vs-always-on sweep for
  the EXPERIMENTS.md table.
* The identity core re-runs here at reduced scale (fewer builds, a
  smaller mesh) so a regression in the epoch fast path fails in CI
  even before the record is regenerated.  Timing is not re-gated live
  (noisy runners); bit-identity is.
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))

from bench_schedule import (  # noqa: E402
    CHURN_EVERY,
    arc_tuples,
    churn_schedule,
    mutate,
)

from repro import complete_topology
from repro.timeexp.cache import GraphCache
from repro.timeexp.graph import TimeExpandedGraph

RECORD = pathlib.Path(__file__).parent / "results" / "BENCH_schedule.json"

MIN_REDUCTION_PERCENT = 20.0


def test_committed_schedule_record_gates():
    record = json.loads(RECORD.read_text())
    assert record["benchmark"] == "schedule"
    assert record["identical_results"] is True
    assert record["reduction_percent"] >= MIN_REDUCTION_PERCENT, record
    # The headline number is internally consistent with the raw spans,
    # so a hand-edited record cannot sneak through.
    incremental = record["incremental_best_seconds"]
    cold = record["cold_best_seconds"]
    assert incremental > 0 and cold > 0
    recomputed = 100.0 * (1.0 - incremental / cold)
    assert abs(recomputed - record["reduction_percent"]) < 0.5, record
    # The sweep must cover the always-on reference and at least one
    # windowed scenario with strictly partial coverage.
    scenarios = {row["scenario"]: row for row in record["windowed_sweep"]}
    assert "always-on" in scenarios
    assert scenarios["always-on"]["coverage"] == 1.0
    windowed = [r for r in record["windowed_sweep"] if r["coverage"] < 1.0]
    assert windowed, record["windowed_sweep"]
    for row in record["windowed_sweep"]:
        assert row["requests"] > 0
        assert 0 <= row["rejected"] <= row["requests"]
        assert row["cost_per_slot"] >= 0


def test_incremental_rebuilds_identical_live():
    """Reduced-scale churn loop: cache output must match cold builds."""
    builds, horizon = 12, 8
    topology = complete_topology(6, capacity=50.0, seed=7)
    schedule = churn_schedule(topology, builds + horizon)
    links = sorted(schedule.scheduled_links())
    cache = GraphCache(topology, link_schedule=schedule)
    for build in range(builds):
        if build and build % CHURN_EVERY == 0:
            mutate(schedule, links, build)
        incremental = cache.build(build, horizon)
        cold = TimeExpandedGraph(
            topology, build, horizon, link_schedule=schedule
        )
        assert arc_tuples(incremental) == arc_tuples(cold), build
