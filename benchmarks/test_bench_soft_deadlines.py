"""Ablation A16 — hard versus priced deadlines under overload.

The paper's model rejects whatever cannot meet its deadline.  The
soft-deadline variant delivers everything, a little late, for a price.
This bench drives both through an overload sweep (growing per-slot
file counts at tight capacity) and reports acceptance, lateness and
cost side by side.
"""

import pytest
from conftest import bench_runs

from repro.analysis import format_table, mean_ci
from repro.core import build_postcard_model, solve_soft_deadline
from repro.core.state import NetworkState
from repro.core.scheduler import shed_until_feasible
from repro.net.generators import complete_topology
from repro.traffic import PaperWorkload

LOADS = [4, 8, 12]


def _one_instance(load, seed):
    topo = complete_topology(5, capacity=20.0, seed=seed)
    workload = PaperWorkload(
        topo, max_deadline=2, min_files=load, max_files=load,
        min_size=20.0, max_size=60.0, seed=seed + 21,
    )
    requests = workload.requests_at(0)

    # Hard deadlines: shed until feasible, count the casualties.
    hard_state = NetworkState(topo, horizon=30)

    def solve(accepted):
        built = build_postcard_model(hard_state, accepted)
        schedule, solution = built.solve()
        solve.cost = solution.objective
        return schedule

    solve.cost = 0.0
    schedule, accepted = shed_until_feasible(solve, requests, hard_state)
    hard_rejected = len(requests) - len(accepted)
    hard_cost = solve.cost if schedule is not None else 0.0

    # Soft deadlines: everyone is delivered, lateness is priced.
    soft_state = NetworkState(topo, horizon=30)
    result = solve_soft_deadline(
        soft_state,
        [r.with_release(0) for r in requests],
        extension=3,
        lateness_penalty=2.0,
    )
    return {
        "hard_rejected": hard_rejected,
        "hard_cost": hard_cost,
        "soft_lateness": result.total_lateness,
        "soft_cost": result.solution.objective,
    }


def test_bench_soft_deadlines(benchmark):
    def run():
        out = {}
        for load in LOADS:
            out[load] = [
                _one_instance(load, 9500 + i) for i in range(bench_runs())
            ]
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for load in LOADS:
        rs = results[load]
        rows.append(
            [
                f"{load} files",
                sum(r["hard_rejected"] for r in rs),
                mean_ci([r["hard_cost"] for r in rs]).mean,
                mean_ci([r["soft_lateness"] for r in rs]).mean,
                mean_ci([r["soft_cost"] for r in rs]).mean,
            ]
        )
    print()
    print("=== Ablation A16: overload sweep — hard rejections vs priced lateness")
    print(
        format_table(
            ["load", "hard: rejected", "hard: cost", "soft: GB-slots late", "soft: cost"],
            rows,
        )
    )

    # The soft model never rejects, and lateness grows with overload.
    lateness = [mean_ci([r["soft_lateness"] for r in results[l]]).mean for l in LOADS]
    assert lateness[-1] >= lateness[0] - 1e-9