"""Ablation A7 — how expensive can storage get before S&F stops paying?

The paper assumes storage is free.  Sweeping a metered $/GB-slot
storage price shows where the store-and-forward advantage erodes: as
the price grows, the optimizer parks less data and the WAN bill climbs
toward the storage-free-but-never-parked optimum.
"""

import pytest
from conftest import bench_runs

from repro.analysis import format_table, mean_ci
from repro.core import PostcardScheduler
from repro.net.generators import complete_topology
from repro.sim import Simulation
from repro.traffic import PaperWorkload

PRICES = [0.0, 0.05, 0.5, 5.0]


def _run(price, seed):
    topo = complete_topology(6, capacity=30.0, seed=seed)
    scheduler = PostcardScheduler(
        topo, horizon=20, storage_price=price, on_infeasible="drop"
    )
    workload = PaperWorkload(topo, max_deadline=6, max_files=4, seed=seed + 900)
    result = Simulation(scheduler, workload, num_slots=6).run()
    return (
        scheduler.state.current_cost_per_slot(),
        result.total_storage_gb_slots,
    )


def test_bench_storage_price(benchmark):
    def run():
        out = {}
        for price in PRICES:
            out[price] = [_run(price, 4000 + i) for i in range(bench_runs())]
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    wan_cost = {}
    storage_used = {}
    for price in PRICES:
        wan = mean_ci([c for c, _s in results[price]])
        stored = mean_ci([s for _c, s in results[price]])
        wan_cost[price] = wan.mean
        storage_used[price] = stored.mean
        rows.append([f"{price:g}", wan.mean, wan.half_width, stored.mean])
    print()
    print("=== Ablation A7: metered storage price sweep")
    print(
        format_table(
            ["$/GB-slot", "WAN cost/slot", "95% CI +/-", "GB-slots stored"], rows
        )
    )

    # Pricier storage => (weakly) less of it is used, and the WAN bill
    # can only rise as the time-shifting tool gets taxed away.
    used = [storage_used[p] for p in PRICES]
    assert all(b <= a + 1e-6 for a, b in zip(used, used[1:]))
    assert wan_cost[PRICES[0]] <= wan_cost[PRICES[-1]] + 1e-6
