"""Ablation A15 — does the store-and-forward advantage survive
topology shape?

Sec. VII only evaluates a complete uniform-price graph.  Real overlays
are not complete: relay-heavy shapes (star, ring) force multi-hop
transfers, and two-region geo topologies concentrate cost on a few
expensive links.  This bench reruns the limited-capacity comparison on
four shapes with identical workload statistics.
"""

import pytest
from conftest import bench_runs

from repro.analysis import format_table, mean_ci
from repro.core import PostcardScheduler
from repro.flowbased import FlowBasedScheduler
from repro.net.generators import (
    complete_topology,
    ring_topology,
    star_topology,
    two_region_topology,
)
from repro.sim.runner import ExperimentSetting, run_comparison
from repro.traffic import PaperWorkload

SHAPES = {
    "complete": lambda setting, seed: complete_topology(
        8, capacity=setting.capacity, seed=seed
    ),
    "two-region": lambda setting, seed: two_region_topology(
        4, capacity=setting.capacity, intra_price=1.0, inter_price=8.0, seed=seed
    ),
    "ring": lambda setting, seed: ring_topology(8, capacity=setting.capacity, price=3.0),
    "star": lambda setting, seed: star_topology(7, capacity=setting.capacity, spoke_price=3.0),
}

FACTORIES = {
    "postcard": lambda t, h: PostcardScheduler(t, h, on_infeasible="drop"),
    "flow-based": lambda t, h: FlowBasedScheduler(t, h, on_infeasible="drop"),
}


def _workload(topology, setting, seed):
    return PaperWorkload(
        topology,
        max_deadline=setting.max_deadline,
        max_files=setting.max_files,
        min_size=setting.min_size,
        max_size=setting.max_size,
        seed=seed,
    )


def test_bench_topology_sweep(benchmark):
    setting = ExperimentSetting(
        "topo-sweep",
        capacity=30.0,
        max_deadline=5,
        num_slots=8,
        max_files=5,
        min_size=5.0,
        max_size=30.0,
    )

    def run():
        out = {}
        for shape, topo_factory in SHAPES.items():
            out[shape] = run_comparison(
                setting,
                FACTORIES,
                runs=bench_runs(),
                base_seed=2012,
                topology_factory=topo_factory,
                workload_factory=_workload,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for shape, comparison in results.items():
        post = comparison.interval("postcard")
        flow = comparison.interval("flow-based")
        rejected = sum(
            r.total_rejected
            for results_list in comparison.results.values()
            for r in results_list
        )
        rows.append(
            [shape, post.mean, flow.mean, f"{post.mean / flow.mean:.3f}", rejected]
        )
    print()
    print("=== Ablation A15: topology-shape sweep at c=30 GB/slot")
    print(
        format_table(
            ["topology", "postcard", "flow-based", "ratio", "rejected"], rows
        )
    )

    # Sanity on every shape: both schedulers produced audited runs and
    # the exact flow LP never loses by a wide margin nor wins by more
    # than the complete-graph case would suggest is plausible.
    for shape, comparison in results.items():
        assert comparison.interval("postcard").mean > 0
        assert comparison.interval("flow-based").mean > 0
