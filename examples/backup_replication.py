"""Nightly backup replication over leftover, already-paid bandwidth.

The scenario from the paper's Sec. VI (and NetStitcher): a provider's
interactive traffic runs during the day and pays for per-link peaks
under 100-th percentile billing.  At night the links idle — but the
bill stays the same.  This example:

1. simulates a business day of interactive transfers with Postcard,
2. then schedules large cross-region database backups exclusively on
   the paid headroom, verifying the bill does not move by a cent.

Run:  python examples/backup_replication.py
"""

from repro import (
    PostcardScheduler,
    PaperWorkload,
    Simulation,
    TransferRequest,
    expand_multicast,
    format_table,
    maximize_bulk_throughput,
    two_region_topology,
)


def main():
    # Two regions of 4 DCs: cheap domestic links, pricey transcontinental.
    topology = two_region_topology(
        per_region=4, capacity=40.0, intra_price=1.0, inter_price=8.0, seed=3
    )
    horizon = 60

    # --- Phase 1: the interactive day. ---
    scheduler = PostcardScheduler(topology, horizon=horizon, on_infeasible="drop")
    day = PaperWorkload(
        topology, max_deadline=4, max_files=6, min_size=10, max_size=60, seed=9
    )
    result = Simulation(scheduler, day, num_slots=10).run()
    state = scheduler.state
    day_bill = state.current_cost_per_slot()
    print("=== Daytime interactive traffic (Postcard online)")
    print(result.summary())
    print(f"bill per interval after the day: {day_bill:.1f}")
    print()

    # --- Phase 2: night falls; replicate the primary database. ---
    # DC 0 (east) replicates 600 GB to two west-region datacenters.
    backups = expand_multicast(
        source=0, destinations=[4, 5], size_gb=600.0, deadline_slots=20,
        release_slot=11,
    )
    bulk = maximize_bulk_throughput(state, backups)

    print("=== Nightly backups on leftover bandwidth only")
    rows = []
    for request in backups:
        delivered = bulk.delivered.get(request.request_id, 0.0)
        rows.append(
            [
                f"DC0 -> DC{request.destination}",
                request.size_gb,
                delivered,
                f"{delivered / request.size_gb:.0%}",
            ]
        )
    print(format_table(["replica", "requested GB", "delivered GB", "done"], rows))

    # The defining guarantee: the bill did not move.
    for (src, dst, slot), volume in bulk.schedule.link_slot_volumes().items():
        headroom = state.charged_volume(src, dst) - state.committed_volume(src, dst, slot)
        assert volume <= headroom + 1e-6, "bulk schedule would raise the bill!"
    print(f"\nbill per interval after backups: {day_bill:.1f} (unchanged)")
    used = bulk.schedule.total_storage_volume()
    print(f"intermediate storage used while backhauling: {used:.0f} GB-slots")


if __name__ == "__main__":
    main()
