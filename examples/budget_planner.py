"""Budget-constrained transfer admission (Sec. VI, second problem).

A cloud provider has a hard monthly cap on inter-datacenter transit
spend.  During a traffic spike, more transfer requests arrive than the
budget can absorb — which ones should be admitted?

This example sweeps the budget from tight to generous and shows the
admitted count climbing toward the LP-relaxation upper bound, plus
what the marginal dollar buys.

Run:  python examples/budget_planner.py
"""

from repro import (
    PostcardScheduler,
    TransferRequest,
    complete_topology,
    format_table,
    maximize_transfers_under_budget,
)


def main():
    topology = complete_topology(6, capacity=35.0, seed=31)
    scheduler = PostcardScheduler(topology, horizon=40)

    # Warm the network with some paid baseline traffic.
    baseline = [
        TransferRequest(0, 1, 25.0, 2, release_slot=0),
        TransferRequest(2, 3, 30.0, 2, release_slot=0),
    ]
    scheduler.on_slot(0, baseline)
    state = scheduler.state
    committed = state.current_cost_per_slot()
    print(f"standing bill per interval: {committed:.1f}")
    print()

    # The spike: eight candidate transfers of growing size.
    candidates = [
        TransferRequest((i * 2) % 6, (i * 2 + 3) % 6, 20.0 + 12 * i, 4, release_slot=1)
        for i in range(8)
    ]
    print("=== Candidates")
    print(
        format_table(
            ["file", "route", "GB", "deadline"],
            [
                [i, f"{r.source}->{r.destination}", r.size_gb, f"{r.deadline_slots} slots"]
                for i, r in enumerate(candidates)
            ],
        )
    )
    print()

    print("=== Admission as the budget grows")
    rows = []
    previous = 0
    for factor in (1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0):
        budget = committed * factor + 1.0
        result = maximize_transfers_under_budget(state, candidates, budget)
        marginal = result.admitted_count - previous
        previous = result.admitted_count
        rows.append(
            [
                f"{factor:.2f}x",
                f"{budget:.0f}",
                result.admitted_count,
                f"{result.fractional_optimum:.2f}",
                f"{result.cost_per_slot:.0f}",
                f"+{marginal}" if marginal else "",
            ]
        )
    print(
        format_table(
            ["budget", "$/interval", "admitted", "LP bound", "spend/interval", "marginal"],
            rows,
        )
    )
    print(
        "\nThe LP bound column is the fractional-relaxation optimum: an\n"
        "upper bound no integral admission can beat."
    )


if __name__ == "__main__":
    main()
