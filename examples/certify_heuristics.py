"""Certifying heuristic schedules without solving the LP.

At fleet scale an operator may not want a 60k-variable LP in the hot
path.  This example shows the LP-free operating mode this library
supports:

1. schedule with the **greedy** k-cheapest-path heuristic (milliseconds),
2. certify its quality with the **subgradient dual bound** (shortest
   paths only),
3. spot-check both against the exact LP — which the first two bracket.

Run:  python examples/certify_heuristics.py
"""

import time

from repro import PaperWorkload, TransferRequest, complete_topology, format_table
from repro.baselines import GreedyStoreAndForwardScheduler
from repro.core import build_postcard_model
from repro.core.bounds import dual_lower_bound
from repro.core.state import NetworkState


def main():
    topology = complete_topology(8, capacity=30.0, seed=77)
    workload = PaperWorkload(
        topology, max_deadline=5, min_files=8, max_files=8, seed=5
    )
    requests = workload.requests_at(0)
    print(f"scheduling {len(requests)} files "
          f"({sum(r.size_gb for r in requests):.0f} GB total)\n")

    # 1. The heuristic schedule (upper bound).
    started = time.perf_counter()
    greedy = GreedyStoreAndForwardScheduler(topology, horizon=30)
    greedy.on_slot(0, [r.with_release(0) for r in requests])
    greedy_cost = greedy.state.current_cost_per_slot()
    greedy_seconds = time.perf_counter() - started

    # 2. The certificate (lower bound) - shortest paths only.
    started = time.perf_counter()
    bound_state = NetworkState(topology, horizon=30)
    bound = dual_lower_bound(bound_state, requests, iterations=300)
    bound_seconds = time.perf_counter() - started

    # 3. The exact LP, for reference.
    started = time.perf_counter()
    lp_state = NetworkState(topology, horizon=30)
    _, solution = build_postcard_model(lp_state, requests).solve()
    lp_seconds = time.perf_counter() - started

    print(
        format_table(
            ["method", "cost/slot", "seconds", "role"],
            [
                ["dual bound", bound.lower_bound, bound_seconds, "certified floor"],
                ["exact LP", solution.objective, lp_seconds, "ground truth"],
                ["greedy", greedy_cost, greedy_seconds, "deployable schedule"],
            ],
        )
    )
    factor = greedy_cost / bound.lower_bound
    print(
        f"\nWithout ever building the LP, the greedy schedule is certified\n"
        f"to be within {factor:.3f}x of optimal "
        f"(true factor: {greedy_cost / solution.objective:.3f}x)."
    )


if __name__ == "__main__":
    main()
