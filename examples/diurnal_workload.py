"""Diurnal traffic across time zones: where time-shifting shines.

Chen et al. (INFOCOM'11) observed strong diurnal patterns in
inter-datacenter traffic.  Under percentile billing, a link paid for
its daytime peak is free at night — exactly the structure
store-and-forward exploits.  This example simulates a two-region
deployment with out-of-phase diurnal workloads and compares the
schedulers under both 100-th and 95-th percentile billing.

Run:  python examples/diurnal_workload.py
"""

from repro import (
    DirectScheduler,
    DiurnalWorkload,
    FlowBasedScheduler,
    MaxCharging,
    PercentileCharging,
    PostcardScheduler,
    Simulation,
    format_table,
)
from repro.net import two_region_topology


class TwoRegionDiurnal(DiurnalWorkload):
    """East-region load peaks half a day before the west region's.

    Sources are drawn from whichever region is currently busy, so the
    traffic matrix itself follows the sun.
    """

    def requests_at(self, slot):
        import numpy as np

        requests = super().requests_at(slot)
        rng = np.random.default_rng((self.seed, slot, 7))
        east = [dc.id for dc in self.topology.datacenters if dc.region == "east"]
        west = [dc.id for dc in self.topology.datacenters if dc.region == "west"]
        day_phase = (slot % self.slots_per_day) / self.slots_per_day
        busy, quiet = (east, west) if day_phase < 0.5 else (west, east)
        rebased = []
        for request in requests:
            src = int(rng.choice(busy))
            dst = int(rng.choice([n for n in quiet + busy if n != src]))
            rebased.append(request.__class__(
                src, dst, request.size_gb, request.deadline_slots, request.release_slot
            ))
        return rebased


def main():
    topology = two_region_topology(
        per_region=3, capacity=35.0, intra_price=1.0, inter_price=7.0, seed=5
    )
    slots_per_day = 8   # a compressed day so the example runs in seconds
    num_days = 2
    num_slots = slots_per_day * num_days
    horizon = num_slots + 8

    rows = []
    for name, factory in [
        ("postcard", lambda: PostcardScheduler(topology, horizon, on_infeasible="drop")),
        ("flow-based", lambda: FlowBasedScheduler(topology, horizon, on_infeasible="drop")),
        ("direct", lambda: DirectScheduler(topology, horizon, on_infeasible="drop")),
    ]:
        scheduler = factory()
        workload = TwoRegionDiurnal(
            topology,
            max_deadline=6,
            peak_files=6,
            trough_files=1,
            slots_per_day=slots_per_day,
            min_size=10.0,
            max_size=40.0,
            seed=17,
        )
        result = Simulation(scheduler, workload, num_slots).run()
        ledger = scheduler.state.ledger
        rows.append(
            [
                name,
                ledger.cost_per_slot(MaxCharging()),
                ledger.cost_per_slot(PercentileCharging(95)),
                f"{result.acceptance_rate:.0%}",
                f"{result.total_storage_gb_slots:.0f}",
            ]
        )

    print("=== Two regions, out-of-phase diurnal load, 2 compressed days")
    print(
        format_table(
            ["scheduler", "bill @q=100", "bill @q=95", "accepted", "GB-slots stored"],
            rows,
        )
    )
    print(
        "\nUnder q=95 the busiest ~5% of slots are free, which forgives\n"
        "bursts; under q=100 every peak is billed for the whole period."
    )


if __name__ == "__main__":
    main()
