"""A full operations day, end to end.

Everything in one story: diurnal interactive traffic on a two-region
overlay, a mid-day transatlantic outage the optimizer routes around, a
multicast database replication in the afternoon, nightly bulk backups
on leftover paid bandwidth, and the midnight charging-period rollover
that makes yesterday's paid peaks expire.

Run:  python examples/full_day_operations.py
"""

from repro import (
    DiurnalWorkload,
    PostcardScheduler,
    Simulation,
    TransferRequest,
    format_table,
    maximize_bulk_throughput,
    two_region_topology,
)
from repro.analysis.plots import cost_trajectory_sketch
from repro.extensions import solve_multicast
from repro.sim import FaultModel, Outage


def main():
    topology = two_region_topology(
        per_region=3, capacity=40.0, intra_price=1.0, inter_price=7.0, seed=11
    )
    slots_per_day = 10     # compressed day
    horizon = 3 * slots_per_day

    scheduler = PostcardScheduler(topology, horizon=horizon, on_infeasible="drop")

    # 09:00 — a transatlantic circuit goes down for two slots.
    scheduler.state.fault_model = FaultModel([Outage(0, 3, 3, 5), Outage(3, 0, 3, 5)])

    # The interactive day.
    workload = DiurnalWorkload(
        topology, max_deadline=4, peak_files=5, trough_files=1,
        slots_per_day=slots_per_day, min_size=5.0, max_size=30.0, seed=13,
    )
    result = Simulation(scheduler, workload, num_slots=slots_per_day).run()
    state = scheduler.state

    print("=== The interactive day (with a 2-slot transatlantic outage)")
    print(result.summary())
    print("cost trajectory:", cost_trajectory_sketch(result.cost_trajectory()))
    for slot in (3, 4):
        assert state.ledger.volume(0, 3, slot) == 0.0  # outage respected
    print("outage slots carried nothing on (0,3), as audited\n")

    # 15:00 — replicate the primary database to both west-region sites.
    replication = solve_multicast(
        state, source=0, destinations=[4, 5], size_gb=60.0,
        deadline_slots=4, release_slot=slots_per_day,
    )
    print("=== Afternoon: multicast replication 0 -> {4, 5}")
    print(
        f"60 GB to two sites for {replication.cost_per_slot - state.current_cost_per_slot():.1f} "
        f"extra per interval (shared upstream)"
    )
    print(f"completions: {replication.completions}\n")

    # 22:00 — bulk archives on leftover paid bandwidth only.
    backups = [
        TransferRequest(1, 5, 300.0, 8, release_slot=slots_per_day + 4),
        TransferRequest(2, 4, 300.0, 8, release_slot=slots_per_day + 4),
    ]
    bulk = maximize_bulk_throughput(state, backups)
    print("=== Night: archives ride leftover bandwidth")
    print(
        format_table(
            ["archive", "requested GB", "delivered GB"],
            [
                [f"{r.source}->{r.destination}", r.size_gb,
                 bulk.delivered.get(r.request_id, 0.0)]
                for r in backups
            ],
        )
    )
    print(f"bill unchanged at {state.current_cost_per_slot():.1f}/interval\n")

    # 24:00 — the charging period rolls over; paid peaks expire.
    bill = state.start_new_period(slots_per_day * 2)
    print("=== Midnight: charging-period rollover")
    print(f"yesterday's bill banked: {bill:.0f}")
    print(
        f"charged volumes reset: cost/interval restarts at "
        f"{state.current_cost_per_slot():.1f} (in-flight traffic only)"
    )


if __name__ == "__main__":
    main()
