"""Operating a global 8-region overlay: paths, prices, and upgrades.

Uses the deterministic global-cloud preset (eight regions, distance-
and market-based prices) to show the introspection APIs a network
operator would live in:

* timed path decomposition — *where and when* each gigabyte moves,
* congestion prices — which link-slot capacity is worth paying for,
* utilization sparklines over the simulated window.

Run:  python examples/global_regions.py
"""

from repro import (
    PostcardScheduler,
    TransferRequest,
    decompose_paths,
    format_table,
    global_cloud_topology,
)
from repro.analysis.plots import utilization_rows
from repro.core import build_postcard_model
from repro.core.state import NetworkState
from repro.net.presets import GLOBAL_REGIONS


def main():
    topology = global_cloud_topology(capacity=30.0)
    names = {i: r.name for i, r in enumerate(GLOBAL_REGIONS)}

    print("=== Link prices out of us-east ($/GB)")
    rows = [
        [names[link.dst], link.price]
        for link in topology.out_links(0)
    ]
    print(format_table(["to", "price"], sorted(rows, key=lambda r: r[1])))
    print()

    # A burst of cross-region work: analytics replication + backups.
    files = [
        TransferRequest(0, 4, 150.0, 4, release_slot=0),  # us-east -> ap-southeast
        TransferRequest(0, 2, 60.0, 3, release_slot=0),   # us-east -> eu-west
        TransferRequest(6, 0, 45.0, 4, release_slot=0),   # sa-east -> us-east
        TransferRequest(2, 5, 70.0, 4, release_slot=0),   # eu-west -> ap-northeast
    ]

    state = NetworkState(topology, horizon=30)
    built = build_postcard_model(state, files)
    schedule, solution = built.solve()
    state.commit(schedule, files)

    print(f"=== Optimal plan: {solution.objective:.1f} $/interval")
    for request in files:
        print(f"\nfile {names[request.source]} -> {names[request.destination]} "
              f"({request.size_gb:g} GB, {request.deadline_slots} slots):")
        for path in decompose_paths(schedule, request):
            hops = " -> ".join(
                names[node]
                for node, _layer in _dedupe_consecutive(path.nodes)
            )
            storage = f", parks {path.storage_slots} slot(s)" if path.storage_slots else ""
            print(f"  {path.volume:6.1f} GB via {hops}"
                  f" (departs slot {path.departure_slot}{storage})")

    print("\n=== Congestion prices (capacity worth buying, $/GB)")
    prices = built.congestion_prices(solution)
    if prices:
        rows = [
            [f"{names[src]} -> {names[dst]}", slot, price]
            for (src, dst, slot), price in sorted(
                prices.items(), key=lambda kv: -kv[1]
            )
        ]
        print(format_table(["link", "slot", "shadow price"], rows[:6]))
    else:
        print("none - no capacity constraint binds at this load")

    print("\n=== Link utilization over the window (busiest first)")
    samples = {
        link.key: state.ledger.samples(link.src, link.dst)[:8]
        for link in topology.links
    }
    caps = {link.key: link.capacity for link in topology.links}
    print(utilization_rows(samples, caps, top=6))


def _dedupe_consecutive(nodes):
    """Collapse holdover steps so the printed route reads as hops."""
    out = [nodes[0]]
    for node in nodes[1:]:
        if node[0] != out[-1][0]:
            out.append(node)
    return out


if __name__ == "__main__":
    main()
