"""Quickstart: schedule inter-datacenter transfers with Postcard.

Reproduces the paper's two worked examples end to end, then runs a
small online simulation comparing Postcard against the flow-based and
direct baselines.

Run:  python examples/quickstart.py
"""

from repro import (
    DirectScheduler,
    FlowBasedScheduler,
    PaperWorkload,
    PostcardScheduler,
    Simulation,
    TransferRequest,
    complete_topology,
    fig1_topology,
    fig3_topology,
    format_table,
)


def fig1_example():
    """Fig. 1: 6 MB from DC2 to DC3 within 15 minutes (3 slots)."""
    print("=== Fig. 1: routing + scheduling beats the direct link")
    request = TransferRequest(source=2, destination=3, size_gb=6.0, deadline_slots=3)

    direct = DirectScheduler(fig1_topology(), horizon=100)
    direct.on_slot(0, [request.with_release(0)])

    postcard = PostcardScheduler(fig1_topology(), horizon=100)
    schedule = postcard.on_slot(0, [request.with_release(0)])

    print(f"direct link cost/interval:   {direct.state.current_cost_per_slot():.0f}  (paper: 20)")
    print(f"postcard cost/interval:      {postcard.state.current_cost_per_slot():.0f}  (paper: 12)")
    print("postcard's schedule:")
    for entry in sorted(schedule.entries, key=lambda e: (e.slot, e.src)):
        action = "hold at" if entry.src == entry.dst else f"{entry.src} -> {entry.dst}"
        print(f"  slot {entry.slot}: {action:9s} {entry.volume:.0f} MB")
    print()


def fig3_example():
    """Fig. 3: two files with different deadlines share cheap links."""
    print("=== Fig. 3: store-and-forward rides the already-paid link")
    files = [
        TransferRequest(2, 4, 8.0, 4, release_slot=3),   # File 1
        TransferRequest(1, 4, 10.0, 2, release_slot=3),  # File 2
    ]
    rows = []
    for name, scheduler in [
        ("postcard", PostcardScheduler(fig3_topology(), horizon=100)),
        ("flow-based", FlowBasedScheduler(fig3_topology(), horizon=100)),
        ("direct", DirectScheduler(fig3_topology(), horizon=100)),
    ]:
        scheduler.on_slot(3, [f.with_release(3) for f in files])
        rows.append([name, scheduler.state.current_cost_per_slot()])
    print(format_table(["scheduler", "cost/interval"], rows))
    print("(paper: postcard 32.67, flow-based 50, naive 52)")
    print()


def online_simulation():
    """A 10-slot online day on a random 8-datacenter network."""
    print("=== Online simulation: 8 DCs, limited capacity, delay-tolerant files")
    topology = complete_topology(8, capacity=30.0, seed=7)
    rows = []
    for name, factory in [
        ("postcard", lambda: PostcardScheduler(topology, horizon=20, on_infeasible="drop")),
        ("flow-based", lambda: FlowBasedScheduler(topology, horizon=20, on_infeasible="drop")),
        ("direct", lambda: DirectScheduler(topology, horizon=20, on_infeasible="drop")),
    ]:
        scheduler = factory()
        workload = PaperWorkload(topology, max_deadline=6, max_files=6, seed=42)
        result = Simulation(scheduler, workload, num_slots=10).run()
        rows.append(
            [
                name,
                result.final_cost_per_slot,
                f"{result.acceptance_rate:.0%}",
                f"{result.relay_overhead:.2f}x",
                f"{result.total_storage_gb_slots:.0f}",
            ]
        )
    print(
        format_table(
            ["scheduler", "cost/slot", "accepted", "relay overhead", "GB-slots stored"],
            rows,
        )
    )


if __name__ == "__main__":
    fig1_example()
    fig3_example()
    online_simulation()
