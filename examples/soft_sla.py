"""Pricing the SLA: what do hard deadlines actually cost?

A burst of replication jobs lands on a tight network.  The paper's
hard deadlines force the optimizer to buy expensive WAN peaks; pricing
lateness instead reveals the trade — at a lax SLA the same jobs cost
4x less by running a few slots late, and as the SLA price climbs the
soft optimum converges back to the hard one.  (Under true overload the
hard model starts rejecting jobs outright — see ablation A16 — while
the soft model only ever gets later.)

Run:  python examples/soft_sla.py
"""

from repro import TransferRequest, complete_topology, format_table
from repro.core import build_postcard_model, solve_soft_deadline
from repro.core.scheduler import shed_until_feasible
from repro.core.state import NetworkState


def spike(release=0):
    """Six 45-GB jobs with 2-slot deadlines between five sites."""
    routes = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]
    return [
        TransferRequest(src, dst, 45.0, 2, release_slot=release)
        for src, dst in routes
    ]


def main():
    topology = complete_topology(5, capacity=15.0, seed=3)

    # --- Hard deadlines: shed until feasible. ---
    state = NetworkState(topology, horizon=30)

    def solve(accepted):
        built = build_postcard_model(state, accepted)
        schedule, solution = built.solve()
        solve.cost = solution.objective
        return schedule

    solve.cost = 0.0
    _schedule, accepted = shed_until_feasible(solve, spike(), state)
    print("=== Hard deadlines (the paper's model)")
    print(f"accepted {len(accepted)}/6 jobs (rejected {len(state.rejected)}); "
          f"every deadline met at a WAN cost of {solve.cost:.0f}/interval\n")

    # --- Soft deadlines at three SLA price points. ---
    print("=== Priced lateness (extension up to 3 slots)")
    rows = []
    for penalty in (0.1, 2.0, 50.0):
        soft_state = NetworkState(topology, horizon=30)
        result = solve_soft_deadline(
            soft_state, spike(), extension=3, lateness_penalty=penalty
        )
        late_jobs = sum(1 for v in result.lateness.values() if v > 1e-6)
        rows.append(
            [
                f"{penalty:g} $/GB/slot",
                "6/6",
                late_jobs,
                result.total_lateness,
                result.solution.objective,
            ]
        )
    print(
        format_table(
            ["SLA price", "delivered", "jobs late", "GB-slots late", "total cost"],
            rows,
        )
    )
    print(
        "\nCheap SLA: the optimizer happily runs late to flatten WAN peaks.\n"
        "Steep SLA: it pays for bandwidth and delivers (almost) on time —\n"
        "but unlike the hard model, nothing is ever dropped."
    )


if __name__ == "__main__":
    main()
