#!/usr/bin/env python
"""Durability-cost benchmark: WAL journaling vs. snapshot rewriting.

Drives the transfer broker in-process (no socket, no clock) through a
fixed synthetic workload at growing request counts and measures the
*durable bytes* each mode pays per admitted request:

* ``wal`` — the PR-7 write-ahead log (``wal=True``): every admission
  and slot commit appends one O(1)-sized fsync'd record; periodic
  compaction rewrites the snapshot but amortizes it over
  ``checkpoint_every`` slots.
* ``legacy`` — the pre-WAL discipline (``wal=False``,
  ``checkpoint_every=1``): every processed slot rewrites the full
  snapshot, whose size grows with the decision history, so total
  durable bytes are quadratic in the request count.

Writes a ``BENCH_durability.json`` record and gates the acceptance
claims from docs/ROBUSTNESS.md:

* WAL bytes/request stay under ``--max-wal-bytes`` (default 4096) at
  the largest point (1000+ requests);
* WAL bytes/request are flat in N (largest/smallest ratio under
  ``--max-growth``, default 1.25) — the O(1) claim;
* legacy snapshot bytes/request *grow* with N (ratio above 1.5), the
  contrast that motivates the WAL.

Usage::

    PYTHONPATH=src python scripts/bench_durability.py \
        [-o benchmarks/results/BENCH_durability.json] \
        [--sizes 250 500 1000] [--batch 10] [--checkpoint-every 25]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.service import ServiceConfig
from repro.service.slotloop import TransferBroker

NUM_DCS = 6
CAPACITY = 50.0
TOPOLOGY_SEED = 2012
WORKLOAD_SEED = 4012
MAX_DEADLINE = 8
MIN_SIZE = 1.0
MAX_SIZE = 10.0


def make_workload(count: int, seed: int = WORKLOAD_SEED):
    """A deterministic stream of submit payloads."""
    rng = np.random.default_rng(seed)
    fields = []
    for i in range(count):
        src = int(rng.integers(0, NUM_DCS))
        dst = int(rng.integers(0, NUM_DCS - 1))
        if dst >= src:
            dst += 1
        fields.append({
            "id": f"d-{i:05d}",
            "source": src,
            "destination": dst,
            "size_gb": float(rng.uniform(MIN_SIZE, MAX_SIZE)),
            "deadline_slots": int(rng.integers(2, MAX_DEADLINE + 1)),
        })
    return fields


def broker_config(workdir: str, *, wal: bool, checkpoint_every: int) -> ServiceConfig:
    return ServiceConfig(
        datacenters=NUM_DCS,
        capacity=CAPACITY,
        seed=TOPOLOGY_SEED,
        max_deadline=MAX_DEADLINE,
        tick_seconds=0.0,
        checkpoint_dir=workdir,
        checkpoint_every=checkpoint_every,
        wal=wal,
    )


def run_mode(count: int, batch: int, workdir: str, *, wal: bool,
             checkpoint_every: int) -> dict:
    """Feed ``count`` requests through one broker; return durable-byte stats."""
    broker = TransferBroker(
        broker_config(workdir, wal=wal, checkpoint_every=checkpoint_every)
    )
    workload = make_workload(count)
    admit_bytes_max = 0
    started = time.perf_counter()
    for i, fields in enumerate(workload):
        if wal:
            before = broker.store.wal.bytes_written
            broker.submit(fields)
            admit_bytes_max = max(
                admit_bytes_max, broker.store.wal.bytes_written - before
            )
        else:
            broker.submit(fields)
        if (i + 1) % batch == 0:
            broker.process_slot()
    if count % batch:
        broker.process_slot()
    elapsed = time.perf_counter() - started

    stats = broker.stats()
    wal_bytes = stats.get("wal_bytes", 0)
    snapshot_bytes = stats.get("snapshot_bytes", 0)
    durable = wal_bytes if wal else snapshot_bytes
    out = {
        "requests": count,
        "slots": broker.next_slot,
        "decided": len(broker.decisions),
        "durable_bytes": durable,
        "bytes_per_request": round(durable / count, 2),
        "snapshot_bytes": snapshot_bytes,
        "checkpoints": stats.get("checkpoints", 0),
        "seconds": round(elapsed, 4),
    }
    if wal:
        out["wal_records"] = stats.get("wal_records", 0)
        out["admit_bytes_max"] = admit_bytes_max
    broker.store.close()
    return out


def run_points(sizes, batch: int, checkpoint_every: int, workdir: str):
    points = []
    for count in sizes:
        wal_dir = Path(workdir) / f"wal-{count}"
        legacy_dir = Path(workdir) / f"legacy-{count}"
        points.append({
            "requests": count,
            "wal": run_mode(count, batch, str(wal_dir), wal=True,
                            checkpoint_every=checkpoint_every),
            "legacy": run_mode(count, batch, str(legacy_dir), wal=False,
                               checkpoint_every=1),
        })
        print(
            f"  n={count:5d}  wal={points[-1]['wal']['bytes_per_request']:8.1f} B/req"
            f"  legacy={points[-1]['legacy']['bytes_per_request']:10.1f} B/req"
        )
    return points


def evaluate_gates(points, max_wal_bytes: float, max_growth: float) -> dict:
    first, last = points[0], points[-1]
    wal_ratio = (
        last["wal"]["bytes_per_request"] / first["wal"]["bytes_per_request"]
    )
    legacy_ratio = (
        last["legacy"]["bytes_per_request"] / first["legacy"]["bytes_per_request"]
    )
    gates = {
        "wal_bytes_per_request": {
            "value": last["wal"]["bytes_per_request"],
            "limit": max_wal_bytes,
            "ok": last["wal"]["bytes_per_request"] <= max_wal_bytes,
        },
        "wal_flat_in_n": {
            "value": round(wal_ratio, 3),
            "limit": max_growth,
            "ok": wal_ratio <= max_growth,
        },
        "legacy_grows_in_n": {
            "value": round(legacy_ratio, 3),
            "floor": 1.5,
            "ok": legacy_ratio >= 1.5,
        },
    }
    gates["ok"] = all(g["ok"] for g in gates.values() if isinstance(g, dict))
    return gates


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", default="benchmarks/results/BENCH_durability.json"
    )
    parser.add_argument("--sizes", type=int, nargs="+", default=[250, 500, 1000])
    parser.add_argument("--batch", type=int, default=10)
    parser.add_argument("--checkpoint-every", type=int, default=25)
    parser.add_argument("--max-wal-bytes", type=float, default=4096.0)
    parser.add_argument("--max-growth", type=float, default=1.25)
    args = parser.parse_args(argv)

    print(f"durability bench: sizes={args.sizes} batch={args.batch} "
          f"checkpoint_every={args.checkpoint_every}")
    with tempfile.TemporaryDirectory(prefix="repro-durability-") as workdir:
        points = run_points(args.sizes, args.batch, args.checkpoint_every, workdir)
    gates = evaluate_gates(points, args.max_wal_bytes, args.max_growth)

    record = {
        "bench": "durability",
        "generated_unix": int(time.time()),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "config": {
            "datacenters": NUM_DCS,
            "capacity": CAPACITY,
            "batch": args.batch,
            "checkpoint_every": args.checkpoint_every,
            "sizes": args.sizes,
        },
        "points": points,
        "gates": gates,
    }
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(record, indent=2) + "\n")

    for name, gate in gates.items():
        if isinstance(gate, dict):
            flag = "PASS" if gate["ok"] else "FAIL"
            print(f"  gate {name}: {flag} ({gate})")
    print(f"wrote {out}  ok={gates['ok']}")
    return 0 if gates["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
