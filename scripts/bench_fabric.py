#!/usr/bin/env python
"""Sharded-fabric capacity sweep: closed-loop admission across shards.

Spawns 1, 2, and 4 WAL-less shard daemons (each a full ``repro serve``
subprocess on a unix socket with the real 250 ms slot clock), then
drives a **closed loop** at fixed per-shard concurrency through
:func:`~repro.service.loadgen.run_fleet_loadgen` — the client plays
front-end router, partitioning requests by the same consistent-hash
:class:`~repro.service.router.ShardMap` the :class:`FleetRouter` uses.
Capacity is sustained decisions/second at that concurrency; scaling the
shard count at constant per-shard concurrency should scale capacity
near-linearly because shards share nothing (separate processes,
ledgers, and clocks).

Writes a ``BENCH_fabric.json`` record and gates the broker-fabric exit
criteria:

* ``linear_scaling`` — 4-shard fleet capacity is at least
  ``--min-speedup`` (default 3.0) times the single-shard capacity;
* ``decision_p99_under_tick`` — every shard at every point keeps p99
  decision latency (slot-tick-to-decision, the admission latency)
  under the 250 ms tick.

Usage::

    PYTHONPATH=src python scripts/bench_fabric.py \
        [-o benchmarks/results/BENCH_fabric.json] \
        [--shards 1 2 4] [--per-shard-requests 150] [--outstanding 8]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.service.loadgen import run_fleet_loadgen
from repro.service.router import ShardMap
from repro.traffic import TransferRequest

NUM_DCS = 8
CAPACITY = 100.0
TOPOLOGY_SEED = 2012
BATCH_SEED = 4012
TICK_SECONDS = 0.25
MAX_DEADLINE = 8
MIN_SIZE = 1.0
MAX_SIZE = 6.0
SHARD_NAMES = ["ap", "eu", "sa", "us"]


def make_requests(count: int, seed: int, shard_map: ShardMap):
    """``count`` requests *per shard*, sources drawn from each shard's
    owned datacenters.

    Consistent hashing over a keyspace of 8 DCs skews (that is fine —
    the router property tests bound balance only over dense keyspaces),
    so a uniform source draw would load shards unevenly and the merged
    capacity would be gated by the unluckiest shard's longer run, not
    by per-shard throughput.  Equal per-shard streams keep the offered
    pressure identical at every shard count; routing still goes through
    the same shard map the fleet router uses.
    """
    rng = np.random.default_rng(seed)
    owned = {name: [] for name in shard_map.shards}
    for dc in range(NUM_DCS):
        owned[shard_map.shard_for(dc)].append(dc)
    requests = []
    for name in sorted(owned):
        sources = owned[name]
        if not sources:
            raise RuntimeError(f"shard {name} owns no datacenters")
        for _ in range(count):
            src = sources[int(rng.integers(0, len(sources)))]
            dst = int(rng.integers(0, NUM_DCS - 1))
            if dst >= src:
                dst += 1
            requests.append(TransferRequest(
                src, dst, float(rng.uniform(MIN_SIZE, MAX_SIZE)),
                int(rng.integers(2, MAX_DEADLINE + 1)), release_slot=0,
            ))
    return requests


def start_shard(sock: str, tick_seconds: float) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--datacenters", str(NUM_DCS), "--capacity", str(CAPACITY),
         "--seed", str(TOPOLOGY_SEED), "--max-deadline", str(MAX_DEADLINE),
         "--tick-seconds", str(tick_seconds)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
        cwd=str(Path(__file__).resolve().parent.parent),
    )
    deadline = time.time() + 30
    while time.time() < deadline:
        if os.path.exists(sock):
            return proc
        if proc.poll() is not None:
            raise RuntimeError(
                f"shard died on startup:\n{proc.stdout.read().decode()}"
            )
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("shard never bound its socket")


def run_point(num_shards: int, per_shard_requests: int, outstanding: int,
              workdir: str, tick_seconds: float = TICK_SECONDS) -> dict:
    """One sweep point: spawn ``num_shards`` daemons, closed-loop them.

    ``outstanding`` is the *per-shard* concurrency; the fleet loadgen
    receives ``outstanding * num_shards`` and splits it back evenly, so
    every shard sees identical offered pressure at every point.
    """
    names = SHARD_NAMES[:num_shards]
    socks = {
        name: str(Path(workdir) / f"{name}-{num_shards}.sock")
        for name in names
    }
    shard_map = ShardMap(names)
    requests = make_requests(
        per_shard_requests, BATCH_SEED + num_shards, shard_map
    )
    procs = [start_shard(sock, tick_seconds) for sock in socks.values()]
    try:
        merged, per_shard = asyncio.run(run_fleet_loadgen(
            requests,
            {name: f"unix:{sock}" for name, sock in socks.items()},
            outstanding=outstanding * num_shards,
            drain=True,
            shard_map=shard_map,
        ))
    finally:
        for proc in procs:
            proc.kill()
            proc.wait(timeout=10)
    return {
        "shards": num_shards,
        "requests": len(requests),
        "fleet": merged.summary(),
        "per_shard": {name: per_shard[name].summary() for name in names},
    }


def evaluate_gates(points, min_speedup: float,
                   tick_seconds: float = TICK_SECONDS) -> dict:
    """Gate the sweep: near-linear scaling + per-shard p99 under a tick."""
    by_shards = {p["shards"]: p for p in points}
    base = by_shards[min(by_shards)]
    widest = by_shards[max(by_shards)]
    base_cap = base["fleet"]["capacity_per_s"]
    wide_cap = widest["fleet"]["capacity_per_s"]
    speedup = wide_cap / base_cap if base_cap > 0 else 0.0
    worst_p99 = max(
        (
            (name, shard["decision_p99_s"])
            for point in points
            for name, shard in point["per_shard"].items()
            if shard["submitted"]
        ),
        key=lambda pair: pair[1],
    )
    clean = all(
        point["fleet"]["failed"] == 0 and point["fleet"]["drained"]
        for point in points
    )
    gates = {
        "linear_scaling": {
            "base_shards": base["shards"],
            "wide_shards": widest["shards"],
            "base_capacity_per_s": base_cap,
            "wide_capacity_per_s": wide_cap,
            "speedup": round(speedup, 3),
            "floor": min_speedup,
            "ok": speedup >= min_speedup,
        },
        "decision_p99_under_tick": {
            "worst_shard": worst_p99[0],
            "value_s": worst_p99[1],
            "limit_s": tick_seconds,
            "ok": worst_p99[1] < tick_seconds,
        },
        "clean_run": {
            "ok": clean,
            "detail": "no failed submissions, every shard drained",
        },
    }
    gates["ok"] = all(g["ok"] for g in gates.values() if isinstance(g, dict))
    return gates


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", default="benchmarks/results/BENCH_fabric.json"
    )
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--per-shard-requests", type=int, default=150)
    parser.add_argument("--outstanding", type=int, default=8,
                        help="closed-loop concurrency per shard")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required 4-shard/1-shard capacity ratio")
    args = parser.parse_args(argv)

    points = []
    with tempfile.TemporaryDirectory(prefix="repro-fabric-") as workdir:
        for num_shards in args.shards:
            point = run_point(
                num_shards, args.per_shard_requests, args.outstanding, workdir
            )
            points.append(point)
            fleet = point["fleet"]
            print(
                f"  shards={num_shards}  capacity {fleet['capacity_per_s']:7.1f}/s"
                f"  admitted {fleet['admitted']}/{fleet['submitted']}"
                f"  decision p99 "
                f"{max(s['decision_p99_s'] for s in point['per_shard'].values())*1000:6.1f}ms"
            )
    gates = evaluate_gates(points, args.min_speedup)

    record = {
        "benchmark": "fabric-capacity",
        "scenario": {
            "datacenters": NUM_DCS,
            "capacity": CAPACITY,
            "topology_seed": TOPOLOGY_SEED,
            "batch_seed": BATCH_SEED,
            "tick_seconds": TICK_SECONDS,
            "max_deadline": MAX_DEADLINE,
            "size_gb": [MIN_SIZE, MAX_SIZE],
            "per_shard_requests": args.per_shard_requests,
            "outstanding_per_shard": args.outstanding,
            "mode": "closed",
        },
        "sweep": points,
        "gates": gates,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(record, indent=1) + "\n")

    for name, gate in gates.items():
        if isinstance(gate, dict):
            print(f"  gate {name}: {'PASS' if gate['ok'] else 'FAIL'} ({gate})")
    print(f"wrote {out}  ok={gates['ok']}")
    return 0 if gates["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
