#!/usr/bin/env python
"""Benchmark the incremental+warm scheduling path against from-scratch.

Runs the default online scenario (10 DCs, 12 simulated slots, the CLI
``figure`` seeds) twice per trial:

* **fast** — ``PostcardScheduler`` defaults: cached time-expanded arcs,
  direct LP assembly, vectorized lowering, warm-start hints;
* **reference** — ``incremental=False, warm_start=False`` under
  ``compile_mode("legacy")``: fresh graph, operator-algebra assembly,
  per-coefficient lowering, cold solves.

Asserts the two are **bit-identical** (final cost, full cost
trajectory) and reports the per-slot LP wall-clock — the obs
``lp.build`` (graph + assembly) and ``lp.solve`` (lowering + optimize)
spans — as the best (minimum) over the trials: scheduler load and other
interference only ever add time, so the minimum is the stablest
estimate of the true cost (same reasoning as ``timeit``).  Writes a
``BENCH_fastpath.json`` record for the benchmark trajectory.

Usage::

    PYTHONPATH=src python scripts/bench_fastpath.py \
        [-o benchmarks/results/BENCH_fastpath.json] [--trials 5] \
        [--min-reduction 30]

Exit status is nonzero if fast and reference results differ, or if the
measured reduction falls below ``--min-reduction`` (pass 0 to make the
timing informational, e.g. on noisy CI runners).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

import numpy as np

from repro import Simulation, complete_topology, obs
from repro.core import PostcardScheduler
from repro.lp.compile import compile_mode
from repro.traffic import PaperWorkload

#: The CLI ``figure`` defaults: the acceptance scenario for the fast path.
NUM_DCS = 10
CAPACITY = 100.0
NUM_SLOTS = 12
MAX_DEADLINE = 3
MAX_FILES = 10
TOPOLOGY_SEED = 2012
WORKLOAD_SEED = 3012


def run_once(incremental: bool, warm_start: bool):
    """One full online simulation; returns (result, span_seconds)."""
    topology = complete_topology(NUM_DCS, capacity=CAPACITY, seed=TOPOLOGY_SEED)
    workload = PaperWorkload(
        topology,
        max_deadline=MAX_DEADLINE,
        max_files=MAX_FILES,
        seed=WORKLOAD_SEED,
    )
    scheduler = PostcardScheduler(
        topology,
        horizon=NUM_SLOTS + MAX_DEADLINE,
        on_infeasible="drop",
        incremental=incremental,
        warm_start=warm_start,
    )
    with obs.collecting() as collector:
        if incremental:
            result = Simulation(scheduler, workload, NUM_SLOTS).run()
        else:
            # The reference also uses the legacy matrix lowering, so the
            # measurement covers the whole before/after delta.
            with compile_mode("legacy"):
                result = Simulation(scheduler, workload, NUM_SLOTS).run()
    spans = {
        name: collector.spans[name].total
        for name in ("lp.build", "lp.solve")
        if name in collector.spans
    }
    spans["total"] = spans.get("lp.build", 0.0) + spans.get("lp.solve", 0.0)
    return result, spans


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        default="benchmarks/results/BENCH_fastpath.json",
        help="where to write the JSON record",
    )
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument(
        "--min-reduction",
        type=float,
        default=30.0,
        help="fail if the median build+solve reduction (%%) is below "
        "this; 0 disables the timing gate",
    )
    args = parser.parse_args(argv)

    fast_spans, ref_spans = [], []
    for trial in range(args.trials):
        fast_result, fast = run_once(incremental=True, warm_start=True)
        ref_result, ref = run_once(incremental=False, warm_start=False)

        if fast_result.final_cost_per_slot != ref_result.final_cost_per_slot:
            print(
                "FAIL: fast path cost "
                f"{fast_result.final_cost_per_slot!r} != reference "
                f"{ref_result.final_cost_per_slot!r}",
                file=sys.stderr,
            )
            return 1
        if not np.array_equal(
            fast_result.cost_trajectory(), ref_result.cost_trajectory()
        ):
            print("FAIL: cost trajectories diverge", file=sys.stderr)
            return 1

        fast_spans.append(fast)
        ref_spans.append(ref)
        print(
            f"trial {trial + 1}/{args.trials}: "
            f"fast {fast['total']:.3f}s ref {ref['total']:.3f}s "
            f"(identical cost {fast_result.final_cost_per_slot:.2f})"
        )

    def best(samples, key):
        return min(s[key] for s in samples)

    fast_best = {k: best(fast_spans, k) for k in ("lp.build", "lp.solve", "total")}
    ref_best = {k: best(ref_spans, k) for k in ("lp.build", "lp.solve", "total")}
    reduction = 100.0 * (1.0 - fast_best["total"] / ref_best["total"])

    record = {
        "benchmark": "fastpath",
        "scenario": {
            "datacenters": NUM_DCS,
            "capacity": CAPACITY,
            "num_slots": NUM_SLOTS,
            "max_deadline": MAX_DEADLINE,
            "max_files": MAX_FILES,
            "topology_seed": TOPOLOGY_SEED,
            "workload_seed": WORKLOAD_SEED,
        },
        "trials": args.trials,
        "identical_results": True,
        "final_cost_per_slot": fast_result.final_cost_per_slot,
        "fast_best_seconds": {
            "build": round(fast_best["lp.build"], 6),
            "solve": round(fast_best["lp.solve"], 6),
            "total": round(fast_best["total"], 6),
        },
        "reference_best_seconds": {
            "build": round(ref_best["lp.build"], 6),
            "solve": round(ref_best["lp.solve"], 6),
            "total": round(ref_best["total"], 6),
        },
        "reduction_percent": round(reduction, 2),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    with open(args.output, "w") as fh:
        fh.write(json.dumps(record, indent=1) + "\n")

    print(
        f"\nbest build+solve: fast {fast_best['total']:.3f}s "
        f"(build {fast_best['lp.build']:.3f} / solve {fast_best['lp.solve']:.3f}) "
        f"vs reference {ref_best['total']:.3f}s "
        f"(build {ref_best['lp.build']:.3f} / solve {ref_best['lp.solve']:.3f})"
    )
    print(f"reduction: {reduction:.1f}%  ->  {args.output}")

    if args.min_reduction > 0 and reduction < args.min_reduction:
        print(
            f"FAIL: reduction {reduction:.1f}% below the "
            f"{args.min_reduction:.0f}% gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
