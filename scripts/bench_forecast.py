#!/usr/bin/env python
"""Benchmark forecast-driven proactive scheduling vs the reactive hybrid.

Part one (the gate): the diurnal proactive-placement scenario — an
urgent short-deadline diurnal stream (it sets each day's watermark)
merged with a deferrable day-deadline bulk stream, billed daily.  The
reactive hybrid parks bulk as late as possible, which is the *next*
day's peak phase; at the billing rollover those pre-committed slots
re-seed the new period's charged watermark high.  The forecast-aware
hybrid reserves predicted peak load and tucks the same bulk into
predicted troughs, so each day restarts from a lower watermark.  Both
runs must admit every file (equal admission — the forecast shapes
placement, never admission), must not trip the stability guard, and
the forecast run must cut the total bill by at least ``--min-reduction``
percent (default 5).

Part two (informational): the same comparison swept over workload
seeds, recording the per-seed reduction for the EXPERIMENTS.md table —
the direction must hold beyond one lucky draw.

Usage::

    PYTHONPATH=src python scripts/bench_forecast.py \
        [-o benchmarks/results/BENCH_forecast.json] [--min-reduction 5]

Exit status is nonzero if admission differs between the two headline
runs, the guard trips, or the measured reduction falls below
``--min-reduction`` (pass 0 to make the cost gate informational).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro import Simulation, complete_topology
from repro.forecast import ForecastConfig, ForecastProvider
from repro.heuristic import HybridScheduler
from repro.traffic import DiurnalWorkload, MergedWorkload

NUM_DCS = 3
CAPACITY = 500.0
PRICE_LOW = 1.0
PRICE_HIGH = 4.0
SLOTS_PER_DAY = 24
DAYS = 4
TOPOLOGY_SEED = 3
WORKLOAD_SEED = 5

#: The urgent stream: short deadlines, strong diurnal swing.  Its peak
#: is what sets each day's charged watermark.
URGENT_DEADLINE = 2
URGENT_PEAK_FILES = 20
URGENT_TROUGH_FILES = 4

#: The bulk stream: a full day of deadline slack — the volume a
#: proactive scheduler can park anywhere in the coming cycle.
BULK_PEAK_FILES = 8
BULK_TROUGH_FILES = 2

MIN_SIZE = 40.0
MAX_SIZE = 60.0

#: Informational sweep seeds (part two).
SWEEP_SEEDS = (2, 5, 17, 42)


def build_workload(topology, seed):
    """Urgent diurnal + deferrable bulk, phase-aligned."""
    return MergedWorkload([
        DiurnalWorkload(
            topology,
            max_deadline=URGENT_DEADLINE,
            peak_files=URGENT_PEAK_FILES,
            trough_files=URGENT_TROUGH_FILES,
            slots_per_day=SLOTS_PER_DAY,
            min_size=MIN_SIZE,
            max_size=MAX_SIZE,
            seed=seed,
        ),
        DiurnalWorkload(
            topology,
            max_deadline=SLOTS_PER_DAY,
            peak_files=BULK_PEAK_FILES,
            trough_files=BULK_TROUGH_FILES,
            slots_per_day=SLOTS_PER_DAY,
            min_size=MIN_SIZE,
            max_size=MAX_SIZE,
            seed=seed + 100,
        ),
    ])


def run_once(workload_seed, forecast, days=DAYS):
    """One seeded hybrid run; returns the SimulationResult."""
    topology = complete_topology(
        NUM_DCS,
        capacity=CAPACITY,
        price_low=PRICE_LOW,
        price_high=PRICE_HIGH,
        seed=TOPOLOGY_SEED,
    )
    workload = build_workload(topology, workload_seed)
    num_slots = days * SLOTS_PER_DAY
    scheduler = HybridScheduler(
        topology, horizon=num_slots + SLOTS_PER_DAY + 2, on_infeasible="drop"
    )
    if forecast:
        scheduler.attach_forecast(
            ForecastProvider(
                ForecastConfig(period=SLOTS_PER_DAY, horizon=SLOTS_PER_DAY)
            )
        )
    return Simulation(
        scheduler, workload, num_slots, slots_per_period=SLOTS_PER_DAY
    ).run()


def compare(workload_seed, days=DAYS):
    """Reactive vs forecast at one seed; returns a comparison row."""
    reactive = run_once(workload_seed, forecast=False, days=days)
    proactive = run_once(workload_seed, forecast=True, days=days)
    reduction = 100.0 * (1.0 - proactive.total_bill / reactive.total_bill)
    stats = proactive.forecast or {}
    return {
        "workload_seed": workload_seed,
        "reactive_bill": round(reactive.total_bill, 2),
        "forecast_bill": round(proactive.total_bill, 2),
        "reduction_percent": round(reduction, 2),
        "requests": reactive.total_requests,
        "reactive_rejected": reactive.total_rejected,
        "forecast_rejected": proactive.total_rejected,
        "reactive_max_lateness": reactive.max_lateness(),
        "forecast_max_lateness": proactive.max_lateness(),
        "forecast_mape": stats.get("mape"),
        "forecast_trust": stats.get("trust"),
        "guard_trips": stats.get("guard_trips"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        default="benchmarks/results/BENCH_forecast.json",
        help="where to write the JSON record",
    )
    parser.add_argument(
        "--min-reduction",
        type=float,
        default=5.0,
        help="fail if the headline bill reduction (%%) is below this; "
        "0 disables the cost gate",
    )
    args = parser.parse_args(argv)

    headline = compare(WORKLOAD_SEED)
    print(
        f"headline seed {WORKLOAD_SEED}: reactive "
        f"{headline['reactive_bill']:.0f} vs forecast "
        f"{headline['forecast_bill']:.0f} "
        f"({headline['reduction_percent']:+.2f}%), rejected "
        f"{headline['reactive_rejected']}/{headline['forecast_rejected']} "
        f"of {headline['requests']}, guard trips {headline['guard_trips']}"
    )

    sweep = []
    for seed in SWEEP_SEEDS:
        row = compare(seed)
        sweep.append(row)
        print(
            f"sweep seed {seed}: {row['reduction_percent']:+.2f}% "
            f"(rejected {row['reactive_rejected']}/{row['forecast_rejected']})"
        )

    record = {
        "benchmark": "forecast",
        "scenario": {
            "datacenters": NUM_DCS,
            "capacity": CAPACITY,
            "slots_per_day": SLOTS_PER_DAY,
            "days": DAYS,
            "urgent_deadline": URGENT_DEADLINE,
            "urgent_peak_files": URGENT_PEAK_FILES,
            "urgent_trough_files": URGENT_TROUGH_FILES,
            "bulk_deadline": SLOTS_PER_DAY,
            "bulk_peak_files": BULK_PEAK_FILES,
            "bulk_trough_files": BULK_TROUGH_FILES,
            "min_size": MIN_SIZE,
            "max_size": MAX_SIZE,
            "topology_seed": TOPOLOGY_SEED,
            "workload_seed": WORKLOAD_SEED,
        },
        "headline": headline,
        "seed_sweep": sweep,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    with open(args.output, "w") as fh:
        fh.write(json.dumps(record, indent=1) + "\n")
    print(f"\n-> {args.output}")

    failed = False
    if headline["reactive_rejected"] != headline["forecast_rejected"]:
        print(
            "FAIL: admission differs between reactive and forecast runs",
            file=sys.stderr,
        )
        failed = True
    if headline["forecast_max_lateness"] != 0:
        print("FAIL: forecast run missed a deadline", file=sys.stderr)
        failed = True
    if headline["guard_trips"]:
        print("FAIL: stability guard tripped on the headline run", file=sys.stderr)
        failed = True
    if (
        args.min_reduction > 0
        and headline["reduction_percent"] < args.min_reduction
    ):
        print(
            f"FAIL: reduction {headline['reduction_percent']:.2f}% below "
            f"the {args.min_reduction:.0f}% gate",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
