#!/usr/bin/env python
"""Single-slot scaling sweep: fast-lane admission vs. the Postcard LP.

Feeds one slot's batch of N requests — N swept from 50 to 2000 — to the
fast-lane heuristic and to the Postcard LP on the same 10-DC topology,
timing each scheduler's ``on_slot`` decision.  The LP leg is capped
(``--lp-max``, default 400 requests) because its assembly+solve grows
super-linearly; the heuristic runs the full sweep.  File sizes are kept
small relative to capacity so the whole batch is feasible at every N —
admission differences would otherwise confound the cost comparison.

Reports, per N: decision seconds (best of ``--trials``), cost per slot,
and the heuristic/LP cost ratio where both ran.  Writes a
``BENCH_heuristic.json`` record for the benchmark trajectory and gates
on the heuristic's scaling: the log-log slope fitted over the sweep
must stay below ``--max-exponent`` (1.0 is linear; the admission test
is O(paths x window) per request, so the batch should scale
near-linearly), and the heuristic's largest-N decision time must beat
the LP's time at its own cap.

Usage::

    PYTHONPATH=src python scripts/bench_heuristic.py \
        [-o benchmarks/results/BENCH_heuristic.json] [--trials 3] \
        [--lp-max 400] [--max-exponent 1.35]

Exit status is nonzero if a gate fails (pass ``--max-exponent 0`` to
make the scaling gate informational on noisy runners).
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time

import numpy as np

from repro import complete_topology
from repro.core import PostcardScheduler
from repro.heuristic import FastLaneScheduler
from repro.traffic import TransferRequest

NUM_DCS = 10
CAPACITY = 100.0
TOPOLOGY_SEED = 2012
BATCH_SEED = 3012
MIN_DEADLINE = 2
MAX_DEADLINE = 5
MIN_SIZE = 1.0
MAX_SIZE = 5.0
SWEEP = (50, 100, 200, 400, 800, 2000)


def make_batch(num_requests: int, seed: int):
    """A feasible single-slot batch: small files, loose-ish deadlines."""
    rng = np.random.default_rng(seed)
    requests = []
    for _ in range(num_requests):
        src = int(rng.integers(0, NUM_DCS))
        dst = int(rng.integers(0, NUM_DCS - 1))
        if dst >= src:
            dst += 1
        size = float(rng.uniform(MIN_SIZE, MAX_SIZE))
        deadline = int(rng.integers(MIN_DEADLINE, MAX_DEADLINE + 1))
        requests.append(TransferRequest(src, dst, size, deadline, release_slot=0))
    return requests


def run_once(factory, batch):
    """Schedule one batch on a fresh scheduler; returns (seconds, state)."""
    topology = complete_topology(NUM_DCS, capacity=CAPACITY, seed=TOPOLOGY_SEED)
    scheduler = factory(topology)
    requests = [r.with_release(0) for r in batch]
    start = time.perf_counter()
    scheduler.on_slot(0, requests)
    elapsed = time.perf_counter() - start
    return elapsed, scheduler.state


def best_run(factory, batch, trials):
    """Best-of-``trials`` timing (interference only adds time)."""
    seconds, state = min(
        (run_once(factory, batch) for _ in range(trials)), key=lambda r: r[0]
    )
    return seconds, state


def fit_exponent(ns, seconds):
    """Slope of log(seconds) over log(N): 1.0 = linear scaling."""
    xs = np.log(np.asarray(ns, dtype=float))
    ys = np.log(np.asarray(seconds, dtype=float))
    slope, _ = np.polyfit(xs, ys, 1)
    return float(slope)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        default="benchmarks/results/BENCH_heuristic.json",
        help="where to write the JSON record",
    )
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument(
        "--lp-max",
        type=int,
        default=400,
        help="largest batch the LP leg runs (0 skips the LP entirely)",
    )
    parser.add_argument(
        "--max-exponent",
        type=float,
        default=1.35,
        help="fail if the heuristic's fitted scaling exponent exceeds "
        "this; 0 disables the gate",
    )
    args = parser.parse_args(argv)

    def heuristic_factory(topology):
        return FastLaneScheduler(
            topology, horizon=MAX_DEADLINE + 1, on_infeasible="drop"
        )

    def lp_factory(topology):
        return PostcardScheduler(
            topology, horizon=MAX_DEADLINE + 1, on_infeasible="drop"
        )

    rows = []
    for n in SWEEP:
        batch = make_batch(n, BATCH_SEED + n)
        fast_seconds, fast_state = best_run(heuristic_factory, batch, args.trials)
        row = {
            "requests": n,
            "heuristic_seconds": round(fast_seconds, 6),
            "heuristic_cost": round(fast_state.current_cost_per_slot(), 4),
            "heuristic_rejected": len(fast_state.rejected),
            "lp_seconds": None,
            "lp_cost": None,
            "cost_ratio": None,
        }
        if args.lp_max and n <= args.lp_max:
            lp_seconds, lp_state = best_run(lp_factory, batch, args.trials)
            row["lp_seconds"] = round(lp_seconds, 6)
            row["lp_cost"] = round(lp_state.current_cost_per_slot(), 4)
            if lp_state.current_cost_per_slot() > 0:
                row["cost_ratio"] = round(
                    fast_state.current_cost_per_slot()
                    / lp_state.current_cost_per_slot(),
                    4,
                )
        rows.append(row)
        lp_note = (
            f"lp {row['lp_seconds']:.3f}s ratio {row['cost_ratio']}"
            if row["lp_seconds"] is not None
            else "lp skipped"
        )
        print(
            f"N={n:5d}: heuristic {fast_seconds:.4f}s "
            f"(rejected {row['heuristic_rejected']}), {lp_note}"
        )

    exponent = fit_exponent(
        [r["requests"] for r in rows], [r["heuristic_seconds"] for r in rows]
    )
    lp_rows = [r for r in rows if r["lp_seconds"] is not None]
    lp_cap_seconds = lp_rows[-1]["lp_seconds"] if lp_rows else None
    largest = rows[-1]

    record = {
        "benchmark": "heuristic-scaling",
        "scenario": {
            "datacenters": NUM_DCS,
            "capacity": CAPACITY,
            "topology_seed": TOPOLOGY_SEED,
            "batch_seed": BATCH_SEED,
            "size_gb": [MIN_SIZE, MAX_SIZE],
            "deadline_slots": [MIN_DEADLINE, MAX_DEADLINE],
        },
        "trials": args.trials,
        "sweep": rows,
        "heuristic_scaling_exponent": round(exponent, 3),
        "lp_cap_requests": args.lp_max,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    with open(args.output, "w") as fh:
        fh.write(json.dumps(record, indent=1) + "\n")

    print(
        f"\nheuristic scaling exponent: {exponent:.3f} "
        f"(1.0 = linear) over N={SWEEP[0]}..{SWEEP[-1]}  ->  {args.output}"
    )

    failed = False
    if args.max_exponent > 0 and exponent > args.max_exponent:
        print(
            f"FAIL: scaling exponent {exponent:.3f} above the "
            f"{args.max_exponent:.2f} gate",
            file=sys.stderr,
        )
        failed = True
    if lp_cap_seconds is not None and largest["heuristic_seconds"] >= lp_cap_seconds:
        print(
            f"FAIL: heuristic at N={largest['requests']} "
            f"({largest['heuristic_seconds']:.3f}s) is not faster than the "
            f"LP at N={lp_rows[-1]['requests']} ({lp_cap_seconds:.3f}s)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
