#!/usr/bin/env python
"""Benchmark link-schedule churn: incremental GraphCache vs cold builds.

Part one (the gate): a rolling online window over a windowed topology
with schedule mutations landing between builds — the LEO scenario's
steady state.  Each build is done twice, through the persistent
:class:`GraphCache` (epoch-tracked window invalidation) and from
scratch via :class:`TimeExpandedGraph`; the two must be **arc-for-arc
identical** on every build, and the cache must win on wall clock
(best-of-trials, same reasoning as ``timeit``).

Part two (informational): a windowed-vs-always-on simulation sweep —
the same seeded workload scheduled with and without a LEO pass
schedule — recording cost per slot and admissions for the
EXPERIMENTS.md table.

Usage::

    PYTHONPATH=src python scripts/bench_schedule.py \
        [-o benchmarks/results/BENCH_schedule.json] [--trials 5] \
        [--min-reduction 20]

Exit status is nonzero if any incremental build differs from its cold
build, or if the measured rebuild reduction falls below
``--min-reduction`` (pass 0 to make the timing informational on noisy
runners).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro import Simulation, complete_topology
from repro.net.presets import leo_pass_schedule
from repro.registry import make_scheduler
from repro.timeexp.cache import GraphCache
from repro.timeexp.graph import TimeExpandedGraph
from repro.traffic import PaperWorkload

NUM_DCS = 10
CAPACITY = 100.0
NUM_SLOTS = 12
MAX_DEADLINE = 3
MAX_FILES = 10
TOPOLOGY_SEED = 2012
WORKLOAD_SEED = 3012

#: Rolling-window rebuild scenario (part one).
CHURN_BUILDS = 40
CHURN_HORIZON = 16
#: Every Nth build mutates one link's windows before rebuilding.
CHURN_EVERY = 4


def churn_schedule(topology, num_slots):
    """The part-one schedule: LEO passes over the bench topology."""
    return leo_pass_schedule(
        topology,
        num_slots,
        fraction=0.5,
        period=6,
        pass_length=2,
        seed=TOPOLOGY_SEED,
    )


def mutate(schedule, links, build_index):
    """One deterministic mutation: re-window a rotating link."""
    src, dst = links[build_index % len(links)]
    start = build_index % (CHURN_BUILDS - 2)
    schedule.set_windows(src, dst, [(start, start + 2)])


def arc_tuples(graph):
    return [
        (a.src, a.dst, a.slot, a.kind, a.capacity, a.price) for a in graph.arcs
    ]


def run_churn_once():
    """One rolling-window pass; returns (identical, cache_s, cold_s)."""
    topology = complete_topology(NUM_DCS, capacity=CAPACITY, seed=TOPOLOGY_SEED)
    total_slots = CHURN_BUILDS + CHURN_HORIZON
    schedule = churn_schedule(topology, total_slots)
    links = sorted(schedule.scheduled_links())
    cache = GraphCache(topology, link_schedule=schedule)

    identical = True
    cache_s = cold_s = 0.0
    for build in range(CHURN_BUILDS):
        if build and build % CHURN_EVERY == 0:
            mutate(schedule, links, build)
        t0 = time.perf_counter()
        incremental = cache.build(build, CHURN_HORIZON)
        t1 = time.perf_counter()
        cold = TimeExpandedGraph(
            topology, build, CHURN_HORIZON, link_schedule=schedule
        )
        t2 = time.perf_counter()
        cache_s += t1 - t0
        cold_s += t2 - t1
        if arc_tuples(incremental) != arc_tuples(cold):
            identical = False
    return identical, cache_s, cold_s


def run_simulation(link_schedule):
    """One seeded online run; returns the SimulationResult."""
    topology = complete_topology(NUM_DCS, capacity=CAPACITY, seed=TOPOLOGY_SEED)
    workload = PaperWorkload(
        topology,
        max_deadline=MAX_DEADLINE,
        max_files=MAX_FILES,
        seed=WORKLOAD_SEED,
    )
    scheduler = make_scheduler(
        "postcard", topology, horizon=NUM_SLOTS + MAX_DEADLINE
    )
    if link_schedule is not None:
        scheduler.state.link_schedule = link_schedule
    return Simulation(scheduler, workload, NUM_SLOTS).run()


def windowed_sweep():
    """Windowed-vs-always-on cost/admission rows (part two)."""
    topology = complete_topology(NUM_DCS, capacity=CAPACITY, seed=TOPOLOGY_SEED)
    horizon_slots = NUM_SLOTS + MAX_DEADLINE
    scenarios = [
        ("always-on", None),
        (
            "leo-50pct",
            leo_pass_schedule(
                topology, horizon_slots, fraction=0.5, period=6,
                pass_length=2, seed=TOPOLOGY_SEED,
            ),
        ),
        (
            "leo-25pct",
            leo_pass_schedule(
                topology, horizon_slots, fraction=0.25, period=6,
                pass_length=2, seed=TOPOLOGY_SEED,
            ),
        ),
    ]
    rows = []
    for name, schedule in scenarios:
        result = run_simulation(schedule)
        rows.append(
            {
                "scenario": name,
                "coverage": round(
                    schedule.coverage(horizon_slots), 4
                ) if schedule else 1.0,
                "cost_per_slot": round(result.final_cost_per_slot, 4),
                "requests": result.total_requests,
                "rejected": result.total_rejected,
            }
        )
        print(
            f"sweep {name}: cost/slot {result.final_cost_per_slot:.2f} "
            f"rejected {result.total_rejected}/{result.total_requests}"
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        default="benchmarks/results/BENCH_schedule.json",
        help="where to write the JSON record",
    )
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument(
        "--min-reduction",
        type=float,
        default=20.0,
        help="fail if the best incremental-rebuild reduction (%%) is "
        "below this; 0 disables the timing gate",
    )
    args = parser.parse_args(argv)

    cache_samples, cold_samples = [], []
    identical = True
    for trial in range(args.trials):
        ok, cache_s, cold_s = run_churn_once()
        identical = identical and ok
        cache_samples.append(cache_s)
        cold_samples.append(cold_s)
        print(
            f"trial {trial + 1}/{args.trials}: incremental {cache_s:.3f}s "
            f"cold {cold_s:.3f}s "
            f"({'identical' if ok else 'MISMATCH'})"
        )
    if not identical:
        print(
            "FAIL: incremental rebuild diverged from cold build",
            file=sys.stderr,
        )
        return 1

    cache_best = min(cache_samples)
    cold_best = min(cold_samples)
    reduction = 100.0 * (1.0 - cache_best / cold_best)

    sweep = windowed_sweep()

    record = {
        "benchmark": "schedule",
        "scenario": {
            "datacenters": NUM_DCS,
            "capacity": CAPACITY,
            "builds": CHURN_BUILDS,
            "horizon": CHURN_HORIZON,
            "mutate_every": CHURN_EVERY,
            "topology_seed": TOPOLOGY_SEED,
            "workload_seed": WORKLOAD_SEED,
        },
        "trials": args.trials,
        "identical_results": identical,
        "incremental_best_seconds": round(cache_best, 6),
        "cold_best_seconds": round(cold_best, 6),
        "reduction_percent": round(reduction, 2),
        "windowed_sweep": sweep,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    with open(args.output, "w") as fh:
        fh.write(json.dumps(record, indent=1) + "\n")

    print(
        f"\nbest rebuild pass: incremental {cache_best:.3f}s vs cold "
        f"{cold_best:.3f}s over {CHURN_BUILDS} builds"
    )
    print(f"reduction: {reduction:.1f}%  ->  {args.output}")

    if args.min_reduction > 0 and reduction < args.min_reduction:
        print(
            f"FAIL: reduction {reduction:.1f}% below the "
            f"{args.min_reduction:.0f}% gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
