#!/usr/bin/env python
"""Service throughput/latency sweep: the daemon under offered load.

Starts an in-process transfer-broker daemon (unix socket, default
10-DC preset, automatic slot clock) per point and replays ~8 seconds
of paced traffic through the load generator at each offered rate,
sweeping 100 -> 5000 requests/minute.  Reports, per rate: sustained
throughput, admission decisions, and the three latency percentiles the
service defines (client round trip ``rtt``, queue ``wait``, and
``decision`` — the slot-tick-to-decision time that is the service's
admission latency; see docs/SERVICE.md).

Writes a ``BENCH_service.json`` record and gates the acceptance
targets: at every rate up to ``--gate-rate`` (default 1000 req/min)
the daemon must sustain at least ``--min-sustain`` of the offered rate
with zero failures/misses and p99 decision latency under one virtual
slot tick.  Pass ``--gate-rate 0`` to make the gates informational on
noisy shared runners.

Usage::

    PYTHONPATH=src python scripts/bench_service.py \
        [-o benchmarks/results/BENCH_service.json] \
        [--rates 100 500 1000 2000 5000] [--seconds 8] \
        [--gate-rate 1000] [--min-sustain 0.9]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.service import ServiceConfig, ServiceDaemon, run_loadgen
from repro.traffic import TransferRequest

NUM_DCS = 10
CAPACITY = 100.0
TOPOLOGY_SEED = 2012
BATCH_SEED = 4012
TICK_SECONDS = 0.25
MAX_DEADLINE = 8
MIN_SIZE = 1.0
MAX_SIZE = 10.0


def make_requests(count: int, seed: int):
    rng = np.random.default_rng(seed)
    requests = []
    for _ in range(count):
        src = int(rng.integers(0, NUM_DCS))
        dst = int(rng.integers(0, NUM_DCS - 1))
        if dst >= src:
            dst += 1
        size = float(rng.uniform(MIN_SIZE, MAX_SIZE))
        deadline = int(rng.integers(2, MAX_DEADLINE + 1))
        requests.append(TransferRequest(src, dst, size, deadline, release_slot=0))
    return requests


async def run_point(rate: float, count: int, workdir: str):
    """One sweep point: fresh daemon + one paced replay, then drain."""
    sock = str(Path(workdir) / f"bench-{int(rate)}.sock")
    config = ServiceConfig(
        socket_path=sock,
        datacenters=NUM_DCS,
        capacity=CAPACITY,
        seed=TOPOLOGY_SEED,
        max_deadline=MAX_DEADLINE,
        tick_seconds=TICK_SECONDS,
    )
    daemon = ServiceDaemon(config)
    await daemon.start()
    try:
        return await run_loadgen(
            make_requests(count, BATCH_SEED + int(rate)),
            socket_path=sock,
            rate_per_min=rate,
            drain=True,
        )
    finally:
        await daemon.stop()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        default="benchmarks/results/BENCH_service.json",
        help="where to write the JSON record",
    )
    parser.add_argument(
        "--rates", type=float, nargs="+",
        default=[100.0, 500.0, 1000.0, 2000.0, 5000.0],
        help="offered rates to sweep, requests/minute",
    )
    parser.add_argument(
        "--seconds", type=float, default=8.0,
        help="seconds of traffic replayed per point (sets request count)",
    )
    parser.add_argument(
        "--gate-rate", type=float, default=1000.0,
        help="gate sustain + latency at rates up to this; 0 disables "
        "the gates (informational mode for shared runners)",
    )
    parser.add_argument(
        "--min-sustain", type=float, default=0.9,
        help="minimum sustained/offered throughput ratio at gated rates",
    )
    args = parser.parse_args(argv)

    rows = []
    with tempfile.TemporaryDirectory() as workdir:
        for rate in args.rates:
            count = max(20, round(rate / 60.0 * args.seconds))
            result = asyncio.run(run_point(rate, count, workdir))
            summary = result.summary()
            row = {"offered_per_min": rate, "requests": count, **summary}
            rows.append(row)
            print(
                f"rate {rate:6.0f}/min: sustained "
                f"{summary['throughput_per_min']:7.1f}/min "
                f"admitted {summary['admitted']}/{summary['submitted']} "
                f"decision p50 {summary['decision_p50_s']*1000:.1f}ms "
                f"p99 {summary['decision_p99_s']*1000:.1f}ms "
                f"wait p99 {summary['wait_p99_s']*1000:.0f}ms "
                f"misses {summary['deadline_misses']}"
            )

    record = {
        "benchmark": "service-throughput",
        "scenario": {
            "datacenters": NUM_DCS,
            "capacity": CAPACITY,
            "topology_seed": TOPOLOGY_SEED,
            "batch_seed": BATCH_SEED,
            "tick_seconds": TICK_SECONDS,
            "max_deadline": MAX_DEADLINE,
            "size_gb": [MIN_SIZE, MAX_SIZE],
            "seconds_per_point": args.seconds,
        },
        "sweep": rows,
        "gate_rate_per_min": args.gate_rate,
        "min_sustain_ratio": args.min_sustain,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    with open(args.output, "w") as fh:
        fh.write(json.dumps(record, indent=1) + "\n")
    print(f"\nwrote {len(rows)} sweep points -> {args.output}")

    failed = False
    if args.gate_rate > 0:
        for row in rows:
            if row["offered_per_min"] > args.gate_rate:
                continue
            rate = row["offered_per_min"]
            sustained = row["throughput_per_min"]
            if sustained < args.min_sustain * rate:
                print(
                    f"FAIL: {rate:.0f}/min offered but only "
                    f"{sustained:.1f}/min sustained "
                    f"(< {args.min_sustain:.0%})",
                    file=sys.stderr,
                )
                failed = True
            if row["decision_p99_s"] >= TICK_SECONDS:
                print(
                    f"FAIL: p99 decision latency {row['decision_p99_s']:.3f}s "
                    f"at {rate:.0f}/min is not under one tick "
                    f"({TICK_SECONDS}s)",
                    file=sys.stderr,
                )
                failed = True
            if row["failed"] or row["deadline_misses"] or not row["drained"]:
                print(
                    f"FAIL: rate {rate:.0f}/min had failed="
                    f"{row['failed']} misses={row['deadline_misses']} "
                    f"drained={row['drained']}",
                    file=sys.stderr,
                )
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
