#!/usr/bin/env python
"""Check markdown cross-references: relative paths and internal anchors.

Scans the given markdown files (default: ``README.md`` and
``docs/*.md``) for inline links ``[text](target)`` and validates every
*internal* target:

* ``path`` — the file or directory must exist, resolved relative to
  the *linking* file's directory;
* ``path#anchor`` — the path must exist *and* contain a heading whose
  GitHub-style slug equals ``anchor``;
* ``#anchor`` — the current file must contain a matching heading.

External targets (``http://``, ``https://``, ``mailto:``) are ignored
— CI must not depend on the network.  Exit status is the number of
broken links (0 = clean), so the CI docs job can gate on it directly.

Usage::

    python scripts/check_links.py [FILE.md ...]
"""

from __future__ import annotations

import pathlib
import re
import sys

#: Inline markdown links, skipping images.  Targets with spaces are
#: invalid in GitHub markdown, so the terse character class is enough.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, strip punctuation, dashes."""
    # Inline code/emphasis markers vanish, as does any other character
    # that is not a word character, space, or hyphen.
    text = heading.lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.strip().replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set:
    """All heading slugs in one markdown file (code fences skipped)."""
    slugs: set = set()
    counts: dict = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        # GitHub disambiguates duplicate headings with -1, -2, ...
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(path: pathlib.Path) -> list:
    """All broken internal links in one file, as printable strings."""
    problems = []
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            rel, _, anchor = target.partition("#")
            dest = (path.parent / rel).resolve() if rel else path.resolve()
            if not dest.exists():
                problems.append(
                    f"{path}:{lineno}: broken path {target!r} "
                    f"(resolved {dest})"
                )
                continue
            if anchor:
                if dest.is_dir() or dest.suffix.lower() != ".md":
                    problems.append(
                        f"{path}:{lineno}: anchor on non-markdown "
                        f"target {target!r}"
                    )
                elif anchor not in anchors_of(dest):
                    problems.append(
                        f"{path}:{lineno}: missing anchor {target!r}"
                    )
    return problems


def main(argv=None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if args:
        files = [pathlib.Path(a) for a in args]
    else:
        root = pathlib.Path(__file__).resolve().parent.parent
        files = [root / "README.md"] + sorted((root / "docs").glob("*.md"))

    missing = [f for f in files if not f.exists()]
    for f in missing:
        print(f"no such file: {f}", file=sys.stderr)
    if missing:
        return len(missing)

    problems = []
    checked = 0
    for f in files:
        problems.extend(check_file(f))
        checked += 1
    for p in problems:
        print(p, file=sys.stderr)
    print(f"checked {checked} files: {len(problems)} broken links")
    return len(problems)


if __name__ == "__main__":
    sys.exit(main())
