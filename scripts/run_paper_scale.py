#!/usr/bin/env python
"""Run the full Sec. VII evaluation at the paper's own scale.

Defaults to the paper's parameters — 20 datacenters, 100 slots,
1-20 files/slot, 10 runs per setting — which takes a few hours on a
laptop (the maxT=8 settings dominate; each online round solves a
~64k-variable LP).  `--runs/--slots` trade fidelity for time; the
benchmark suite's smoke scale is the 12-slot/3-run corner of the same
grid.

Results append to ``benchmarks/results/paper.jsonl`` in the same record
format as the pytest benchmarks, so

    python -m repro report benchmarks/results/paper.jsonl -o PAPER.md

renders the final tables.

Usage:
    python scripts/run_paper_scale.py                  # everything
    python scripts/run_paper_scale.py --figures fig6 fig7 --runs 3
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.registry import scheduler_factory
from repro.sim.runner import ExperimentSetting, run_comparison

FIGURES = {
    "fig4": (100.0, 3),
    "fig5": (100.0, 8),
    "fig6": (30.0, 3),
    "fig7": (30.0, 8),
}

DEFAULT_SCHEDULERS = ["postcard", "flow-based", "flow-2phase", "direct"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figures", nargs="+", choices=sorted(FIGURES),
                        default=sorted(FIGURES))
    parser.add_argument("--schedulers", nargs="+", default=DEFAULT_SCHEDULERS)
    parser.add_argument("--runs", type=int, default=10)
    parser.add_argument("--slots", type=int, default=100)
    parser.add_argument("--datacenters", type=int, default=20)
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument(
        "--output",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks" / "results" / "paper.jsonl"
        ),
    )
    args = parser.parse_args(argv)

    factories = {name: scheduler_factory(name) for name in args.schedulers}
    out_path = pathlib.Path(args.output)
    out_path.parent.mkdir(parents=True, exist_ok=True)

    for figure in args.figures:
        capacity, max_deadline = FIGURES[figure]
        setting = ExperimentSetting(
            figure,
            capacity=capacity,
            max_deadline=max_deadline,
            num_datacenters=args.datacenters,
            num_slots=args.slots,
        )
        print(f"== {setting.describe()} x {args.runs} runs", flush=True)
        started = time.time()
        comparison = run_comparison(
            setting, factories, runs=args.runs, base_seed=args.seed
        )
        elapsed = time.time() - started
        print(comparison.to_table())
        print(f"({elapsed:.0f}s)\n", flush=True)

        record = {
            "figure": figure,
            "scale": "paper",
            "setting": setting.describe(),
            "runs": args.runs,
            "means": {n: comparison.interval(n).mean for n in comparison.costs},
            "half_widths": {
                n: comparison.interval(n).half_width for n in comparison.costs
            },
            "rejected": {
                n: sum(r.total_rejected for r in rs)
                for n, rs in comparison.results.items()
            },
            "elapsed_seconds": elapsed,
        }
        with open(out_path, "a") as fh:
            fh.write(json.dumps(record) + "\n")

    print(f"records appended to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
