#!/usr/bin/env python
"""Execute every ``bash`` recipe in docs/SCENARIOS.md as a smoke test.

The cookbook's promise is that its recipes run *verbatim*; this script
is the mechanism that keeps the promise true in CI.  It extracts every
fenced ```` ```bash ```` block from the document and replays it line by
line in a fresh scratch directory:

* ordinary lines are shell commands (trailing ``\\`` continuations are
  joined) and must exit 0;
* ``# expect: TEXT`` lines assert that TEXT appears verbatim in the
  combined stdout+stderr of the most recent command;
* other ``#`` comment lines are ignored.

Each block gets its own scratch directory, so recipes must be
self-contained — a block that reads ``leo.json`` must also create it.
``PYTHONPATH`` is pointed at the repo's ``src/`` so ``python -m repro``
works from anywhere.  Blocks fenced as ``console`` or ``text`` are
documentation-only and never executed.

Usage::

    python scripts/run_scenario_recipes.py [--doc docs/SCENARIOS.md]
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

FENCE_RE = re.compile(r"^```bash\s*$")
FENCE_END_RE = re.compile(r"^```\s*$")
EXPECT_PREFIX = "# expect: "


def extract_recipes(doc: pathlib.Path):
    """``[(heading, [lines...]), ...]`` for every ```bash block."""
    recipes = []
    heading = doc.name
    lines = doc.read_text().splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        if line.startswith("#") and not line.startswith("#!"):
            heading = line.lstrip("#").strip() or heading
        if FENCE_RE.match(line):
            block = []
            i += 1
            while i < len(lines) and not FENCE_END_RE.match(lines[i]):
                block.append(lines[i])
                i += 1
            recipes.append((heading, block))
        i += 1
    return recipes


def join_continuations(block):
    """Merge trailing-backslash continuations into single commands."""
    merged, pending = [], ""
    for raw in block:
        line = pending + raw.rstrip()
        if line.endswith("\\"):
            pending = line[:-1] + " "
            continue
        pending = ""
        merged.append(line)
    if pending.strip():
        merged.append(pending.rstrip())
    return merged


def run_recipe(heading, block, env, timeout):
    """Replay one block; returns (commands, expects) or raises."""
    commands = expects = 0
    last_output = ""
    last_command = "<none>"
    with tempfile.TemporaryDirectory(prefix="recipe-") as scratch:
        for line in join_continuations(block):
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith(EXPECT_PREFIX):
                needle = stripped[len(EXPECT_PREFIX):].strip()
                expects += 1
                if needle not in last_output:
                    raise AssertionError(
                        f"[{heading}] expected {needle!r} in the output "
                        f"of:\n  $ {last_command}\n--- output ---\n"
                        f"{last_output}"
                    )
                continue
            if stripped.startswith("#"):
                continue
            commands += 1
            last_command = stripped
            proc = subprocess.run(
                stripped,
                shell=True,
                cwd=scratch,
                env=env,
                capture_output=True,
                text=True,
                timeout=timeout,
            )
            last_output = proc.stdout + proc.stderr
            if proc.returncode != 0:
                raise AssertionError(
                    f"[{heading}] command exited {proc.returncode}:\n"
                    f"  $ {stripped}\n--- output ---\n{last_output}"
                )
    return commands, expects


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--doc",
        default=str(REPO_ROOT / "docs" / "SCENARIOS.md"),
        help="cookbook to replay (default: docs/SCENARIOS.md)",
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0, help="per-command timeout"
    )
    args = parser.parse_args(argv)

    doc = pathlib.Path(args.doc)
    recipes = extract_recipes(doc)
    if not recipes:
        print(f"error: no ```bash recipes found in {doc}", file=sys.stderr)
        return 1

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    total_commands = total_expects = 0
    for index, (heading, block) in enumerate(recipes, start=1):
        print(f"recipe {index}/{len(recipes)} [{heading}] ...", flush=True)
        try:
            commands, expects = run_recipe(heading, block, env, args.timeout)
        except AssertionError as exc:
            print(f"FAIL {exc}", file=sys.stderr)
            return 1
        total_commands += commands
        total_expects += expects
        print(f"  ok: {commands} commands, {expects} expectations")

    print(
        f"\n{len(recipes)} recipes replayed from {doc.name}: "
        f"{total_commands} commands, {total_expects} expectations, all green"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
