"""Legacy setup shim.

The offline environment for this reproduction has setuptools but no
``wheel`` package, so PEP 517 editable installs fail.  Keeping a plain
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``develop`` code path, which needs neither network access nor wheel.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
