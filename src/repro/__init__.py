"""Postcard: minimizing costs on inter-datacenter traffic with
store-and-forward — a full reproduction of Feng, Li & Li (ICDCS 2012).

Quickstart
----------
>>> from repro import (
...     PostcardScheduler, FlowBasedScheduler, TransferRequest, fig3_topology,
... )
>>> topology = fig3_topology()
>>> scheduler = PostcardScheduler(topology, horizon=100)
>>> files = [
...     TransferRequest(2, 4, 8.0, 4, release_slot=3),
...     TransferRequest(1, 4, 10.0, 2, release_slot=3),
... ]
>>> schedule = scheduler.on_slot(3, files)
>>> round(scheduler.state.current_cost_per_slot(), 2)
32.67

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure.
"""

from repro.errors import (
    ChargingError,
    InfeasibleError,
    ModelError,
    ReproError,
    SchedulingError,
    SimulationError,
    SolverError,
    TopologyError,
    UnboundedError,
    WorkloadError,
)
from repro.net import (
    Datacenter,
    Link,
    Topology,
    complete_topology,
    fig1_topology,
    fig3_topology,
    paper_topology,
    two_region_topology,
)
from repro.charging import (
    LinearCost,
    MaxCharging,
    PercentileCharging,
    PiecewiseLinearCost,
    TrafficLedger,
)
from repro.traffic import (
    DiurnalWorkload,
    PaperWorkload,
    PoissonWorkload,
    TraceWorkload,
    TransferRequest,
    expand_multicast,
)
from repro.timeexp import TimeExpandedGraph
from repro.core import (
    LookaheadPostcardScheduler,
    NetworkState,
    PostcardScheduler,
    ScheduleEntry,
    Scheduler,
    TimedPath,
    TransferSchedule,
    build_postcard_model,
    decompose_paths,
    empirical_competitive_ratio,
    solve_offline,
)
from repro.flowbased import FlowBasedScheduler, build_flow_model, solve_two_phase
from repro.baselines import DirectScheduler
from repro.heuristic import FastLaneScheduler, HybridScheduler
from repro.extensions import (
    PercentileAwareScheduler,
    maximize_bulk_throughput,
    maximize_transfers_under_budget,
)
from repro.net.presets import global_cloud_topology
from repro.traffic.io import (
    load_requests,
    load_schedule,
    save_requests,
    save_schedule,
)
from repro.sim import (
    ExperimentSetting,
    SchedulerComparison,
    Simulation,
    SimulationResult,
    run_comparison,
)
from repro.analysis import ConfidenceInterval, format_table, mean_ci

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ModelError",
    "SolverError",
    "InfeasibleError",
    "UnboundedError",
    "TopologyError",
    "ChargingError",
    "WorkloadError",
    "SchedulingError",
    "SimulationError",
    # network
    "Datacenter",
    "Link",
    "Topology",
    "complete_topology",
    "paper_topology",
    "fig1_topology",
    "fig3_topology",
    "two_region_topology",
    # charging
    "LinearCost",
    "PiecewiseLinearCost",
    "PercentileCharging",
    "MaxCharging",
    "TrafficLedger",
    # traffic
    "TransferRequest",
    "expand_multicast",
    "PaperWorkload",
    "DiurnalWorkload",
    "PoissonWorkload",
    "TraceWorkload",
    # time expansion + core
    "TimeExpandedGraph",
    "NetworkState",
    "Scheduler",
    "PostcardScheduler",
    "TransferSchedule",
    "ScheduleEntry",
    "build_postcard_model",
    # baselines
    "FlowBasedScheduler",
    "build_flow_model",
    "solve_two_phase",
    "DirectScheduler",
    "FastLaneScheduler",
    "HybridScheduler",
    # advanced core
    "LookaheadPostcardScheduler",
    "solve_offline",
    "empirical_competitive_ratio",
    "TimedPath",
    "decompose_paths",
    # extensions
    "maximize_bulk_throughput",
    "maximize_transfers_under_budget",
    "PercentileAwareScheduler",
    # presets + io
    "global_cloud_topology",
    "save_requests",
    "load_requests",
    "save_schedule",
    "load_schedule",
    # simulation + analysis
    "Simulation",
    "SimulationResult",
    "ExperimentSetting",
    "SchedulerComparison",
    "run_comparison",
    "ConfidenceInterval",
    "mean_ci",
    "format_table",
]
