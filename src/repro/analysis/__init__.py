"""Statistics and table rendering for the experiment harness."""

from repro.analysis.stats import ConfidenceInterval, mean_ci, percentile
from repro.analysis.tables import format_table
from repro.analysis.sensitivity import SweepResult, sweep
from repro.analysis.plots import bar_chart, sparkline, utilization_rows

__all__ = [
    "ConfidenceInterval",
    "mean_ci",
    "percentile",
    "format_table",
    "SweepResult",
    "sweep",
    "sparkline",
    "bar_chart",
    "utilization_rows",
]
