"""Terminal-friendly data sketches: sparklines, bar charts, heat rows.

The benchmark harness and CLI are plain-text by design (no plotting
dependencies); these helpers make per-slot series legible anyway.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-character-per-sample sketch of a non-negative series.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    >>> sparkline([5, 5, 5])
    '▁▁▁'
    """
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    if hi <= lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1) + 1e-9)
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bars, labels left-aligned, values printed.

    >>> print(bar_chart([("a", 2.0), ("bb", 4.0)], width=4))
    a   ██    2
    bb  ████  4
    """
    if not items:
        return ""
    label_width = max(len(label) for label, _ in items)
    peak = max(value for _, value in items)
    scale = (width / peak) if peak > 0 else 0.0
    lines = []
    for label, value in items:
        bar = "█" * max(0, int(round(value * scale)))
        text = f"{value:g}{unit}"
        lines.append(f"{label.ljust(label_width)}  {bar.ljust(width)}  {text}")
    return "\n".join(lines)


def utilization_rows(
    samples_by_link: Dict[Tuple[int, int], Sequence[float]],
    capacity_by_link: Dict[Tuple[int, int], float],
    top: int = 10,
) -> str:
    """Per-link utilization sparklines, busiest links first.

    ``samples_by_link`` maps (src, dst) to per-slot volumes;
    utilization is volume / capacity per slot.  Links with infinite
    capacity are skipped (always 0% utilized by definition).
    """
    rows = []
    for key, samples in samples_by_link.items():
        capacity = capacity_by_link.get(key, float("inf"))
        if capacity == float("inf") or capacity <= 0:
            continue
        peak = max(samples, default=0.0) / capacity
        rows.append((peak, key, samples, capacity))
    rows.sort(reverse=True)
    lines = []
    for peak, (src, dst), samples, capacity in rows[:top]:
        util = [v / capacity for v in samples]
        lines.append(
            f"({src:>2},{dst:>2})  {sparkline(util)}  peak {peak:5.0%}"
        )
    return "\n".join(lines)


def cost_trajectory_sketch(trajectory: Sequence[float], width: int = 60) -> str:
    """A downsampled sparkline of the running cost-per-slot series."""
    values = list(trajectory)
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    if not values:
        return "(no data)"
    return f"{sparkline(values)}  [{min(values):.0f} .. {max(values):.0f}]"
