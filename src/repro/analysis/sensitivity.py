"""One-dimensional parameter sweeps with confidence intervals.

The ablation benches all share a pattern — vary one knob, run seeded
repetitions, tabulate mean ± CI, check a monotonicity claim.  This
module makes that pattern a library feature so downstream users can run
their own sweeps (storage price, capacity, SLA penalty, fan-out, ...)
in three lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.errors import ReproError
from repro.analysis.stats import ConfidenceInterval, mean_ci
from repro.analysis.tables import format_table

#: measure(parameter_value, seed) -> metric value for one repetition.
MeasureFn = Callable[[object, int], float]


@dataclass
class SweepResult:
    """Metric curve over the swept parameter values."""

    parameter: str
    metric: str
    values: List[object]
    intervals: Dict[object, ConfidenceInterval]
    runs: int

    def means(self) -> List[float]:
        return [self.intervals[v].mean for v in self.values]

    def is_monotone(self, increasing: bool = True, slack: float = 0.0) -> bool:
        """Whether the mean curve is monotone (within ``slack``)."""
        means = self.means()
        if increasing:
            return all(b >= a - slack for a, b in zip(means, means[1:]))
        return all(b <= a + slack for a, b in zip(means, means[1:]))

    def spread(self) -> float:
        """max(mean) / min(mean): the effect size of the knob."""
        means = self.means()
        low = min(means)
        if low <= 0:
            return float("inf") if max(means) > 0 else 1.0
        return max(means) / low

    def to_table(self) -> str:
        rows = [
            [
                str(value),
                self.intervals[value].mean,
                self.intervals[value].half_width,
            ]
            for value in self.values
        ]
        return format_table(
            [self.parameter, self.metric, "95% CI +/-"], rows
        )


def sweep(
    parameter: str,
    values: Sequence[object],
    measure: MeasureFn,
    runs: int = 3,
    base_seed: int = 0,
    metric: str = "cost/slot",
) -> SweepResult:
    """Evaluate ``measure(value, seed)`` over a grid with seeded runs.

    Seeds are shared across parameter values (run ``i`` uses
    ``base_seed + i`` everywhere), so the sweep is a paired comparison:
    curve differences are the knob's effect, not sampling noise.
    """
    if not values:
        raise ReproError("sweep needs at least one parameter value")
    if runs < 1:
        raise ReproError("sweep needs at least one run")
    intervals: Dict[object, ConfidenceInterval] = {}
    for value in values:
        samples = [measure(value, base_seed + run) for run in range(runs)]
        intervals[value] = mean_ci(samples)
    return SweepResult(
        parameter=parameter,
        metric=metric,
        values=list(values),
        intervals=intervals,
        runs=runs,
    )
