"""Statistics used when reporting experiments.

The paper reports "average costs per time interval and their 95%
confidence intervals" over 10 simulation runs; :func:`mean_ci`
implements exactly that (Student-t interval over run means).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps


@dataclass(frozen=True)
class ConfidenceInterval:
    """A sample mean with its symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.2f} +/- {self.half_width:.2f} ({self.confidence:.0%}, n={self.n})"


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> ConfidenceInterval:
    """Student-t confidence interval of the mean of ``values``.

    With a single observation the half-width is 0 (degenerate but
    convenient for smoke-scale runs).
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one value")
    mean = float(arr.mean())
    if arr.size == 1:
        return ConfidenceInterval(mean, 0.0, confidence, 1)
    sem = float(arr.std(ddof=1) / np.sqrt(arr.size))
    t = float(sps.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
    return ConfidenceInterval(mean, t * sem, confidence, int(arr.size))


def percentile(values: Sequence[float], q: float) -> float:
    """The ISP-convention q-th percentile (ascending sort, index
    ``ceil(q% * n) - 1``) — NOT numpy's interpolating percentile."""
    from repro.units import percentile_slot_index

    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ValueError("need at least one value")
    return float(arr[percentile_slot_index(q, arr.size)])
