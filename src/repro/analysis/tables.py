"""Plain-text tables for benchmark output."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table.

    >>> print(format_table(["a", "b"], [[1, "x"], [22, "yy"]]))
    a   b
    --  --
    1   x
    22  yy
    """
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    header_line = "  ".join(c.ljust(w) for c, w in zip(cells[0], widths))
    lines.append(header_line.rstrip())
    lines.append("  ".join("-" * w for w in widths).rstrip())
    for row_cells in cells[1:]:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row_cells, widths)).rstrip()
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
