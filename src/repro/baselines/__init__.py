"""Non-LP schedulers: the naive direct baseline and a fast greedy
store-and-forward heuristic."""

from repro.baselines.direct import DirectScheduler
from repro.baselines.greedy import GreedyStoreAndForwardScheduler

__all__ = ["DirectScheduler", "GreedyStoreAndForwardScheduler"]
