"""The direct-link baseline: Fig. 1(a)'s "no routing or scheduling".

Each file is sent on the direct overlay link from its source to its
destination at its desired rate ``F_k / T_k`` — evenly spread over the
deadline window, with no relaying, no splitting and no storage.  If the
direct link lacks residual capacity the file is front-loaded as much as
the link allows (and rejected if even that cannot finish on time).
"""

from __future__ import annotations

from typing import List

from repro.errors import InfeasibleError, SchedulingError
from repro.core.interfaces import Scheduler
from repro.core.schedule import SEMANTICS_FLUID, ScheduleEntry, TransferSchedule
from repro.core.state import NetworkState
from repro.net.topology import Topology
from repro.traffic.spec import TransferRequest
from repro.units import VOLUME_ATOL

ON_INFEASIBLE_RAISE = "raise"
ON_INFEASIBLE_DROP = "drop"


class DirectScheduler(Scheduler):
    """Ship every file on its direct link at the minimum tolerable rate."""

    name = "direct"

    def __init__(
        self,
        topology: Topology,
        horizon: int,
        on_infeasible: str = ON_INFEASIBLE_RAISE,
    ):
        if on_infeasible not in (ON_INFEASIBLE_RAISE, ON_INFEASIBLE_DROP):
            raise SchedulingError(f"unknown on_infeasible policy {on_infeasible!r}")
        self._state = NetworkState(topology, horizon)
        self.on_infeasible = on_infeasible

    @property
    def state(self) -> NetworkState:
        return self._state

    def on_slot(self, slot: int, requests: List[TransferRequest]) -> TransferSchedule:
        committed_entries: List[ScheduleEntry] = []
        committed_requests: List[TransferRequest] = []
        for request in sorted(requests, key=lambda r: -r.desired_rate):
            if request.release_slot != slot:
                raise SchedulingError(
                    f"file {request.request_id} released at "
                    f"{request.release_slot}, scheduled at {slot}"
                )
            try:
                entries = self._plan_one(request)
            except InfeasibleError:
                if self.on_infeasible == ON_INFEASIBLE_RAISE:
                    raise
                self._state.reject(request)
                continue
            schedule = TransferSchedule(entries, semantics=SEMANTICS_FLUID)
            self._state.commit(schedule, [request])
            committed_entries.extend(schedule.entries)
            committed_requests.append(request)
        return TransferSchedule(committed_entries, semantics=SEMANTICS_FLUID)

    def _plan_one(self, request: TransferRequest) -> List[ScheduleEntry]:
        src, dst = request.source, request.destination
        if not self._state.topology.has_link(src, dst):
            raise InfeasibleError(
                f"no direct link ({src},{dst}) for file {request.request_id}"
            )
        window = range(request.release_slot, request.last_slot + 1)
        rate = request.desired_rate
        residuals = {n: self._state.residual_capacity(src, dst, n) for n in window}

        if all(residuals[n] >= rate - VOLUME_ATOL for n in window):
            return [
                ScheduleEntry(request.request_id, src, dst, n, rate)
                for n in window
            ]

        # Even spreading does not fit: front-load greedily.
        remaining = request.size_gb
        entries = []
        for n in window:
            volume = min(remaining, residuals[n])
            if volume > VOLUME_ATOL:
                entries.append(ScheduleEntry(request.request_id, src, dst, n, volume))
                remaining -= volume
            if remaining <= VOLUME_ATOL:
                break
        if remaining > VOLUME_ATOL:
            raise InfeasibleError(
                f"direct link ({src},{dst}) cannot deliver file "
                f"{request.request_id} by its deadline"
            )
        return entries
