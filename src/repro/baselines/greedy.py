"""A fast combinatorial store-and-forward heuristic (no LP).

``GreedyStoreAndForwardScheduler`` approximates Postcard's LP at a
fraction of its cost: per file it examines the K cheapest simple paths
(by per-GB price), schedules the file hop-by-hop along each candidate —
preferring already-paid headroom, then spreading the remainder evenly —
and commits the candidate with the smallest *marginal bill increase*.

This is the kind of scheduler an operator deploys when per-slot LP
solves are too slow (the LP scales with links x horizon x files); the
A8 ablation benchmark quantifies the quality it gives up in exchange.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.errors import InfeasibleError, SchedulingError
from repro.core.interfaces import Scheduler
from repro.core.schedule import ScheduleEntry, TransferSchedule
from repro.core.state import NetworkState
from repro.net.topology import Topology
from repro.timeexp.graph import ArcKind
from repro.traffic.spec import TransferRequest
from repro.units import VOLUME_ATOL

LinkSlot = Tuple[int, int, int]


class GreedyStoreAndForwardScheduler(Scheduler):
    """Cheapest-path store-and-forward with headroom-first placement."""

    name = "greedy-s&f"

    def __init__(
        self,
        topology: Topology,
        horizon: int,
        num_candidate_paths: int = 4,
        on_infeasible: str = "raise",
    ):
        if num_candidate_paths < 1:
            raise SchedulingError("need at least one candidate path")
        if on_infeasible not in ("raise", "drop"):
            raise SchedulingError(f"unknown on_infeasible policy {on_infeasible!r}")
        self._state = NetworkState(topology, horizon)
        self.num_candidate_paths = num_candidate_paths
        self.on_infeasible = on_infeasible
        self._price_graph = topology.to_networkx()

    @property
    def state(self) -> NetworkState:
        return self._state

    # -- public entry -----------------------------------------------------

    def on_slot(self, slot: int, requests: List[TransferRequest]) -> TransferSchedule:
        all_entries: List[ScheduleEntry] = []
        # Largest required rate first: big files get first pick of the
        # cheap paths, mirroring the shedding order used elsewhere.
        for request in sorted(requests, key=lambda r: -r.desired_rate):
            if request.release_slot != slot:
                raise SchedulingError(
                    f"file {request.request_id} released at "
                    f"{request.release_slot}, scheduled at {slot}"
                )
            entries = self._plan_file(request)
            if entries is None:
                if self.on_infeasible == "raise":
                    raise InfeasibleError(
                        f"greedy heuristic cannot place file {request.request_id}"
                    )
                self._state.reject(request)
                continue
            schedule = TransferSchedule(entries)
            self._state.commit(schedule, [request])
            all_entries.extend(schedule.entries)
        return TransferSchedule(all_entries)

    # -- per-file planning ----------------------------------------------------

    def _candidate_paths(self, request: TransferRequest) -> List[List[int]]:
        """Up to K cheapest simple paths short enough for the deadline."""
        try:
            generator = nx.shortest_simple_paths(
                self._price_graph, request.source, request.destination, weight="price"
            )
            paths = list(itertools.islice(generator, self.num_candidate_paths * 2))
        except nx.NetworkXNoPath:
            return []
        usable = [p for p in paths if len(p) - 1 <= request.deadline_slots]
        return usable[: self.num_candidate_paths]

    def _plan_file(self, request: TransferRequest) -> Optional[List[ScheduleEntry]]:
        """Try each candidate path; return the cheapest feasible plan."""
        best: Optional[Tuple[float, List[ScheduleEntry]]] = None
        for path in self._candidate_paths(request):
            plan = self._schedule_along_path(path, request)
            if plan is None:
                continue
            cost = self._marginal_cost(plan)
            if best is None or cost < best[0] - 1e-12:
                best = (cost, plan)
        return None if best is None else best[1]

    def _marginal_cost(self, entries: List[ScheduleEntry]) -> float:
        """Bill increase if ``entries`` were committed now."""
        peak_add: Dict[Tuple[int, int], float] = defaultdict(float)
        load: Dict[LinkSlot, float] = defaultdict(float)
        for e in entries:
            if e.kind is ArcKind.TRANSIT:
                load[(e.src, e.dst, e.slot)] += e.volume
        for (src, dst, slot), volume in load.items():
            total = volume + self._state.committed_volume(src, dst, slot)
            over = total - self._state.charged_volume(src, dst)
            if over > peak_add[(src, dst)]:
                peak_add[(src, dst)] = over
        return sum(
            self._state.topology.link(src, dst).price * max(0.0, over)
            for (src, dst), over in peak_add.items()
        )

    def _schedule_along_path(
        self, path: List[int], request: TransferRequest
    ) -> Optional[List[ScheduleEntry]]:
        """Hop-by-hop placement along one path.

        Hop ``h`` (0-based) may use slots
        ``[release + h, release + T - (L - h)]`` — early enough to let
        the remaining hops finish, late enough for the data to have
        arrived.  Each hop first fills already-paid headroom
        (chronologically), then spreads the remainder evenly over its
        window, capped by availability and residual capacity.
        """
        hops = len(path) - 1
        window_end = request.last_slot  # inclusive
        entries: List[ScheduleEntry] = []
        #: volume available at the current hop's tail node, per slot
        #: boundary: after hop h-1 sent v at slot n, it is available
        #: from slot n+1 on.  For the source, everything is available
        #: at release.
        arrivals: Dict[int, float] = {request.release_slot: request.size_gb}

        extra_load: Dict[LinkSlot, float] = defaultdict(float)

        for h in range(hops):
            src, dst = path[h], path[h + 1]
            first = request.release_slot + h
            last = window_end - (hops - 1 - h)
            if first > last:
                return None
            slots = list(range(first, last + 1))

            def residual(n: int) -> float:
                return max(
                    0.0,
                    self._state.residual_capacity(src, dst, n)
                    - extra_load[(src, dst, n)],
                )

            def headroom(n: int) -> float:
                paid = self._state.charged_volume(src, dst) - (
                    self._state.committed_volume(src, dst, n)
                    + extra_load[(src, dst, n)]
                )
                return max(0.0, min(paid, residual(n)))

            sent: Dict[int, float] = defaultdict(float)
            remaining = request.size_gb

            def addable(at_slot: int) -> float:
                """Max extra volume sendable at ``at_slot`` without
                breaking cumulative availability at ANY later slot —
                data already promised to later slots (e.g. by pass 1)
                caps what may leave earlier."""
                cum_arrived = 0.0
                cum_sent = 0.0
                tightest = float("inf")
                for n in slots:
                    cum_arrived += arrivals.get(n, 0.0)
                    cum_sent += sent.get(n, 0.0)
                    if n >= at_slot:
                        tightest = min(tightest, cum_arrived - cum_sent)
                return max(0.0, tightest)

            # Pass 1 (free): fill paid headroom chronologically.
            for n in slots:
                if remaining <= VOLUME_ATOL:
                    break
                volume = min(headroom(n), addable(n), remaining)
                if volume > VOLUME_ATOL:
                    sent[n] += volume
                    remaining -= volume

            # Pass 2 (paid): spread the remainder evenly, respecting
            # arrival order and residual capacity.
            if remaining > VOLUME_ATOL:
                for index, n in enumerate(slots):
                    if remaining <= VOLUME_ATOL:
                        break
                    slots_left = len(slots) - index
                    target = remaining / slots_left
                    volume = min(target, residual(n) - sent[n], addable(n), remaining)
                    if volume > VOLUME_ATOL:
                        sent[n] += volume
                        remaining -= volume
                # Mop-up pass: anything left goes wherever it fits.
                if remaining > VOLUME_ATOL:
                    for n in slots:
                        volume = min(residual(n) - sent[n], addable(n), remaining)
                        if volume > VOLUME_ATOL:
                            sent[n] += volume
                            remaining -= volume
                        if remaining <= VOLUME_ATOL:
                            break
            if remaining > max(VOLUME_ATOL, 1e-9 * request.size_gb):
                return None

            # Emit transit entries + implied holdover at the tail node.
            self._emit_hop(entries, request, src, dst, slots, sent, arrivals)
            for n, volume in sent.items():
                extra_load[(src, dst, n)] += volume
            # Next hop's arrivals: data sent at slot n arrives for n+1.
            arrivals = {n + 1: v for n, v in sent.items() if v > VOLUME_ATOL}

        return entries

    def _emit_hop(
        self,
        entries: List[ScheduleEntry],
        request: TransferRequest,
        src: int,
        dst: int,
        slots: List[int],
        sent: Dict[int, float],
        arrivals: Dict[int, float],
    ) -> None:
        """Transit entries for a hop plus holdover entries for data
        waiting at the hop's tail node between arrival and departure."""
        rid = request.request_id
        buffered = 0.0
        cursor = min(
            [n for n in arrivals] + [slots[0]]
        )
        last_action = max(
            [n for n, v in sent.items() if v > VOLUME_ATOL], default=None
        )
        if last_action is None:
            return
        for n in range(cursor, last_action + 1):
            buffered += arrivals.get(n, 0.0)
            volume = sent.get(n, 0.0)
            if volume > VOLUME_ATOL:
                entries.append(ScheduleEntry(rid, src, dst, n, volume))
                buffered -= volume
            if buffered > VOLUME_ATOL and n < last_action:
                entries.append(
                    ScheduleEntry(rid, src, src, n, buffered, ArcKind.HOLDOVER)
                )


