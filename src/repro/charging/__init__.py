"""Percentile-based ISP charging.

ISPs sample each link's traffic volume every 5 minutes; at the end of a
charging period the samples are sorted ascending and the q-th percentile
sample is the *charged volume* ``x``, billed through a non-decreasing
cost function ``c(x)`` (Goldberg et al., SIGCOMM'04).  The paper's
analysis uses q = 100 (the per-period peak) and linear ``c``; the
simulator's accounting supports any q and piecewise-linear ``c`` so the
same schedules can be re-billed under different schemes.
"""

from repro.charging.costfunc import CostFunction, LinearCost, PiecewiseLinearCost
from repro.charging.schemes import ChargingScheme, MaxCharging, PercentileCharging
from repro.charging.ledger import LinkUsage, TrafficLedger

__all__ = [
    "CostFunction",
    "LinearCost",
    "PiecewiseLinearCost",
    "ChargingScheme",
    "MaxCharging",
    "PercentileCharging",
    "LinkUsage",
    "TrafficLedger",
]
