"""Cost functions mapping a charged volume to dollars.

The paper assumes the linear case ``c(x) = a * x`` for tractability but
defines the general scheme with a piece-wise linear non-decreasing
``c(x)``; both are provided.  :class:`PiecewiseLinearCost` also knows
whether it is convex, because only convex cost functions can be pushed
into the LP objective via the epigraph trick.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

from repro.errors import ChargingError


class CostFunction:
    """Maps a charged traffic volume (GB) to a cost (dollars)."""

    def __call__(self, volume: float) -> float:
        raise NotImplementedError

    @property
    def is_convex(self) -> bool:
        raise NotImplementedError


class LinearCost(CostFunction):
    """The paper's ``c(x) = a * x`` with a flat per-GB price ``a``."""

    def __init__(self, price: float):
        if price < 0:
            raise ChargingError(f"price must be non-negative, got {price}")
        self.price = float(price)

    def __call__(self, volume: float) -> float:
        if volume < 0:
            raise ChargingError(f"volume must be non-negative, got {volume}")
        return self.price * volume

    @property
    def is_convex(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"LinearCost({self.price:g})"


class PiecewiseLinearCost(CostFunction):
    """A non-decreasing piece-wise linear cost through given breakpoints.

    ``points`` is a sequence of (volume, cost) pairs; the function
    interpolates linearly between them and extrapolates the last
    segment's slope beyond the final breakpoint.  Volume 0 must map to
    cost 0 unless an explicit flat fee is intended.

    Typical ISP shapes — volume discounts — are *concave*, which the LP
    objective cannot express; :attr:`is_convex` lets callers check
    before embedding the function in a model.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if len(points) < 2:
            raise ChargingError("need at least two breakpoints")
        pts = sorted((float(v), float(c)) for v, c in points)
        for (v0, c0), (v1, c1) in zip(pts, pts[1:]):
            if v1 <= v0:
                raise ChargingError("breakpoint volumes must be strictly increasing")
            if c1 < c0:
                raise ChargingError("cost function must be non-decreasing")
        if pts[0][0] < 0:
            raise ChargingError("breakpoint volumes must be non-negative")
        self.points: List[Tuple[float, float]] = pts
        self._volumes = [v for v, _ in pts]

    def _slope(self, i: int) -> float:
        (v0, c0), (v1, c1) = self.points[i], self.points[i + 1]
        return (c1 - c0) / (v1 - v0)

    def __call__(self, volume: float) -> float:
        if volume < 0:
            raise ChargingError(f"volume must be non-negative, got {volume}")
        pts = self.points
        if volume <= pts[0][0]:
            # Below the first breakpoint: interpolate from the origin
            # using the first segment's slope anchored at the first point.
            v0, c0 = pts[0]
            return max(0.0, c0 - (v0 - volume) * self._slope(0)) if volume < v0 else c0
        if volume >= pts[-1][0]:
            v_last, c_last = pts[-1]
            return c_last + (volume - v_last) * self._slope(len(pts) - 2)
        i = bisect.bisect_right(self._volumes, volume) - 1
        v0, c0 = pts[i]
        return c0 + (volume - v0) * self._slope(i)

    @property
    def is_convex(self) -> bool:
        slopes = [self._slope(i) for i in range(len(self.points) - 1)]
        return all(s1 >= s0 - 1e-12 for s0, s1 in zip(slopes, slopes[1:]))

    def segments(self) -> List[Tuple[float, float]]:
        """(slope, intercept) of each linear piece, for LP epigraphs."""
        out = []
        for i in range(len(self.points) - 1):
            v0, c0 = self.points[i]
            slope = self._slope(i)
            out.append((slope, c0 - slope * v0))
        return out

    def __repr__(self) -> str:
        return f"PiecewiseLinearCost({self.points!r})"
