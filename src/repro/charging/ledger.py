"""The traffic ledger: who sent how much on which link in which slot.

The ledger is the system's accounting ground truth.  Schedulers commit
their decisions here; the simulator audits capacity against it; and at
the end of a charging period the billed cost of each link is computed
from the recorded samples under any :class:`~repro.charging.schemes.ChargingScheme`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ChargingError
from repro.charging.costfunc import CostFunction, LinearCost
from repro.charging.schemes import ChargingScheme, MaxCharging
from repro.net.topology import LinkKey, Topology


class LinkUsage:
    """Per-slot volumes recorded on one directed link."""

    __slots__ = ("volumes",)

    def __init__(self):
        self.volumes: Dict[int, float] = {}

    def add(self, slot: int, volume: float) -> None:
        if slot < 0:
            raise ChargingError(f"slot must be non-negative, got {slot}")
        if volume < 0:
            raise ChargingError(f"volume must be non-negative, got {volume}")
        if volume == 0.0:
            return
        self.volumes[slot] = self.volumes.get(slot, 0.0) + volume

    def volume_at(self, slot: int) -> float:
        return self.volumes.get(slot, 0.0)

    def peak(self) -> float:
        """Largest recorded slot volume (0 for an unused link)."""
        return max(self.volumes.values(), default=0.0)

    def last_slot(self) -> int:
        """Largest slot index with recorded traffic (-1 if none)."""
        return max(self.volumes.keys(), default=-1)

    def samples(self, num_slots: int) -> np.ndarray:
        """Dense per-slot volume array over ``[0, num_slots)``.

        Slots with no recorded traffic contribute zero samples — this is
        what makes low-percentile schemes cheap for bursty senders.
        """
        arr = np.zeros(num_slots)
        for slot, volume in self.volumes.items():
            if slot < num_slots:
                arr[slot] = volume
        return arr

    def total(self) -> float:
        return sum(self.volumes.values())

    def prune_before(self, slot: int) -> int:
        """Drop samples in slots ``< slot``; returns how many.

        Billing rollover calls this after a period's bill is banked:
        the closed period's samples can never change a future bill, and
        an unbounded sample map is what would make a months-long broker
        run grow without limit.
        """
        stale = [s for s in self.volumes if s < slot]
        for s in stale:
            del self.volumes[s]
        return len(stale)


class TrafficLedger:
    """Committed traffic volumes for every link of a topology.

    ``horizon`` is the number of slots in the charging period; billing
    always considers exactly that many samples (absent slots are zero).
    """

    def __init__(self, topology: Topology, horizon: int):
        if horizon <= 0:
            raise ChargingError(f"horizon must be positive, got {horizon}")
        self.topology = topology
        self.horizon = horizon
        self._usage: Dict[LinkKey, LinkUsage] = defaultdict(LinkUsage)

    # -- recording ------------------------------------------------------

    def record(self, src: int, dst: int, slot: int, volume: float) -> None:
        """Commit ``volume`` GB on link (src, dst) during ``slot``.

        ``slot`` may exceed the horizon only transiently (transfers that
        straddle the period boundary); such traffic is not billed in
        this period.
        """
        if not self.topology.has_link(src, dst):
            raise ChargingError(f"no link ({src},{dst}) in topology")
        self._usage[(src, dst)].add(slot, volume)

    def record_schedule(self, entries: Iterable[Tuple[int, int, int, float]]) -> None:
        """Commit many ``(src, dst, slot, volume)`` entries."""
        for src, dst, slot, volume in entries:
            self.record(src, dst, slot, volume)

    def void(self, src: int, dst: int, slot: int, volume: float) -> None:
        """Refund ``volume`` GB previously recorded on (src, dst, slot).

        The refund path exists for *surprise* link failures: traffic
        committed onto a link-slot that turns out to be dead never
        happened, so it must not be billed and must not count against
        capacity in the post-run audit.  Voiding more than was recorded
        is an accounting bug and raises :class:`ChargingError`.
        """
        if volume < 0:
            raise ChargingError(f"void volume must be non-negative, got {volume}")
        if volume == 0.0:
            return
        usage = self._usage[(src, dst)]
        recorded = usage.volume_at(slot)
        if volume > recorded + 1e-9 * max(1.0, recorded):
            raise ChargingError(
                f"void of {volume:.6f} GB on ({src},{dst}) at slot {slot} "
                f"exceeds the {recorded:.6f} GB recorded"
            )
        remaining = recorded - volume
        if remaining <= 1e-12:
            usage.volumes.pop(slot, None)
        else:
            usage.volumes[slot] = remaining

    # -- queries ------------------------------------------------------------

    def volume(self, src: int, dst: int, slot: int) -> float:
        return self._usage[(src, dst)].volume_at(slot)

    def usage(self, src: int, dst: int) -> LinkUsage:
        """The :class:`LinkUsage` record of one directed link.

        Public accessor for consumers (audits, checkpoints) that need
        the per-slot volume map itself rather than one aggregate.
        """
        return self._usage[(src, dst)]

    def peak_volume(self, src: int, dst: int) -> float:
        """Max slot volume seen on the link (the 100-percentile charge)."""
        return self._usage[(src, dst)].peak()

    def samples(self, src: int, dst: int) -> np.ndarray:
        return self._usage[(src, dst)].samples(self.horizon)

    def stamped_samples(self, src: int, dst: int, mapper) -> List[Dict[str, Any]]:
        """Recorded samples of one link stamped with wall-clock time.

        ``mapper(slot) -> unix timestamp`` is the configured virtual-
        slot -> real-time mapping (the service wires in
        ``TransferBroker.wall_time``); each recorded slot yields
        ``{"slot", "wall_ts", "gb"}`` in slot order, which is what lets
        exported metrics reconcile against an ISP invoice's 5-minute
        charging intervals.
        """
        usage = self._usage[(src, dst)]
        return [
            {
                "slot": slot,
                "wall_ts": round(mapper(slot), 3),
                "gb": round(volume, 6),
            }
            for slot, volume in sorted(usage.volumes.items())
        ]

    def samples_range(self, src: int, dst: int, start: int, end: int) -> np.ndarray:
        """Dense per-slot volumes over ``[start, end)`` (for one
        charging period of a multi-period run)."""
        if not 0 <= start < end:
            raise ChargingError(f"invalid sample range [{start}, {end})")
        arr = np.zeros(end - start)
        for slot, volume in self._usage[(src, dst)].volumes.items():
            if start <= slot < end:
                arr[slot - start] = volume
        return arr

    def peak_in_range(self, src: int, dst: int, start: int, end: int) -> float:
        """Largest slot volume recorded in ``[start, end)``."""
        return max(
            (
                v
                for slot, v in self._usage[(src, dst)].volumes.items()
                if start <= slot < end
            ),
            default=0.0,
        )

    def residual_capacity(self, src: int, dst: int, slot: int) -> float:
        """Capacity left on (src, dst) during ``slot``."""
        cap = self.topology.link(src, dst).capacity
        return max(0.0, cap - self.volume(src, dst, slot))

    def prune_before(self, slot: int) -> int:
        """Drop every link's samples before ``slot`` (closed periods).

        Returns the number of samples removed.  Only safe once no query
        will ask about the pruned range — the broker prunes exactly at
        banked period boundaries, where the bill has already been
        computed and banked.
        """
        if slot < 0:
            raise ChargingError(f"prune slot must be non-negative, got {slot}")
        return sum(
            usage.prune_before(slot) for usage in self._usage.values()
        )

    def used_links(self) -> List[LinkKey]:
        """Links with any recorded traffic."""
        return [key for key, usage in self._usage.items() if usage.volumes]

    def total_volume(self) -> float:
        """Sum of all recorded link-slot volumes (relay traffic counts
        once per hop, as an ISP would bill it)."""
        return sum(usage.total() for usage in self._usage.values())

    def free_ride_volume(self, src: int, dst: int) -> float:
        """GB on (src, dst) that rode under an already-established peak.

        Walking the link's slots in time order with a running peak,
        each slot's volume up to the previous peak was free under
        100-percentile billing; only the excess raised the bill.  This
        is the quantity the paper's "time-shifting" argument is about.
        """
        usage = self._usage[(src, dst)]
        running_peak = 0.0
        free = 0.0
        for slot in sorted(usage.volumes):
            volume = usage.volumes[slot]
            free += min(volume, running_peak)
            running_peak = max(running_peak, volume)
        return free

    def free_ride_fraction(self) -> float:
        """Network-wide fraction of billable volume that was free.

        0.0 on an idle network; approaches 1.0 when nearly all traffic
        reuses peaks paid for earlier in the period.
        """
        total = self.total_volume()
        if total <= 0:
            return 0.0
        free = sum(
            self.free_ride_volume(src, dst) for src, dst in self._usage
        )
        return free / total

    # -- billing ---------------------------------------------------------------

    def charged_volume(
        self, src: int, dst: int, scheme: Optional[ChargingScheme] = None
    ) -> float:
        """Charged volume of one link under ``scheme`` (default: max)."""
        scheme = scheme or MaxCharging()
        return scheme.charged_volume(self.samples(src, dst))

    def link_cost(
        self,
        src: int,
        dst: int,
        scheme: Optional[ChargingScheme] = None,
        cost_fn: Optional[CostFunction] = None,
    ) -> float:
        """Billed cost of one link for the whole charging period.

        With the paper's conventions (max charging, linear cost at the
        link's price), the period bill is ``a_ij * X_ij * horizon`` —
        the charge applies to every interval of the period.
        """
        fn = cost_fn or LinearCost(self.topology.link(src, dst).price)
        return fn(self.charged_volume(src, dst, scheme)) * self.horizon

    def total_cost(
        self,
        scheme: Optional[ChargingScheme] = None,
        cost_fn_factory=None,
    ) -> float:
        """Billed cost over all links for the whole charging period.

        ``cost_fn_factory(link) -> CostFunction`` overrides the default
        linear-at-link-price functions.
        """
        total = 0.0
        for link in self.topology.links:
            fn = cost_fn_factory(link) if cost_fn_factory else None
            total += self.link_cost(link.src, link.dst, scheme, fn)
        return total

    def cost_per_slot(self, scheme: Optional[ChargingScheme] = None) -> float:
        """Average billed cost per time interval (the paper's metric)."""
        return self.total_cost(scheme) / self.horizon

    def period_cost(
        self,
        start: int,
        end: int,
        scheme: Optional[ChargingScheme] = None,
        cost_fn_factory=None,
    ) -> float:
        """Bill of one charging period ``[start, end)`` on its own.

        Each period is billed independently: the charged volume is the
        scheme applied to that period's samples only, and the charge
        applies for the period's own length.
        """
        scheme = scheme or MaxCharging()
        total = 0.0
        for link in self.topology.links:
            samples = self.samples_range(link.src, link.dst, start, end)
            fn = (
                cost_fn_factory(link)
                if cost_fn_factory
                else LinearCost(link.price)
            )
            total += fn(scheme.charged_volume(samples)) * (end - start)
        return total

    def charged_snapshot(self, scheme: Optional[ChargingScheme] = None) -> Dict[LinkKey, float]:
        """Charged volume of every link (used as ``X_ij(t-1)`` inputs)."""
        scheme = scheme or MaxCharging()
        return {
            link.key: scheme.charged_volume(self.samples(link.src, link.dst))
            for link in self.topology.links
        }

    def __repr__(self) -> str:
        return (
            f"TrafficLedger(horizon={self.horizon}, "
            f"used_links={len(self.used_links())})"
        )
