"""Charging schemes: how a charged volume is picked from slot samples."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ChargingError
from repro.units import percentile_slot_index


class ChargingScheme:
    """Selects the charged volume from a link's per-slot volume samples."""

    def charged_volume(self, samples: Sequence[float]) -> float:
        raise NotImplementedError


class PercentileCharging(ChargingScheme):
    """The q-th percentile scheme (Goldberg et al., SIGCOMM'04).

    Samples are sorted ascending and the q-th percentile entry is
    charged: with ``q=95`` the top 5% of slots are free, which is why
    real CDNs burst carefully.  ``q=100`` charges the peak slot, which
    is the case the Postcard formulation optimizes.
    """

    def __init__(self, q: float = 95.0):
        if not 0 < q <= 100:
            raise ChargingError(f"percentile must be in (0, 100], got {q}")
        self.q = float(q)

    def charged_volume(self, samples: Sequence[float]) -> float:
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            return 0.0
        if np.any(arr < 0):
            raise ChargingError("traffic samples must be non-negative")
        idx = percentile_slot_index(self.q, arr.size)
        return float(np.sort(arr)[idx])

    def __repr__(self) -> str:
        return f"PercentileCharging(q={self.q:g})"


class MaxCharging(PercentileCharging):
    """The 100-th percentile scheme: the peak slot volume is charged.

    This is the scheme assumed by the paper's optimization objective,
    where a link's bill never decreases once a peak is paid for.
    """

    def __init__(self):
        super().__init__(q=100.0)

    def charged_volume(self, samples: Sequence[float]) -> float:
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            return 0.0
        if np.any(arr < 0):
            raise ChargingError("traffic samples must be non-negative")
        return float(arr.max())

    def __repr__(self) -> str:
        return "MaxCharging()"
