"""Command-line interface: simulate, regenerate figures, inspect traces.

Usage (after ``pip install -e .``)::

    python -m repro simulate --datacenters 8 --capacity 30 --slots 10
    python -m repro simulate --datacenters 6 --slots 5 --profile
    python -m repro simulate --slots 5 --obs-jsonl events.jsonl
    python -m repro simulate --slots 8 --surprise --solver-chain
    python -m repro simulate --outages outages.json --surprise
    python -m repro simulate --schedulers postcard direct greedy --jobs 3
    python -m repro simulate --schedulers heuristic hybrid postcard
    python -m repro figure fig6 --runs 3
    python -m repro figure fig6 --runs 8 --jobs 4
    python -m repro example fig3
    python -m repro trace generate --datacenters 6 --slots 5 -o trace.json
    python -m repro trace run trace.json --scheduler postcard
    python -m repro schedule generate --preset leo --slots 12 -o leo.json
    python -m repro schedule show leo.json --slots 12
    python -m repro simulate --slots 12 --link-schedule leo.json
    python -m repro report events.jsonl
    python -m repro serve --port 0 --checkpoint-dir ckpt/
    python -m repro loadgen --port 7411 --requests 200 --rate 1000 --drain
    python -m repro loadgen --port 7411 --requests 500 --outstanding 16
    python -m repro watch --port 7411 --interval 1

``--profile`` prints a per-stage timing/counter breakdown (graph build,
LP compile/solve, audit) after the run; ``--obs-jsonl`` streams the raw
instrumentation events to a file that ``report`` renders back.  The
``report`` subcommand also accepts a ``benchmarks/results/*.jsonl``
file and renders it as Markdown (the two formats are auto-detected).
``--schedulers heuristic hybrid`` selects the PR 4 fast lane: the LP-free
close-to-deadline scheduler and the escalating hybrid (a per-scheduler
``hybrid [...]`` summary line reports the lane split after the table).

Every subcommand prints plain-text tables; nothing writes outside the
paths the user names.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional

from repro.analysis import format_table
from repro.core import PostcardScheduler
from repro.net.generators import complete_topology, fig1_topology, fig3_topology
from repro.registry import make_scheduler, scheduler_factory, scheduler_names
from repro.sim import Simulation
from repro.sim.runner import ExperimentSetting, run_comparison
from repro.traffic import PaperWorkload, TraceWorkload, TransferRequest
from repro.traffic.io import load_requests, save_requests

FIGURE_SETTINGS = {
    "fig4": (100.0, 3),
    "fig5": (100.0, 8),
    "fig6": (30.0, 3),
    "fig7": (30.0, 8),
}


def _build_fault_model(args: argparse.Namespace, topology):
    """The outage set a simulate run injects, or None.

    ``--outages FILE`` loads an explicit JSON outage list;
    ``--surprise`` without a file generates random *unannounced*
    outages (and with a file, demotes every loaded outage to a
    surprise).  Each scheduler gets its own copy so one run's
    execution-time discoveries don't leak into another's planning.
    """
    from repro.sim import FaultModel

    if args.outages:
        faults = FaultModel.from_file(args.outages)
        if args.surprise:
            faults = faults.as_surprise()
        return faults
    if args.surprise:
        return FaultModel.random(
            topology,
            args.slots,
            outage_probability=args.outage_prob,
            mean_duration=args.mean_outage,
            seed=args.seed,
            announced=False,
        )
    return None


def _hybrid_summary(name: str, result) -> str:
    """One-line lane split for a hybrid scheduler's run."""
    total = result.escalations + result.fast_slots
    rate = result.escalations / total if total else 0.0
    return (
        f"hybrid [{name}]: fast-lane slots={result.fast_slots} "
        f"LP escalations={result.escalations} "
        f"(escalation rate {rate:.0%})"
    )


def _forecast_summary(name: str, stats: dict) -> str:
    """One-line forecast accuracy/activity report for a run."""
    return (
        f"forecast [{name}]: predictor={stats['predictor']} "
        f"mape={stats['mape']:.2f} trust={stats['trust']:.2f} "
        f"shifted={stats['shifted_gb']:.1f} GB "
        f"guard-trips={stats['guard_trips']}"
    )


def _attach_forecast(scheduler, args) -> bool:
    """Attach a ForecastProvider when the scheduler supports one."""
    attach = getattr(scheduler, "attach_forecast", None)
    if attach is None:
        return False
    from repro.forecast import ForecastConfig, ForecastProvider

    period = args.forecast_period
    horizon = args.forecast_horizon or period
    attach(ForecastProvider(ForecastConfig(period=period, horizon=horizon)))
    return True


def _cmd_simulate_parallel(args: argparse.Namespace) -> int:
    """Fan the per-scheduler runs of ``simulate`` out to workers.

    Workers rebuild topology/workload/faults from the same seeds the
    serial path uses, so the table is identical for any ``--jobs``.
    """
    from repro.sim.parallel import (
        FaultSpec,
        RunTask,
        TOPOLOGY_COMPLETE,
        run_tasks,
    )
    from repro.sim.runner import ExperimentSetting

    setting = ExperimentSetting(
        "simulate",
        capacity=args.capacity,
        max_deadline=args.max_deadline,
        num_datacenters=args.datacenters,
        num_slots=args.slots,
        max_files=args.max_files,
    )
    faults = None
    if args.outages:
        faults = FaultSpec(path=args.outages, announced=not args.surprise)
    elif args.surprise:
        faults = FaultSpec(
            outage_probability=args.outage_prob,
            mean_duration=args.mean_outage,
            announced=False,
        )
    backend = "resilient" if args.solver_chain else None
    tasks = [
        RunTask(
            setting=setting,
            scheduler=name,
            run=0,
            base_seed=args.seed,
            backend=backend,
            faults=faults,
            topology=TOPOLOGY_COMPLETE,
        )
        for name in args.schedulers
    ]
    rows = []
    chaos = []
    hybrid_lines = []
    for name, _run, result in run_tasks(tasks, jobs=args.jobs):
        if result.escalations + result.fast_slots > 0:
            hybrid_lines.append(_hybrid_summary(name, result))
        row = [
            name,
            result.final_cost_per_slot,
            result.total_requests,
            result.total_rejected,
            f"{result.relay_overhead:.2f}",
            f"{result.solve_seconds_total:.2f}",
        ]
        if faults is not None:
            row.extend(
                [
                    f"{result.salvaged_gb:.1f}",
                    f"{result.lost_gb:.1f}",
                    result.deadline_misses,
                ]
            )
            chaos.append((name, result))
        rows.append(row)
    headers = ["scheduler", "cost/slot", "files", "rejected", "relay", "solve s"]
    if faults is not None:
        headers.extend(["salvaged", "lost", "misses"])
    print(format_table(headers, rows))
    for line in hybrid_lines:
        print(line)
    if chaos:
        # Rebuild the (seeded, hence identical) outage set for the
        # summary line the serial path prints.
        topology = complete_topology(
            args.datacenters, capacity=args.capacity, seed=args.seed
        )
        fault_model = faults.build(topology, args.slots, args.seed)
        for name, result in chaos:
            print(
                f"chaos [{name}]: outages={len(fault_model.outages)} "
                f"disrupted={result.disrupted_gb:.2f} GB "
                f"salvaged={result.salvaged_gb:.2f} GB "
                f"lost={result.lost_gb:.2f} GB "
                f"misses={result.deadline_misses} "
                f"replans={result.recovery_replans}"
            )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro import obs

    if args.jobs > 1:
        if (
            args.profile
            or args.obs_jsonl
            or args.show_links
            or args.link_schedule
            or args.forecast
        ):
            print(
                "note: --profile/--obs-jsonl/--show-links/--link-schedule/"
                "--forecast need in-process state; ignoring --jobs and "
                "running serially",
                file=sys.stderr,
            )
        else:
            return _cmd_simulate_parallel(args)

    topology = complete_topology(
        args.datacenters, capacity=args.capacity, seed=args.seed
    )
    horizon = args.slots + args.max_deadline
    faults = _build_fault_model(args, topology)
    link_schedule = None
    if args.link_schedule:
        from repro.errors import TopologyError
        from repro.net.schedule import LinkSchedule

        try:
            link_schedule = LinkSchedule.from_file(args.link_schedule)
        except TopologyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    backend = "resilient" if args.solver_chain else None
    rows = []
    chaos = []
    hybrid_lines = []
    last_scheduler = None

    registry = obs.get_registry()
    collector = obs.Collector() if args.profile else None
    try:
        jsonl = obs.JsonlSink(args.obs_jsonl) if args.obs_jsonl else None
    except OSError as exc:
        print(f"error: cannot open {args.obs_jsonl}: {exc}", file=sys.stderr)
        return 1
    sinks = [s for s in (collector, jsonl) if s is not None]
    for sink in sinks:
        registry.add_sink(sink)
    try:
        for name in args.schedulers:
            scheduler = make_scheduler(name, topology, horizon, backend=backend)
            if faults is not None:
                scheduler.state.fault_model = faults.copy()
            if link_schedule is not None:
                scheduler.state.link_schedule = link_schedule
            if args.forecast and not _attach_forecast(scheduler, args):
                print(
                    f"note: scheduler {name!r} has no forecast hook; "
                    "running it reactively",
                    file=sys.stderr,
                )
            workload = PaperWorkload(
                topology,
                max_deadline=args.max_deadline,
                max_files=args.max_files,
                seed=args.seed + 1000,
            )
            result = Simulation(scheduler, workload, args.slots).run()
            last_scheduler = scheduler
            if result.escalations + result.fast_slots > 0:
                hybrid_lines.append(_hybrid_summary(name, result))
            if result.forecast is not None:
                hybrid_lines.append(_forecast_summary(name, result.forecast))
            row = [
                name,
                result.final_cost_per_slot,
                result.total_requests,
                result.total_rejected,
                f"{result.relay_overhead:.2f}",
                f"{result.solve_seconds_total:.2f}",
            ]
            if faults is not None:
                row.extend(
                    [
                        f"{result.salvaged_gb:.1f}",
                        f"{result.lost_gb:.1f}",
                        result.deadline_misses,
                    ]
                )
                chaos.append((name, result))
            rows.append(row)
    finally:
        for sink in sinks:
            registry.remove_sink(sink)
        if jsonl is not None:
            jsonl.close()
    headers = ["scheduler", "cost/slot", "files", "rejected", "relay", "solve s"]
    if faults is not None:
        headers.extend(["salvaged", "lost", "misses"])
    print(format_table(headers, rows))
    if link_schedule is not None:
        print(link_schedule.describe(args.slots))
    for line in hybrid_lines:
        print(line)
    for name, result in chaos:
        print(
            f"chaos [{name}]: outages={len(faults.outages)} "
            f"disrupted={result.disrupted_gb:.2f} GB "
            f"salvaged={result.salvaged_gb:.2f} GB "
            f"lost={result.lost_gb:.2f} GB "
            f"misses={result.deadline_misses} "
            f"replans={result.recovery_replans}"
        )
    if collector is not None:
        print()
        print(obs.render_report(collector, title="run report"))
    if jsonl is not None:
        print(f"\nwrote {jsonl.num_events} events to {args.obs_jsonl}")

    if args.show_links and last_scheduler is not None:
        from repro.analysis.plots import utilization_rows

        state = last_scheduler.state
        samples = {
            link.key: state.ledger.samples(link.src, link.dst)[: args.slots]
            for link in topology.links
        }
        caps = {link.key: link.capacity for link in topology.links}
        print(f"\nlink utilization ({args.schedulers[-1]}, busiest first):")
        print(utilization_rows(samples, caps, top=8))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    capacity, max_deadline = FIGURE_SETTINGS[args.name]
    setting = ExperimentSetting(
        args.name,
        capacity=capacity,
        max_deadline=max_deadline,
        num_datacenters=args.datacenters,
        num_slots=args.slots,
        max_files=args.max_files,
    )
    factories = {name: scheduler_factory(name) for name in args.schedulers}
    comparison = run_comparison(
        setting, factories, runs=args.runs, base_seed=args.seed, jobs=args.jobs
    )
    print(setting.describe())
    print(comparison.to_table())
    return 0


def _cmd_example(args: argparse.Namespace) -> int:
    if args.name == "fig1":
        request = TransferRequest(2, 3, 6.0, 3, release_slot=0)
        scheduler = PostcardScheduler(fig1_topology(), horizon=100)
        scheduler.on_slot(0, [request])
        print(f"Fig. 1 optimized cost/interval: "
              f"{scheduler.state.current_cost_per_slot():.2f} (paper: 12)")
    else:
        files = [
            TransferRequest(2, 4, 8.0, 4, release_slot=3),
            TransferRequest(1, 4, 10.0, 2, release_slot=3),
        ]
        scheduler = PostcardScheduler(fig3_topology(), horizon=100)
        scheduler.on_slot(3, files)
        print(f"Fig. 3 Postcard cost/interval: "
              f"{scheduler.state.current_cost_per_slot():.2f} (paper: 32.67)")
    return 0


def _cmd_trace_generate(args: argparse.Namespace) -> int:
    topology = complete_topology(args.datacenters, capacity=args.capacity, seed=args.seed)
    workload = PaperWorkload(
        topology, max_deadline=args.max_deadline, max_files=args.max_files,
        seed=args.seed,
    )
    requests = workload.all_requests(args.slots)
    save_requests(requests, args.output)
    print(f"wrote {len(requests)} requests to {args.output}")
    return 0


def _cmd_trace_run(args: argparse.Namespace) -> int:
    requests = load_requests(args.trace)
    if not requests:
        print("trace is empty", file=sys.stderr)
        return 1
    max_node = max(max(r.source, r.destination) for r in requests)
    topology = complete_topology(
        max_node + 1, capacity=args.capacity, seed=args.seed
    )
    num_slots = max(r.release_slot for r in requests) + 1
    horizon = num_slots + max(r.deadline_slots for r in requests)
    scheduler = make_scheduler(args.scheduler, topology, horizon)
    result = Simulation(scheduler, TraceWorkload(requests), num_slots).run()
    print(result.summary())
    return 0


def _cmd_trace_stats(args: argparse.Namespace) -> int:
    from repro.traffic.stats import collect_stats

    requests = load_requests(args.trace)
    if not requests:
        print("trace is empty", file=sys.stderr)
        return 1
    num_slots = max(r.release_slot for r in requests) + 1
    stats = collect_stats(TraceWorkload(requests), num_slots)
    print(stats.describe())
    print("hottest pairs:")
    print(
        format_table(
            ["pair", "GB"],
            [[f"{s}->{d}", volume] for (s, d), volume in stats.hottest_pairs],
        )
    )
    return 0


def _parse_maintenance_windows(specs: List[str]):
    """``SRC:DST:START:END`` outage specs -> ((src, dst), start, end)."""
    outages = []
    for spec in specs:
        parts = spec.split(":")
        if len(parts) != 4:
            raise ValueError(
                f"maintenance window {spec!r} is not SRC:DST:START:END"
            )
        src, dst, start, end = (int(p) for p in parts)
        outages.append(((src, dst), start, end))
    return outages


def _cmd_schedule_generate(args: argparse.Namespace) -> int:
    """Write a link-schedule JSON from one of the scenario presets."""
    from repro.errors import TopologyError
    from repro.net.presets import (
        ground_station_downlink_schedule,
        leo_pass_schedule,
        maintenance_schedule,
    )

    topology = complete_topology(
        args.datacenters, capacity=args.capacity, seed=args.seed
    )
    try:
        if args.preset == "leo":
            schedule = leo_pass_schedule(
                topology,
                args.slots,
                fraction=args.fraction,
                period=args.period,
                pass_length=args.pass_length,
                seed=args.seed,
            )
        elif args.preset == "downlink":
            schedule = ground_station_downlink_schedule(
                topology,
                args.slots,
                station_dcs=args.stations,
                period=args.period,
                window_length=args.pass_length,
            )
        else:  # maintenance
            if not args.window:
                print(
                    "error: --preset maintenance needs at least one "
                    "--window SRC:DST:START:END",
                    file=sys.stderr,
                )
                return 1
            try:
                outages = _parse_maintenance_windows(args.window)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            schedule = maintenance_schedule(
                topology, args.slots, outages, repeat_every=args.repeat_every
            )
    except TopologyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    schedule.to_file(args.output)
    print(
        f"wrote {schedule.num_windows} windows for {len(schedule)} links "
        f"to {args.output}"
    )
    print(schedule.describe(args.slots))
    return 0


def _cmd_schedule_show(args: argparse.Namespace) -> int:
    """Summarize a link-schedule file, link by link."""
    from repro.errors import TopologyError
    from repro.net.schedule import LinkSchedule

    try:
        schedule = LinkSchedule.from_file(args.schedule)
    except TopologyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(schedule.describe(args.slots if args.slots else None))
    rows = []
    for src, dst in schedule.scheduled_links():
        windows = schedule.windows_for(src, dst)
        spans = " ".join(
            f"[{w.start_slot},{w.end_slot})" for w in windows
        ) or "(dark)"
        rows.append([f"{src}->{dst}", len(windows), spans])
    if rows:
        print(format_table(["link", "windows", "up spans"], rows))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro import obs
    from repro.errors import ServiceError
    from repro.service import ServiceConfig, ServiceDaemon

    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            socket_path=args.socket,
            datacenters=args.datacenters,
            capacity=args.capacity,
            seed=args.seed,
            scheduler=args.scheduler,
            backend="resilient" if args.solver_chain else None,
            link_schedule_path=args.link_schedule,
            max_deadline=args.max_deadline,
            tick_seconds=args.tick_seconds,
            max_queue=args.max_queue,
            max_batch=args.max_batch,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            wal=args.wal,
            snapshot_retain=args.snapshot_retain,
            read_timeout_s=args.read_timeout,
            watchdog_timeout_s=args.watchdog_timeout,
            max_slots=args.max_slots,
            period_slots=args.period_slots,
            period_prune=args.period_prune,
            forecast=args.forecast,
            forecast_period=args.forecast_period,
            forecast_horizon=args.forecast_horizon,
        )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    # Subprocess fault drills arm crash/mangle points through the
    # environment (REPRO_CHAOS=action:point[:at[:param]],...); a clean
    # environment arms nothing and the taps are no-ops.
    from repro.service import chaos as chaos_mod

    try:
        chaos_mod.MONKEY.configure_from_env()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    registry = obs.get_registry()
    try:
        jsonl = obs.JsonlSink(args.obs_jsonl) if args.obs_jsonl else None
    except OSError as exc:
        print(f"error: cannot open {args.obs_jsonl}: {exc}", file=sys.stderr)
        return 1
    if jsonl is not None:
        registry.add_sink(jsonl)

    async def _run() -> None:
        daemon = ServiceDaemon(config)
        await daemon.start()
        endpoint = (
            config.endpoint
            if config.socket_path
            else f"tcp:{config.host}:{daemon.port}"
        )
        resumed = " (resumed from checkpoint)" if daemon.broker.resumed else ""
        windowed = (
            f" windowed-links={len(daemon.broker.link_schedule)}"
            if daemon.broker.link_schedule
            else ""
        )
        print(
            f"serving on {endpoint} scheduler={config.scheduler} "
            f"tick={config.tick_seconds}s queue<={config.max_queue}"
            f"{windowed}{resumed}",
            flush=True,
        )
        try:
            await daemon.run_until_stopped()
        finally:
            await daemon.stop()
        stats = daemon.broker.stats()
        print(
            f"drained: slots={stats['slots']} submitted={stats['submitted']} "
            f"admitted={stats['admitted']} rejected={stats['rejected']} "
            f"checkpoints={stats['checkpoints']}",
            flush=True,
        )

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("interrupted; state is only as fresh as the last checkpoint")
        return 130
    finally:
        if jsonl is not None:
            registry.remove_sink(jsonl)
            jsonl.close()
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the scripted fault drills and report pass/fail."""
    import json as _json
    import tempfile

    from repro.service import chaos as chaos_mod

    base = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    os.makedirs(base, exist_ok=True)
    wanted = (
        ["crash-matrix", "corruption", "watchdog"]
        if args.drill == "all"
        else [args.drill]
    )
    drills = {}
    if "crash-matrix" in wanted:
        drills["crash_matrix"] = chaos_mod.run_crash_matrix(
            os.path.join(base, "crash")
        )
    if "corruption" in wanted:
        drills["corruption"] = chaos_mod.run_torn_and_corrupt_drill(
            os.path.join(base, "corruption")
        )
    if "watchdog" in wanted:
        drills["watchdog"] = chaos_mod.run_watchdog_drill(
            os.path.join(base, "watchdog")
        )
    ok = all(report["ok"] for report in drills.values())
    report = {"ok": ok, "workdir": base, "drills": drills}
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(report, fh, indent=1)
            fh.write("\n")

    for name, drill in drills.items():
        line = f"{name}: {'PASS' if drill['ok'] else 'FAIL'}"
        if name == "crash_matrix":
            passed = sum(
                1 for e in drill["points"].values()
                if e["crashed"] and e["books_equal"]
            )
            line += f" ({passed}/{len(drill['points'])} crash points recover exactly)"
        elif name == "corruption":
            passed = sum(1 for e in drill["cases"].values() if e["books_equal"])
            line += f" ({passed}/{len(drill['cases'])} corruptions recover exactly)"
        elif name == "watchdog":
            line += (
                f" (first slot {drill['first_slot_seconds']}s, "
                f"degraded={drill['degraded_slots']}, "
                f"rearmed={drill['rearmed']})"
            )
        print(line)
    print(f"chaos drills: {'PASS' if ok else 'FAIL'} (workdir {base})")
    return 0 if ok else 1


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json as _json

    from repro.errors import ServiceError
    from repro.service import run_loadgen

    if args.trace:
        requests = load_requests(args.trace)
    else:
        topology = complete_topology(
            args.datacenters, capacity=args.capacity, seed=args.seed
        )
        workload = PaperWorkload(
            topology,
            max_deadline=args.max_deadline,
            max_files=args.max_files,
            seed=args.seed,
        )
        requests = []
        slot = 0
        while len(requests) < args.requests:
            requests.extend(workload.requests_at(slot))
            slot += 1
        requests = requests[: args.requests]
    if not requests:
        print("nothing to replay", file=sys.stderr)
        return 1

    per_shard = {}
    try:
        if args.endpoint:
            from repro.service import ShardMap, run_fleet_loadgen

            endpoints = _parse_shard_specs(args.endpoint)
            shard_map = ShardMap(sorted(endpoints))
            result, per_shard = asyncio.run(
                run_fleet_loadgen(
                    requests,
                    endpoints,
                    rate_per_min=args.rate,
                    max_retries=args.max_retries,
                    drain=args.drain,
                    outstanding=args.outstanding,
                    shard_map=shard_map,
                )
            )
        else:
            result = asyncio.run(
                run_loadgen(
                    requests,
                    host=args.host,
                    port=args.port,
                    socket_path=args.socket,
                    rate_per_min=args.rate,
                    max_retries=args.max_retries,
                    drain=args.drain,
                    outstanding=args.outstanding,
                )
            )
    except (ServiceError, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    summary = result.summary()
    if per_shard:
        summary["shards"] = {
            name: shard_result.summary()
            for name, shard_result in per_shard.items()
        }
        for name in sorted(per_shard):
            s = per_shard[name].summary()
            print(
                f"  shard {name}: submitted={s['submitted']} "
                f"admitted={s['admitted']} rejected={s['rejected']} "
                f"failed={s['failed']} capacity={s['capacity_per_s']} req/s"
            )
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(_json.dumps(summary, indent=2) + "\n")
    if summary["mode"] == "closed":
        print(
            f"closed loop: {summary['submitted']}/{len(requests)} requests "
            f"at {summary['outstanding']} outstanding — capacity "
            f"{summary['capacity_per_s']} req/s"
        )
    else:
        print(
            f"replayed {summary['submitted']}/{len(requests)} requests at "
            f"{summary['throughput_per_min']} req/min "
            f"(target {args.rate:g} req/min)"
        )
    print(
        f"admitted={summary['admitted']} rejected={summary['rejected']} "
        f"failed={summary['failed']} "
        f"backpressure_retries={summary['backpressure_retries']} "
        f"deadline_misses={summary['deadline_misses']}"
    )
    print(
        f"latency: rtt p50={summary['rtt_p50_s']}s p99={summary['rtt_p99_s']}s | "
        f"wait p99={summary['wait_p99_s']}s | "
        f"decision p50={summary['decision_p50_s']}s "
        f"p99={summary['decision_p99_s']}s"
    )
    if args.drain:
        print("drain: clean" if result.drained else "drain: FAILED")
    if args.expect_no_misses and (
        summary["deadline_misses"] > 0
        or summary["failed"] > 0
        or (args.drain and not result.drained)
    ):
        print("gate failed: misses/failures detected", file=sys.stderr)
        return 1
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    import asyncio

    from repro.errors import ServiceError
    from repro.service import run_watch

    try:
        endpoints = _parse_shard_specs(args.endpoint) if args.endpoint else None
        frames = asyncio.run(
            run_watch(
                host=args.host,
                port=args.port,
                socket_path=args.socket,
                endpoints=endpoints,
                interval_s=args.interval,
                iterations=1 if args.once else args.iterations,
                clear=not (args.no_clear or args.once),
            )
        )
    except KeyboardInterrupt:
        return 0
    except (ServiceError, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0 if frames else 1


def _parse_shard_specs(specs) -> dict:
    """``NAME=ENDPOINT`` pairs -> ordered shard dict (raises on junk)."""
    from repro.errors import ServiceError

    shards = {}
    for spec in specs or ():
        name, sep, endpoint = spec.partition("=")
        if not sep or not name.strip() or not endpoint.strip():
            raise ServiceError(
                f"bad shard spec {spec!r}; expected NAME=ENDPOINT "
                "(e.g. us=127.0.0.1:7411 or eu=unix:/tmp/eu.sock)"
            )
        if name.strip() in shards:
            raise ServiceError(f"duplicate shard name {name.strip()!r}")
        shards[name.strip()] = endpoint.strip()
    return shards


def _cmd_fleet_serve(args: argparse.Namespace) -> int:
    import asyncio
    import subprocess

    from repro.errors import ServiceError
    from repro.service import FleetConfig, FleetRouter
    from repro.service.loadgen import _Connection, parse_endpoint

    try:
        shards = _parse_shard_specs(args.shard)
        fleet = FleetConfig(
            shards=shards,
            gateway_dc=args.gateway,
            gateway_mode=args.gateway_mode,
            datacenters=args.datacenters,
            capacity=args.capacity,
            seed=args.seed,
            scheduler=args.scheduler,
            max_deadline=args.max_deadline,
            max_queue=args.max_queue,
            tick_seconds=args.tick_seconds,
            checkpoint_root=args.checkpoint_root,
            wal=args.wal,
            period_slots=args.period_slots,
        )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    procs = []
    if args.spawn:
        for name in sorted(shards):
            cfg = fleet.shard_config(name)
            cmd = [
                sys.executable, "-m", "repro", "serve",
                "--datacenters", str(cfg.datacenters),
                "--capacity", str(cfg.capacity),
                "--seed", str(cfg.seed),
                "--scheduler", cfg.scheduler,
                "--max-deadline", str(cfg.max_deadline),
                "--max-queue", str(cfg.max_queue),
                "--tick-seconds", str(cfg.tick_seconds),
            ]
            if cfg.socket_path:
                cmd += ["--socket", cfg.socket_path]
            else:
                cmd += ["--host", cfg.host, "--port", str(cfg.port)]
            if cfg.checkpoint_dir:
                os.makedirs(cfg.checkpoint_dir, exist_ok=True)
                cmd += ["--checkpoint-dir", cfg.checkpoint_dir]
                if cfg.wal:
                    cmd += ["--wal"]
            if cfg.period_slots:
                cmd += ["--period-slots", str(cfg.period_slots)]
            procs.append((name, subprocess.Popen(cmd)))

    async def _run() -> None:
        # Wait for every shard to answer a ping before opening the
        # front door (spawned shards need a moment to bind).
        for name in sorted(shards):
            host, port, socket_path = parse_endpoint(shards[name])
            deadline = asyncio.get_running_loop().time() + args.spawn_timeout
            while True:
                try:
                    conn = await _Connection.open(host, port, socket_path)
                    await conn.call({"op": "ping"})
                    await conn.close()
                    break
                except (OSError, ConnectionError, ServiceError):
                    if (
                        not args.spawn
                        or asyncio.get_running_loop().time() > deadline
                    ):
                        raise ServiceError(
                            f"shard {name!r} at {shards[name]} is not "
                            "answering"
                        )
                    await asyncio.sleep(0.1)
        router = FleetRouter(
            fleet, host=args.host, port=args.port, socket_path=args.socket
        )
        await router.start()
        print(
            f"fleet router on {router.endpoint} shards="
            f"{','.join(sorted(shards))} gateway_dc={fleet.gateway_dc} "
            f"gateway_mode={fleet.gateway_mode}",
            flush=True,
        )
        try:
            await router.run_until_stopped()
        finally:
            await router.stop()
        print(
            f"fleet drained: submitted={router.counts['submitted']} "
            f"direct={router.counts['direct']} "
            f"relayed={router.counts['relayed']}",
            flush=True,
        )

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("interrupted")
        return 130
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        for _, proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for _, proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
    return 0


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    import asyncio
    import json as _json

    from repro.analysis import format_table
    from repro.errors import ServiceError
    from repro.service.loadgen import _Connection, parse_endpoint

    async def _fetch():
        host, port, socket_path = parse_endpoint(args.endpoint)
        conn = await _Connection.open(host, port, socket_path)
        try:
            return await conn.call({"op": "stats"})
        finally:
            await conn.close()

    try:
        response = asyncio.run(_fetch())
    except (ServiceError, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not response.get("ok"):
        print(f"error: {response.get('message', response)}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(response, indent=2, sort_keys=True))
        return 0
    router = response.get("router", {})
    fleet = response.get("fleet", {})
    print(
        f"fleet router {response.get('endpoint', '?')} — "
        f"map v{router.get('map_version', '?')} "
        f"submitted={router.get('submitted', 0)} "
        f"direct={router.get('direct', 0)} relayed={router.get('relayed', 0)} "
        f"relays_active={router.get('relays_active', 0)} "
        f"parked={router.get('parked', 0)}"
    )
    rows = []
    for name in sorted(response.get("shards", {})):
        body = response["shards"][name]
        if "down" in body and "next_slot" not in body:
            rows.append([name, "DOWN", "-", "-", "-", "-", "-"])
            continue
        rows.append([
            name,
            body.get("next_slot", "?"),
            f"{body.get('queue_depth', '?')}/{body.get('max_queue', '?')}",
            body.get("submitted", 0),
            body.get("admitted", 0),
            body.get("rejected", 0),
            body.get("cost_per_slot", 0.0),
        ])
    print(format_table(
        ["shard", "slot", "queue", "submitted", "admitted", "rejected",
         "cost/slot"],
        rows,
    ))
    print(
        f"fleet totals: submitted={fleet.get('submitted', 0)} "
        f"admitted={fleet.get('admitted', 0)} "
        f"rejected={fleet.get('rejected', 0)} "
        f"cost/slot={fleet.get('cost_per_slot', 0.0)}"
    )
    down = router.get("down") or []
    if down:
        print(f"down shards: {', '.join(down)}")
        return 1
    return 0


def _looks_like_obs_events(path: str) -> bool:
    """True when the first JSON line is an observability event.

    Both ``report`` inputs are JSONL; obs events carry a ``type`` of
    span/counter/gauge, benchmark records carry ``figure``/``means``.
    Unreadable or malformed files fall through to the benchmark loader,
    whose errors name the offending line.
    """
    import json

    try:
        with open(path) as fh:
            for line in fh:
                if not line.strip():
                    continue
                record = json.loads(line)
                return (
                    isinstance(record, dict)
                    and record.get("type") in ("span", "counter", "gauge")
                )
    except (OSError, json.JSONDecodeError):
        pass
    return False


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.errors import ReproError

    try:
        if _looks_like_obs_events(args.results):
            from repro.obs import load_events, render_events_report

            events = load_events(args.results)
            if not events:
                print(f"{args.results}: no events", file=sys.stderr)
                return 1
            text = render_events_report(
                events, title=f"run report — {args.results}"
            )
            count = len(events)
            unit = "events"
        else:
            from repro.sim.report import load_records, render_markdown

            records = load_records(args.results)
            if not records:
                print(f"{args.results}: no records", file=sys.stderr)
                return 1
            text = render_markdown(records)
            count = len(records)
            unit = "records"
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.output == "-":
        print(text)
    else:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"wrote report for {count} {unit} to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Postcard (ICDCS'12) reproduction: schedulers, figures, traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, slots=10):
        p.add_argument("--datacenters", type=int, default=8)
        p.add_argument("--capacity", type=float, default=30.0)
        p.add_argument("--max-deadline", type=int, default=4)
        p.add_argument("--max-files", type=int, default=6)
        p.add_argument("--slots", type=int, default=slots)
        p.add_argument("--seed", type=int, default=0)

    p_sim = sub.add_parser("simulate", help="run one seeded simulation")
    common(p_sim)
    p_sim.add_argument(
        "--schedulers",
        nargs="+",
        choices=scheduler_names(),
        default=["postcard", "flow-based", "direct"],
    )
    p_sim.add_argument(
        "--show-links",
        action="store_true",
        help="print per-link utilization sparklines for the last scheduler",
    )
    p_sim.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage timing/counter breakdown after the run",
    )
    p_sim.add_argument(
        "--obs-jsonl",
        metavar="PATH",
        help="stream instrumentation events to PATH (render with "
        "`python -m repro report PATH`)",
    )
    p_sim.add_argument(
        "--outages",
        metavar="FILE",
        help="inject outages from a JSON file (list of {src, dst, "
        "start_slot, end_slot, announced})",
    )
    p_sim.add_argument(
        "--surprise",
        action="store_true",
        help="make outages unannounced (invisible at schedule time); "
        "without --outages, generates random surprise outages",
    )
    p_sim.add_argument(
        "--outage-prob",
        type=float,
        default=0.15,
        help="per-link failure probability for generated outages",
    )
    p_sim.add_argument(
        "--mean-outage",
        type=float,
        default=2.0,
        help="mean outage duration in slots for generated outages",
    )
    p_sim.add_argument(
        "--solver-chain",
        action="store_true",
        help="solve LPs through the resilient retry/fallback backend "
        "chain (highs -> simplex -> interior_point)",
    )
    p_sim.add_argument(
        "--link-schedule",
        metavar="FILE",
        help="restrict links to the availability windows in FILE "
        "(generate one with `python -m repro schedule generate`)",
    )
    p_sim.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run schedulers in N worker processes (same seeds, same "
        "results; incompatible with --profile/--obs-jsonl/--show-links)",
    )
    p_sim.add_argument(
        "--forecast",
        action="store_true",
        help="attach an online traffic forecaster to forecast-capable "
        "schedulers (hybrid): predicted background load steers paid "
        "lifts into forecast-quiet slots (see docs/FORECAST.md)",
    )
    p_sim.add_argument(
        "--forecast-period",
        type=int,
        default=24,
        metavar="SLOTS",
        help="seasonal period the predictors learn (default 24)",
    )
    p_sim.add_argument(
        "--forecast-horizon",
        type=int,
        default=0,
        metavar="SLOTS",
        help="how far ahead reservations extend (default: one period)",
    )
    p_sim.set_defaults(func=_cmd_simulate)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("name", choices=sorted(FIGURE_SETTINGS))
    p_fig.add_argument("--runs", type=int, default=3)
    p_fig.add_argument("--datacenters", type=int, default=10)
    p_fig.add_argument("--slots", type=int, default=12)
    p_fig.add_argument("--max-files", type=int, default=10)
    p_fig.add_argument("--seed", type=int, default=2012)
    p_fig.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fan the runs x schedulers grid out to N worker processes",
    )
    p_fig.add_argument(
        "--schedulers",
        nargs="+",
        choices=scheduler_names(),
        default=["postcard", "flow-based"],
    )
    p_fig.set_defaults(func=_cmd_figure)

    p_ex = sub.add_parser("example", help="print a worked paper example")
    p_ex.add_argument("name", choices=["fig1", "fig3"])
    p_ex.set_defaults(func=_cmd_example)

    p_trace = sub.add_parser("trace", help="generate or replay traces")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    p_gen = trace_sub.add_parser("generate", help="write a workload trace")
    common(p_gen, slots=5)
    p_gen.add_argument("-o", "--output", required=True)
    p_gen.set_defaults(func=_cmd_trace_generate)

    p_stats = trace_sub.add_parser("stats", help="summarize a trace")
    p_stats.add_argument("trace")
    p_stats.set_defaults(func=_cmd_trace_stats)

    p_run = trace_sub.add_parser("run", help="replay a trace")
    p_run.add_argument("trace")
    p_run.add_argument(
        "--scheduler", choices=scheduler_names(), default="postcard"
    )
    p_run.add_argument("--capacity", type=float, default=30.0)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.set_defaults(func=_cmd_trace_run)

    p_sched = sub.add_parser(
        "schedule",
        help="generate or inspect link-availability schedules "
        "(see docs/SCENARIOS.md)",
    )
    sched_sub = p_sched.add_subparsers(dest="schedule_command", required=True)

    p_sgen = sched_sub.add_parser(
        "generate", help="write a link-schedule JSON from a scenario preset"
    )
    p_sgen.add_argument(
        "--preset",
        choices=["leo", "downlink", "maintenance"],
        required=True,
        help="leo: periodic constellation passes over a random link "
        "subset; downlink: appointment windows at ground-station DCs; "
        "maintenance: always-on minus explicit outage windows",
    )
    p_sgen.add_argument("--datacenters", type=int, default=8)
    p_sgen.add_argument("--capacity", type=float, default=30.0)
    p_sgen.add_argument("--slots", type=int, default=10)
    p_sgen.add_argument("--seed", type=int, default=0)
    p_sgen.add_argument(
        "--fraction",
        type=float,
        default=0.5,
        help="(leo) fraction of links riding the constellation",
    )
    p_sgen.add_argument(
        "--period",
        type=int,
        default=8,
        help="(leo/downlink) slots between window starts",
    )
    p_sgen.add_argument(
        "--pass-length",
        type=int,
        default=3,
        help="(leo/downlink) slots each window stays up",
    )
    p_sgen.add_argument(
        "--stations",
        type=int,
        nargs="+",
        default=[0],
        help="(downlink) ground-station datacenter ids",
    )
    p_sgen.add_argument(
        "--window",
        action="append",
        metavar="SRC:DST:START:END",
        help="(maintenance) one outage span; repeatable",
    )
    p_sgen.add_argument(
        "--repeat-every",
        type=int,
        default=None,
        help="(maintenance) recur the outage pattern every N slots",
    )
    p_sgen.add_argument("-o", "--output", required=True)
    p_sgen.set_defaults(func=_cmd_schedule_generate)

    p_show = sched_sub.add_parser(
        "show", help="summarize a link-schedule file"
    )
    p_show.add_argument("schedule")
    p_show.add_argument(
        "--slots",
        type=int,
        default=0,
        help="report coverage over the first N slots",
    )
    p_show.set_defaults(func=_cmd_schedule_show)

    p_serve = sub.add_parser(
        "serve", help="run the transfer-broker daemon (see docs/SERVICE.md)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7411, help="TCP port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--socket", metavar="PATH", default=None,
        help="serve on a unix socket instead of TCP",
    )
    p_serve.add_argument(
        "--link-schedule",
        metavar="FILE",
        help="broker under the availability windows in FILE",
    )
    p_serve.add_argument("--datacenters", type=int, default=10)
    p_serve.add_argument("--capacity", type=float, default=100.0)
    p_serve.add_argument("--max-deadline", type=int, default=16)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--scheduler", choices=scheduler_names(), default="hybrid"
    )
    p_serve.add_argument(
        "--solver-chain", action="store_true",
        help="solve escalated slots through the resilient backend chain",
    )
    p_serve.add_argument(
        "--tick-seconds", type=float, default=0.25,
        help="virtual-slot tick; 0 = manual (slots advance on 'tick' "
        "messages only)",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=1024,
        help="intake depth bound; beyond it submissions get "
        "backpressure + retry-after",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=0,
        help="cap on requests per slot batch (0 = drain the whole queue)",
    )
    p_serve.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="snapshot state here every --checkpoint-every slots; a "
        "restart resumes from the snapshot",
    )
    p_serve.add_argument("--checkpoint-every", type=int, default=5)
    p_serve.add_argument(
        "--wal", action="store_true",
        help="write-ahead log every admission/commit (fsync'd before "
        "the ack) and compact snapshots generationally; needs "
        "--checkpoint-dir",
    )
    p_serve.add_argument(
        "--snapshot-retain", type=int, default=3,
        help="snapshot generations kept for checksum fallback (WAL mode)",
    )
    p_serve.add_argument(
        "--read-timeout", type=float, default=0.0, metavar="S",
        help="disconnect a connection idle (no line, nothing in flight) "
        "for S seconds (0 = never)",
    )
    p_serve.add_argument(
        "--watchdog-timeout", type=float, default=0.0, metavar="S",
        help="degrade a slot to fast-lane-only when an LP escalation "
        "exceeds S seconds (0 = off; hybrid scheduler only)",
    )
    p_serve.add_argument(
        "--max-slots", type=int, default=0,
        help="stop after N slots (0 = run until drained); automatic "
        "clock only",
    )
    p_serve.add_argument(
        "--period-slots", type=int, default=0,
        help="roll the charging period over every N slots (billing "
        "rollover; 0 = single-period mode, refuse past the horizon)",
    )
    p_serve.add_argument(
        "--period-prune", action="store_true",
        help="drop ledger samples older than the last closed period "
        "boundary (bounds memory on long runs; needs --period-slots)",
    )
    p_serve.add_argument(
        "--forecast", action="store_true",
        help="attach an online traffic forecaster (hybrid scheduler "
        "only); accuracy rides the `metrics` op and `repro watch`",
    )
    p_serve.add_argument(
        "--forecast-period", type=int, default=24, metavar="SLOTS",
        help="seasonal period the forecaster learns (default 24)",
    )
    p_serve.add_argument(
        "--forecast-horizon", type=int, default=0, metavar="SLOTS",
        help="reservation horizon (default: one period)",
    )
    p_serve.add_argument(
        "--obs-jsonl", metavar="PATH",
        help="stream service instrumentation events to PATH",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_chaos = sub.add_parser(
        "chaos",
        help="run the crash/corruption/watchdog fault drills "
        "(docs/ROBUSTNESS.md); exit 1 on any recovery mismatch",
    )
    p_chaos.add_argument(
        "--drill", choices=["crash-matrix", "corruption", "watchdog", "all"],
        default="all", help="which drill to run (default: all)",
    )
    p_chaos.add_argument(
        "--workdir", metavar="DIR", default=None,
        help="keep drill checkpoint dirs here (default: a temp dir)",
    )
    p_chaos.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full drill report (recovery info, verifier "
        "checks per case) as JSON",
    )
    p_chaos.set_defaults(func=_cmd_chaos)

    p_lg = sub.add_parser(
        "loadgen", help="replay a traffic trace against a running daemon"
    )
    p_lg.add_argument("--host", default="127.0.0.1")
    p_lg.add_argument("--port", type=int, default=7411)
    p_lg.add_argument(
        "--socket", metavar="PATH", default=None,
        help="connect over a unix socket instead of TCP",
    )
    p_lg.add_argument(
        "--trace", metavar="FILE", default=None,
        help="replay an explicit trace (from `repro trace generate`); "
        "otherwise a PaperWorkload trace is generated",
    )
    p_lg.add_argument(
        "--requests", type=int, default=200,
        help="number of generated requests (ignored with --trace)",
    )
    p_lg.add_argument(
        "--rate", type=float, default=1000.0, help="submission rate, req/min"
    )
    p_lg.add_argument(
        "--outstanding", type=int, default=0,
        help="closed-loop mode: keep N submissions in flight (submit on "
        "response, ignoring --rate) and report capacity in req/s",
    )
    p_lg.add_argument("--datacenters", type=int, default=10)
    p_lg.add_argument("--capacity", type=float, default=100.0)
    p_lg.add_argument("--max-deadline", type=int, default=8)
    p_lg.add_argument("--max-files", type=int, default=6)
    p_lg.add_argument("--seed", type=int, default=0)
    p_lg.add_argument(
        "--max-retries", type=int, default=8,
        help="backpressure retries per request before counting it failed",
    )
    p_lg.add_argument(
        "--drain", action="store_true",
        help="send drain after the replay (flushes + stops the daemon)",
    )
    p_lg.add_argument(
        "--expect-no-misses", action="store_true",
        help="exit 1 if any admitted request missed its deadline or any "
        "submission failed (CI gate)",
    )
    p_lg.add_argument(
        "--json", metavar="PATH", help="also write the summary as JSON"
    )
    p_lg.add_argument(
        "--endpoint", action="append", metavar="NAME=ENDPOINT",
        help="fleet mode (repeatable): drive several shard daemons at "
        "once, partitioning requests by consistent-hash on source; "
        "overrides --host/--port/--socket",
    )
    p_lg.set_defaults(func=_cmd_loadgen)

    p_watch = sub.add_parser(
        "watch", help="live telemetry dashboard over a running daemon"
    )
    p_watch.add_argument("--host", default="127.0.0.1")
    p_watch.add_argument("--port", type=int, default=7411)
    p_watch.add_argument(
        "--socket", metavar="PATH", default=None,
        help="connect over a unix socket instead of TCP",
    )
    p_watch.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between metrics polls",
    )
    p_watch.add_argument(
        "--iterations", type=int, default=0,
        help="stop after N frames (0 = run until the daemon drains)",
    )
    p_watch.add_argument(
        "--once", action="store_true",
        help="render a single frame without clearing the screen and exit",
    )
    p_watch.add_argument(
        "--no-clear", action="store_true",
        help="do not clear the screen between frames (pipe-friendly)",
    )
    p_watch.add_argument(
        "--endpoint", action="append", metavar="NAME=ENDPOINT",
        help="fleet mode (repeatable): watch several shard daemons as "
        "per-shard dashboard rows; overrides --host/--port/--socket",
    )
    p_watch.set_defaults(func=_cmd_watch)

    p_fleet = sub.add_parser(
        "fleet",
        help="run or inspect a sharded broker fleet (see docs/SERVICE.md)",
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)
    p_fs = fleet_sub.add_parser(
        "serve",
        help="run the front-end router over per-region shard daemons",
    )
    p_fs.add_argument(
        "--shard", action="append", required=True, metavar="NAME=ENDPOINT",
        help="one shard daemon (repeatable); endpoint is host:port or "
        "unix:/path",
    )
    p_fs.add_argument(
        "--spawn", action="store_true",
        help="launch each shard as a `repro serve` subprocess on its "
        "endpoint (otherwise shards must already be running)",
    )
    p_fs.add_argument(
        "--spawn-timeout", type=float, default=15.0,
        help="seconds to wait for spawned shards to answer ping",
    )
    p_fs.add_argument(
        "--gateway", type=int, default=0, metavar="DC",
        help="gateway datacenter cross-shard relays hop through",
    )
    p_fs.add_argument(
        "--gateway-mode", choices=("fixed", "cheapest"), default="fixed",
        help="route relays through the fixed --gateway DC, or pick the "
        "cheapest gateway per transfer from link prices",
    )
    p_fs.add_argument("--host", default="127.0.0.1")
    p_fs.add_argument(
        "--port", type=int, default=7410, help="router TCP port (0 = ephemeral)"
    )
    p_fs.add_argument(
        "--socket", metavar="PATH", default=None,
        help="serve the router on a unix socket instead of TCP",
    )
    p_fs.add_argument("--datacenters", type=int, default=10)
    p_fs.add_argument("--capacity", type=float, default=100.0)
    p_fs.add_argument("--seed", type=int, default=0)
    p_fs.add_argument(
        "--scheduler", choices=scheduler_names(), default="hybrid"
    )
    p_fs.add_argument("--max-deadline", type=int, default=16)
    p_fs.add_argument("--max-queue", type=int, default=1024)
    p_fs.add_argument(
        "--tick-seconds", type=float, default=0.25,
        help="per-shard virtual-slot tick (0 = manual ticks via the "
        "router's tick op)",
    )
    p_fs.add_argument(
        "--checkpoint-root", metavar="DIR", default=None,
        help="per-shard checkpoint dirs are created under DIR/<shard>",
    )
    p_fs.add_argument(
        "--wal", action="store_true",
        help="run every shard with the write-ahead log (needs "
        "--checkpoint-root)",
    )
    p_fs.add_argument(
        "--period-slots", type=int, default=0,
        help="per-shard billing rollover period (0 = single period)",
    )
    p_fs.set_defaults(func=_cmd_fleet_serve)
    p_fstat = fleet_sub.add_parser(
        "status", help="one-shot fleet stats from a running router"
    )
    p_fstat.add_argument(
        "--endpoint", default="127.0.0.1:7410",
        help="router endpoint (host:port or unix:/path)",
    )
    p_fstat.add_argument(
        "--json", action="store_true", help="print the raw stats response"
    )
    p_fstat.set_defaults(func=_cmd_fleet_status)

    p_report = sub.add_parser(
        "report",
        help="render a benchmark results or observability events .jsonl",
    )
    p_report.add_argument(
        "results",
        help="path to benchmarks/results/<scale>.jsonl or an --obs-jsonl "
        "event file (auto-detected)",
    )
    p_report.add_argument("-o", "--output", default="-", help="output file or - for stdout")
    p_report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
