"""The paper's primary contribution: the Postcard optimizer.

At every slot ``t`` the online controller receives the newly released
files ``K(t)``, builds the LP of Sec. V on a time-expanded graph over
``[t, t + max_k T_k]`` — respecting capacity already committed to
earlier files and the charged volumes ``X_ij(t-1)`` already paid for —
solves it, and commits the resulting store-and-forward schedule.
"""

from repro.core.interfaces import Scheduler
from repro.core.state import NetworkState
from repro.core.schedule import (
    SEMANTICS_FLUID,
    SEMANTICS_STORE_AND_FORWARD,
    ScheduleEntry,
    TransferSchedule,
)
from repro.core.formulation import PostcardModel, build_postcard_model
from repro.core.scheduler import PostcardScheduler
from repro.core.offline import OfflineResult, empirical_competitive_ratio, solve_offline
from repro.core.lookahead import LookaheadPostcardScheduler
from repro.core.replan import ActiveFile, ReplanningPostcardScheduler
from repro.core.paths import TimedPath, decompose_paths
from repro.core.bounds import DualBoundResult, dual_lower_bound, shortest_path_over_time
from repro.core.soft import SoftDeadlineResult, solve_soft_deadline
from repro.core.checkpoint import load_state, save_state, state_from_json, state_to_json

__all__ = [
    "Scheduler",
    "NetworkState",
    "ScheduleEntry",
    "TransferSchedule",
    "SEMANTICS_FLUID",
    "SEMANTICS_STORE_AND_FORWARD",
    "PostcardModel",
    "build_postcard_model",
    "PostcardScheduler",
    "OfflineResult",
    "solve_offline",
    "empirical_competitive_ratio",
    "LookaheadPostcardScheduler",
    "ReplanningPostcardScheduler",
    "ActiveFile",
    "TimedPath",
    "decompose_paths",
    "DualBoundResult",
    "dual_lower_bound",
    "shortest_path_over_time",
    "SoftDeadlineResult",
    "solve_soft_deadline",
    "save_state",
    "load_state",
    "state_to_json",
    "state_from_json",
]
