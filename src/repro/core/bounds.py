"""Lagrangian dual lower bounds by projected subgradient.

Sec. V notes the Postcard problem can be attacked with "subgradient
projection methods"; this module implements that idea in its most
useful form for a reproduction: a *certifiable lower bound* on the
optimal cost that needs no LP solver at all.

Relax the two coupling constraint families of the Sec. V program —

* charge rows   ``X_e >= load_e(n) + committed_e(n)``  (multiplier w_en >= 0)
* capacity rows ``sum_k load^k_e(n) <= cap_e(n)``      (multiplier lam_en >= 0)

— and the Lagrangian decomposes: the ``X_e`` minimization is bounded
iff ``sum_n w_en <= a_e`` (the projection constraint), contributing
``(a_e - sum_n w_en) * X_prev_e``; each file's minimization becomes a
**shortest path over the time-expanded graph** under arc weights
``w + lam`` (holdover arcs cost nothing), solved by a layer-by-layer
dynamic program.  Weak duality makes every iterate's dual value a true
lower bound; projected subgradient ascent tightens it.

The gap to the exact LP optimum on small instances is the advertised
test; the bound's value at scale is certifying heuristic schedules
(greedy, two-phase) without ever building the big LP.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import InfeasibleError, SchedulingError
from repro.core.state import NetworkState
from repro.timeexp.graph import Arc, ArcKind, TimeExpandedGraph
from repro.traffic.spec import TransferRequest

LinkSlot = Tuple[int, int, int]  # (src, dst, slot)


@dataclass
class DualBoundResult:
    """Outcome of the subgradient ascent."""

    #: The best (largest) certified lower bound found.
    lower_bound: float
    #: Dual value per iteration (non-monotone; best is tracked).
    trajectory: List[float]
    iterations: int


def shortest_path_over_time(
    graph: TimeExpandedGraph,
    request: TransferRequest,
    arc_weight,
) -> Tuple[float, List[Arc]]:
    """Cheapest source->sink route for one file by layered DP.

    ``arc_weight(arc) -> float`` prices each arc (holdover arcs are
    usually free).  Returns (cost per GB, arcs of the optimal path).
    Raises :class:`InfeasibleError` when the sink is unreachable inside
    the file's window.
    """
    first, last_exclusive = graph.request_window(request)
    source = (request.source, first)
    sink = (request.destination, last_exclusive)

    INF = float("inf")
    dist: Dict[Tuple[int, int], float] = {source: 0.0}
    parent: Dict[Tuple[int, int], Arc] = {}

    for layer in range(first, last_exclusive):
        for node_id in graph.topology.node_ids():
            node = (node_id, layer)
            here = dist.get(node, INF)
            if here == INF:
                continue
            for arc in graph.out_arcs(node):
                if arc.kind is ArcKind.TRANSIT and arc.capacity <= 0:
                    continue
                cost = here + float(arc_weight(arc))
                if cost < dist.get(arc.head, INF) - 1e-15:
                    dist[arc.head] = cost
                    parent[arc.head] = arc

    if sink not in dist:
        raise InfeasibleError(
            f"file {request.request_id} cannot reach its destination "
            f"within its window"
        )
    arcs: List[Arc] = []
    node = sink
    while node != source:
        arc = parent[node]
        arcs.append(arc)
        node = arc.tail
    arcs.reverse()
    return dist[sink], arcs


def dual_lower_bound(
    state: NetworkState,
    requests: List[TransferRequest],
    iterations: int = 150,
    step_scale: float = 1.0,
) -> DualBoundResult:
    """Projected-subgradient lower bound on the Sec. V optimum."""
    if not requests:
        raise SchedulingError("dual_lower_bound needs at least one request")
    if iterations < 1:
        raise SchedulingError("iterations must be >= 1")

    start = min(r.release_slot for r in requests)
    end = max(r.release_slot + r.deadline_slots for r in requests)
    graph = TimeExpandedGraph(
        state.topology,
        start_slot=start,
        horizon=end - start,
        capacity_fn=state.residual_capacity,
    )

    links = state.topology.links
    slots = list(graph.slots())
    n_slots = len(slots)
    slot_index = {slot: i for i, slot in enumerate(slots)}
    link_index = {link.key: i for i, link in enumerate(links)}
    prices = np.array([link.price for link in links])
    x_prev = np.array([state.charged_volume(*link.key) for link in links])
    caps = np.array(
        [
            [state.residual_capacity(link.src, link.dst, slot) for slot in slots]
            for link in links
        ]
    )
    committed = np.array(
        [
            [state.committed_volume(link.src, link.dst, slot) for slot in slots]
            for link in links
        ]
    )

    w = np.zeros((len(links), n_slots))
    lam = np.zeros((len(links), n_slots))

    def weight_fn(arc: Arc) -> float:
        if arc.kind is ArcKind.HOLDOVER:
            return 0.0
        li = link_index[arc.link_key]
        si = slot_index[arc.slot]
        return w[li, si] + lam[li, si]

    best = -float("inf")
    trajectory: List[float] = []

    for k in range(1, iterations + 1):
        # Inner minimization: per-file shortest path over time.
        load = np.zeros_like(w)
        inner_total = 0.0
        for request in requests:
            cost, arcs = shortest_path_over_time(graph, request, weight_fn)
            inner_total += cost * request.size_gb
            for arc in arcs:
                if arc.kind is ArcKind.TRANSIT:
                    load[link_index[arc.link_key], slot_index[arc.slot]] += (
                        request.size_gb
                    )

        residual_price = prices - w.sum(axis=1)  # >= 0 by projection
        dual_value = (
            inner_total
            + float(residual_price @ x_prev)
            + float((w * committed).sum())
            - float((lam * np.where(np.isfinite(caps), caps, 0.0)).sum())
        )
        trajectory.append(dual_value)
        best = max(best, dual_value)

        # Subgradients, with norm-normalized diminishing steps (the
        # classic convergent schedule gamma_k = c / (||g|| sqrt(k))):
        # raw loads can be orders of magnitude above the price scale,
        # and unnormalized steps just slam into the projection.
        g_w = load + committed - x_prev[:, None]
        g_lam = np.where(np.isfinite(caps), load - caps, 0.0)
        norm = float(np.sqrt((g_w ** 2).sum() + (g_lam ** 2).sum()))
        price_scale = float(prices.mean())
        step = step_scale * price_scale / (max(norm, 1e-12) * np.sqrt(k))

        w = w + step * g_w
        lam = np.maximum(0.0, lam + step * g_lam)

        # Project w onto {w >= 0, sum_n w_en <= a_e} (per link:
        # clip, then scale rows that exceed their price budget).
        w = np.maximum(0.0, w)
        row_sums = w.sum(axis=1)
        over = row_sums > prices
        if np.any(over):
            scale = np.ones_like(row_sums)
            scale[over] = prices[over] / row_sums[over]
            w = w * scale[:, None]

    return DualBoundResult(
        lower_bound=best, trajectory=trajectory, iterations=iterations
    )
