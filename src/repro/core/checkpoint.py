"""Checkpoint and restore a NetworkState.

Long experiments (paper-scale runs, multi-day operational simulations)
want to stop and resume; operators want end-of-day snapshots of the
billing state.  A checkpoint captures everything the online model
needs to continue: per-link-slot ledger volumes, charged volumes
``X_ij``, completions, rejections, storage accounting, and
charging-period bookkeeping.

Topology is *not* serialized — a checkpoint is only meaningful against
the network it was taken from, so restore requires the same topology
(checked by shape: node ids and link keys must match).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import SchedulingError
from repro.core.state import NetworkState
from repro.net.topology import Topology

PathLike = Union[str, Path]

_VERSION = 1
#: Version 2 added the ``checksum`` header field (CRC-32 over the
#: canonical body); version-1 snapshots (no checksum) still load.
_SNAPSHOT_VERSION = 2

#: Snapshot versions :func:`snapshot_from_json` accepts.
_SNAPSHOT_READABLE_VERSIONS = (1, 2)


def _payload_checksum(payload: Dict[str, Any]) -> int:
    """CRC-32 of a payload's canonical JSON form (checksum field aside)."""
    body = {k: v for k, v in payload.items() if k != "checksum"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


def fsync_directory(directory: PathLike) -> None:
    """fsync a directory so a rename inside it survives power loss."""
    fd = os.open(str(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write(
    path: PathLike,
    text: str,
    fsync: bool = True,
    crashpoint: Optional[Callable[[str], None]] = None,
) -> int:
    """Write ``text`` to ``path`` with the full durability dance.

    tmp file -> flush -> fsync(tmp) -> rename -> fsync(directory).
    A bare tmp-and-rename only survives *process* death; the two fsyncs
    are what make the rename survive power loss (the data must be on
    disk before the rename, and the rename itself lives in the
    directory inode).  ``crashpoint`` is the chaos harness's hook — a
    callable invoked with a stage name (``checkpoint.pre_write`` /
    ``pre_fsync`` / ``pre_rename`` / ``post_rename``) at each boundary
    a crash could land on.  Returns the number of bytes written.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    data = text.encode("utf-8")
    hit = crashpoint or (lambda stage: None)
    hit("checkpoint.pre_write")
    with open(tmp, "wb") as fh:
        fh.write(data)
        if fsync:
            fh.flush()
            hit("checkpoint.pre_fsync")
            os.fsync(fh.fileno())
    hit("checkpoint.pre_rename")
    os.replace(tmp, target)
    if fsync:
        fsync_directory(target.parent)
    hit("checkpoint.post_rename")
    return len(data)


def state_to_json(state: NetworkState) -> str:
    """Serialize the accounting of a NetworkState (not its topology)."""
    usage = {
        f"{src},{dst}": {
            str(slot): volume
            for slot, volume in state.ledger.usage(src, dst).volumes.items()
        }
        for src, dst in state.ledger.used_links()
    }
    payload = {
        "version": _VERSION,
        "kind": "postcard-state",
        "horizon": state.horizon,
        "node_ids": state.topology.node_ids(),
        "link_keys": sorted(f"{l.src},{l.dst}" for l in state.topology.links),
        "usage": usage,
        "charged": {
            f"{src},{dst}": volume
            for (src, dst), volume in state.charged_snapshot().items()
            if volume > 0
        },
        "completions": {str(k): v for k, v in state.completions.items()},
        "rejected": [
            {
                "source": r.source,
                "destination": r.destination,
                "size_gb": r.size_gb,
                "deadline_slots": r.deadline_slots,
                "release_slot": r.release_slot,
            }
            for r in state.rejected
        ],
        "storage_used": state.storage_used,
        "period_start": state.period_start,
        "banked_period_bills": list(state.banked_period_bills),
    }
    return json.dumps(payload, indent=1)


def state_from_json(text: str, topology: Topology) -> NetworkState:
    """Rebuild a NetworkState against ``topology``.

    Raises :class:`SchedulingError` when the checkpoint's network shape
    (node ids, link keys) does not match — restoring billing data onto
    a different overlay would silently corrupt every number downstream.
    Rejected files are restored as fresh :class:`TransferRequest`
    objects (ids are process-local).
    """
    from repro.traffic.spec import TransferRequest

    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SchedulingError(f"checkpoint is not valid JSON: {exc}") from exc
    if payload.get("kind") != "postcard-state":
        raise SchedulingError("not a postcard state checkpoint")
    if payload.get("version") != _VERSION:
        raise SchedulingError(
            f"unsupported checkpoint version {payload.get('version')!r}"
        )

    if payload["node_ids"] != topology.node_ids():
        raise SchedulingError("checkpoint node ids do not match this topology")
    expected_links = sorted(f"{l.src},{l.dst}" for l in topology.links)
    if payload["link_keys"] != expected_links:
        raise SchedulingError("checkpoint link set does not match this topology")

    state = NetworkState(topology, payload["horizon"])
    for key, slots in payload.get("usage", {}).items():
        src, dst = (int(part) for part in key.split(","))
        for slot, volume in slots.items():
            state.ledger.record(src, dst, int(slot), float(volume))
    for key, volume in payload.get("charged", {}).items():
        src, dst = (int(part) for part in key.split(","))
        state._charged[(src, dst)] = float(volume)
    state.completions = {
        int(k): int(v) for k, v in payload.get("completions", {}).items()
    }
    state.rejected = [
        TransferRequest(
            source=int(row["source"]),
            destination=int(row["destination"]),
            size_gb=float(row["size_gb"]),
            deadline_slots=int(row["deadline_slots"]),
            release_slot=int(row["release_slot"]),
        )
        for row in payload.get("rejected", [])
    ]
    state.storage_used = float(payload.get("storage_used", 0.0))
    state.period_start = int(payload.get("period_start", 0))
    state.banked_period_bills = [
        float(v) for v in payload.get("banked_period_bills", [])
    ]
    return state


def save_state(state: NetworkState, path: PathLike) -> None:
    """Write a checkpoint file."""
    Path(path).write_text(state_to_json(state))


def load_state(path: PathLike, topology: Topology) -> NetworkState:
    """Read a checkpoint file back against the same topology."""
    return state_from_json(Path(path).read_text(), topology)


# -- service snapshots -----------------------------------------------------
#
# A long-running daemon needs more than the NetworkState to resume after
# a crash: the requests that were accepted but not yet batched into a
# slot, the next virtual slot index, and the request-id watermark (ids
# are process-local; a restored process must not reuse ids that key the
# snapshot's completions).  A *snapshot* wraps a state checkpoint with
# exactly that, leaving the pending-entry schema to the caller (the
# service encodes its own client ids and enqueue metadata there).


@dataclass
class ServiceSnapshot:
    """A restored daemon snapshot: state + queue + clock + caller data."""

    state: NetworkState
    #: Opaque pending-queue entries, exactly as the writer passed them.
    pending: List[Dict[str, Any]] = field(default_factory=list)
    #: Next virtual slot the daemon should process.
    next_slot: int = 0
    #: Caller-owned metadata (the service keeps its decision log here).
    meta: Dict[str, Any] = field(default_factory=dict)


def snapshot_to_json(
    state: NetworkState,
    pending: Optional[List[Dict[str, Any]]] = None,
    next_slot: int = 0,
    meta: Optional[Dict[str, Any]] = None,
) -> str:
    """Serialize a daemon snapshot (state + pending queue + clock).

    ``pending`` entries must be JSON-serializable dicts; they round-trip
    verbatim.  The current process's request-id watermark is captured so
    :func:`snapshot_from_json` can keep restored and future ids disjoint.
    """
    from repro.traffic.spec import peek_next_request_id

    payload = {
        "version": _SNAPSHOT_VERSION,
        "kind": "postcard-snapshot",
        "state": json.loads(state_to_json(state)),
        "pending": list(pending or []),
        "next_slot": int(next_slot),
        "request_id_watermark": peek_next_request_id(),
        "meta": dict(meta or {}),
    }
    payload["checksum"] = _payload_checksum(payload)
    return json.dumps(payload, indent=1)


def snapshot_from_json(text: str, topology: Topology) -> ServiceSnapshot:
    """Rebuild a :class:`ServiceSnapshot` against ``topology``.

    Restores the embedded NetworkState (with the same shape checks as
    :func:`state_from_json`) and advances the process-local request-id
    counter past the snapshot's watermark, so requests created after the
    restore never collide with completions restored from before it.
    """
    from repro.traffic.spec import ensure_request_ids_above

    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SchedulingError(f"snapshot is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("kind") != "postcard-snapshot":
        raise SchedulingError("not a postcard service snapshot")
    version = payload.get("version")
    if version not in _SNAPSHOT_READABLE_VERSIONS:
        raise SchedulingError(
            f"unsupported snapshot version {version!r} "
            f"(this build reads versions {_SNAPSHOT_READABLE_VERSIONS})"
        )
    if version >= 2:
        recorded = payload.get("checksum")
        expected = _payload_checksum(payload)
        if recorded != expected:
            raise SchedulingError(
                f"snapshot checksum mismatch (recorded {recorded!r}, "
                f"computed {expected}): the file is corrupt or was "
                "hand-edited; recovery should fall back a generation"
            )
    state = state_from_json(json.dumps(payload["state"]), topology)
    ensure_request_ids_above(int(payload.get("request_id_watermark", 0)))
    return ServiceSnapshot(
        state=state,
        pending=list(payload.get("pending", [])),
        next_slot=int(payload.get("next_slot", 0)),
        meta=dict(payload.get("meta", {})),
    )


def save_snapshot(
    state: NetworkState,
    path: PathLike,
    pending: Optional[List[Dict[str, Any]]] = None,
    next_slot: int = 0,
    meta: Optional[Dict[str, Any]] = None,
    fsync: bool = True,
    crashpoint: Optional[Callable[[str], None]] = None,
) -> int:
    """Write a daemon snapshot atomically and durably.

    Atomicity (tmp file + rename) is what makes the crash-recovery
    story honest: a daemon killed mid-write leaves either the previous
    snapshot or the new one, never a torn file.  Durability (fsync of
    the tmp file before the rename, fsync of the directory after) is
    what extends that from process death to power loss.  Returns the
    number of bytes written (the durability benchmark's raw metric).
    """
    return atomic_write(
        path,
        snapshot_to_json(state, pending, next_slot, meta),
        fsync=fsync,
        crashpoint=crashpoint,
    )


def load_snapshot(path: PathLike, topology: Topology) -> ServiceSnapshot:
    """Read a daemon snapshot back against the same topology."""
    return snapshot_from_json(Path(path).read_text(), topology)
