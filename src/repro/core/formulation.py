"""The Postcard LP on the time-expanded graph (Sec. V, problem (6)-(10)).

Variables ``M[k, arc]`` give the GB of file ``k`` carried by each
admissible arc of the time-expanded graph.  Charged volumes ``X_ij``
enter through the epigraph transform: minimizing
``sum(a_ij * X_ij)`` subject to ``X_ij >= X_ij(t-1)`` and, for every
slot ``n``, ``X_ij >= B_ij(n) + sum_k M[k, (i,j,n)]``, where ``B_ij(n)``
is traffic already committed by earlier online rounds.  With
``B == 0`` this is exactly the paper's
``X_ij(t) = max{X_ij(t-1), max_n sum_k M_ij^k(n)}``; with in-flight
traffic it is the strictly more accurate form (see DESIGN.md).

Two assembly paths build the same model:

* ``"legacy"`` constructs every row through the ``LinExpr`` operator
  algebra — readable, obviously faithful to the math, and kept as the
  executable reference.
* ``"fast"`` builds the coefficient dictionaries of each row directly,
  skipping operator dispatch, expression copies and ``Arc`` hashing.
  It performs float-identical arithmetic in the same order, so the
  resulting model compiles to the same matrices bit for bit — a claim
  pinned by ``tests/test_compile_equivalence.py``.

The whole assembly (including time-expanded-graph construction) runs
under the ``lp.build`` observability span, the counterpart of the
backends' ``lp.solve`` span.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import repeat
from typing import Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.core.schedule import ScheduleEntry, TransferSchedule
from repro.core.state import NetworkState
from repro.lp import LinExpr, Model, Solution, Variable
from repro.lp.constraint import Constraint, Sense
from repro.obs import registry as obs
from repro.timeexp.cache import GraphCache
from repro.timeexp.graph import Arc, ArcKind, TimeExpandedGraph
from repro.traffic.spec import TransferRequest
from repro.units import VOLUME_ATOL

#: Storage policies for :func:`build_postcard_model`.
STORAGE_FULL = "full"
STORAGE_DESTINATION_ONLY = "destination_only"

#: Stride for the fast assembler's packed ``node * stride + slot``
#: balance keys; bounds the representable horizon (slots per problem).
_NODE_KEY = 1 << 21

#: Assembly paths for :func:`build_postcard_model`.
ASSEMBLY_MODES = ("legacy", "fast")


class PostcardModel:
    """A built (not yet solved) Postcard LP plus its variable maps."""

    def __init__(
        self,
        model: Model,
        graph: TimeExpandedGraph,
        requests: List[TransferRequest],
        flow_vars,
        charge_vars: Dict[Tuple[int, int], Variable],
        fixed_charge_cost: float,
        capacity_rows=None,
    ):
        self.model = model
        self.graph = graph
        self.requests = requests
        # ``flow_vars`` arrives either as the {(rid, arc): var} dict (the
        # reference assembler) or as a flat [(rid, arc, var), ...] list
        # (the fast assembler, which skips hashing Arc objects in its
        # hot loop).  The dict view is materialized on first access.
        if isinstance(flow_vars, dict):
            self._flow_items = [
                (rid, arc, var) for (rid, arc), var in flow_vars.items()
            ]
            self._flow_vars: Optional[Dict[Tuple[int, Arc], Variable]] = flow_vars
        else:
            self._flow_items = flow_vars
            self._flow_vars = None
        self.charge_vars = charge_vars
        #: sum(a_ij * X_ij(t-1)) over links the new files cannot touch;
        #: a constant added to the objective so it reports the full
        #: network-wide cost per slot.
        self.fixed_charge_cost = fixed_charge_cost
        #: (src, dst, slot) -> the capacity Constraint, for shadow prices.
        self.capacity_rows: Dict[Tuple[int, int, int], object] = capacity_rows or {}

    @property
    def flow_vars(self) -> Dict[Tuple[int, Arc], Variable]:
        """Per-(request, arc) flow variables, keyed for external lookups."""
        if self._flow_vars is None:
            self._flow_vars = {
                (rid, arc): var for rid, arc, var in self._flow_items
            }
        return self._flow_vars

    def solve(self, backend: str = "highs", **options) -> Tuple[TransferSchedule, Solution]:
        """Optimize and extract the store-and-forward schedule."""
        solution = self.model.solve(backend=backend, **options)
        entries = []
        for request_id, arc, var in self._flow_items:
            volume = solution.value(var)
            if volume > VOLUME_ATOL:
                entries.append(
                    ScheduleEntry(
                        request_id=request_id,
                        src=arc.src,
                        dst=arc.dst,
                        slot=arc.slot,
                        volume=volume,
                        kind=arc.kind,
                    )
                )
        return TransferSchedule(entries), solution

    def charged_volumes(self, solution: Solution) -> Dict[Tuple[int, int], float]:
        """Optimal X_ij for the links the model optimizes over."""
        return {key: solution.value(var) for key, var in self.charge_vars.items()}

    def congestion_prices(self, solution: Solution) -> Dict[Tuple[int, int, int], float]:
        """Shadow price of each binding capacity row, in $/GB.

        The dual of the capacity constraint on (src, dst, slot) is the
        marginal saving one extra GB/slot of capacity there would buy —
        the LP-theoretic answer to "which link should we upgrade?".
        Only links whose price is positive appear; zero-price entries
        are filtered.  Requires the HiGHS backend (duals).
        """
        prices = {}
        for key, constraint in self.capacity_rows.items():
            dual = solution.dual(constraint)
            # A <=-row dual in a minimization is <= 0: relaxing the
            # capacity lowers cost.  Report the positive saving.
            if dual < -1e-9:
                prices[key] = -dual
        return prices


def build_postcard_model(
    state: NetworkState,
    requests: List[TransferRequest],
    storage: str = STORAGE_FULL,
    name: str = "postcard",
    storage_capacity: float = float("inf"),
    storage_price: float = 0.0,
    cost_fn_factory=None,
    charge_exempt=None,
    charged_volume_fn=None,
    predicted_volume_fn=None,
    graph: Optional[TimeExpandedGraph] = None,
    graph_cache: Optional[GraphCache] = None,
    assembly: str = "legacy",
) -> PostcardModel:
    """Assemble the Sec. V LP for the files released at the current slot.

    Parameters
    ----------
    state:
        Online state providing residual capacities, committed per-slot
        volumes ``B_ij(n)`` and charged volumes ``X_ij(t-1)``.
    requests:
        The slot's released files ``K(t)`` (mixed release slots are
        allowed; the graph spans all their windows).
    storage:
        ``"full"`` (the paper) allows holdover at any datacenter;
        ``"destination_only"`` disables intermediate/source storage so
        data must keep moving — the ablation quantifying what
        store-and-forward itself contributes.
    storage_capacity:
        GB of buffer available per datacenter per slot for in-transit
        data.  The paper assumes infinite (datacenter disk dwarfs WAN
        bandwidth); finite values study the capacitated variant.  Data
        already at its own destination is delivered and never counts.
    storage_price:
        Dollars per GB-slot of intermediate buffering.  The paper
        assumes zero; a positive price makes the optimizer trade
        storage against transit peaks.  Billed per use, not per peak
        (disk is metered, unlike percentile-billed WAN links).
    cost_fn_factory:
        Optional ``factory(link) -> CostFunction`` replacing the
        default linear ``a_ij * X_ij`` term of each link.  Piece-wise
        linear functions must be convex (epigraph representation).
    charge_exempt:
        Optional predicate ``(src, dst, slot) -> bool``; link-slots for
        which it returns True get no charge row — their traffic is
        assumed to land in the free top percentile of a q < 100
        charging scheme (see
        :class:`repro.extensions.percentile.PercentileAwareScheduler`).
    charged_volume_fn:
        Optional override for ``X_ij(t-1)``; percentile-aware callers
        pass the charged volume *excluding* amnestied burst slots.
    predicted_volume_fn:
        Optional ``(src, dst, slot) -> GB`` of *forecast* background
        traffic added to the committed volume in each charge row (see
        :mod:`repro.forecast`).  The LP then treats predicted-busy
        cells as already lifting the watermark, steering paid traffic
        toward predicted-quiet slots.  Capacity rows are untouched —
        forecasts shape cost, never feasibility or admission.
    graph:
        Optional pre-built :class:`TimeExpandedGraph` covering exactly
        the requests' window (validated); saves rebuilding it.
    graph_cache:
        Optional :class:`~repro.timeexp.cache.GraphCache` used to build
        the graph incrementally from the previous slot's arcs.  Ignored
        when ``graph`` is given.
    assembly:
        ``"legacy"`` (operator algebra, the reference) or ``"fast"``
        (direct coefficient construction); the two produce bit-identical
        compiled problems.
    """
    if not requests:
        raise SchedulingError("build_postcard_model needs at least one request")
    if storage not in (STORAGE_FULL, STORAGE_DESTINATION_ONLY):
        raise SchedulingError(f"unknown storage policy {storage!r}")
    if storage_capacity < 0:
        raise SchedulingError("storage_capacity must be non-negative")
    if storage_price < 0:
        raise SchedulingError("storage_price must be non-negative")
    if assembly not in ASSEMBLY_MODES:
        raise SchedulingError(
            f"unknown assembly mode {assembly!r}; available: "
            + ", ".join(ASSEMBLY_MODES)
        )

    with obs.span("lp.build", assembly=assembly, requests=len(requests)):
        start = min(r.release_slot for r in requests)
        end = max(r.release_slot + r.deadline_slots for r in requests)
        if graph is not None:
            if graph.start_slot != start or graph.end_slot != end:
                raise SchedulingError(
                    f"provided graph spans slots [{graph.start_slot}, "
                    f"{graph.end_slot}) but the requests need [{start}, {end})"
                )
        elif graph_cache is not None:
            graph = graph_cache.build(
                start, end - start, capacity_fn=state.residual_capacity
            )
        else:
            graph = TimeExpandedGraph(
                state.topology,
                start_slot=start,
                horizon=end - start,
                capacity_fn=state.residual_capacity,
            )

        assemble = _assemble_fast if assembly == "fast" else _assemble_legacy
        return assemble(
            state,
            graph,
            requests,
            storage=storage,
            name=name,
            storage_capacity=storage_capacity,
            storage_price=storage_price,
            cost_fn_factory=cost_fn_factory,
            charge_exempt=charge_exempt,
            charged_volume_fn=charged_volume_fn,
            predicted_volume_fn=predicted_volume_fn,
        )


def _assemble_legacy(
    state: NetworkState,
    graph: TimeExpandedGraph,
    requests: List[TransferRequest],
    storage: str,
    name: str,
    storage_capacity: float,
    storage_price: float,
    cost_fn_factory,
    charge_exempt,
    charged_volume_fn,
    predicted_volume_fn,
) -> PostcardModel:
    """Operator-algebra assembly — the executable reference."""
    model = Model(name)
    flow_vars: Dict[Tuple[int, Arc], Variable] = {}
    #: per transit (link, slot): list of vars crossing it (for capacity
    #: and charge rows)
    arc_users: Dict[Arc, List[Variable]] = defaultdict(list)
    #: per holdover arc: vars of files *in transit* stored there (a
    #: file buffered at its own destination is delivered, not stored)
    storage_users: Dict[Arc, List[Variable]] = defaultdict(list)

    for request in requests:
        rid = request.request_id
        arcs = graph.arcs_for_request(request)
        if storage == STORAGE_DESTINATION_ONLY:
            arcs = [
                a
                for a in arcs
                if a.kind is ArcKind.TRANSIT or a.src == request.destination
            ]
        # Node balance built incrementally: +1 on out-arcs, -1 on in-arcs.
        balance: Dict[Tuple[int, int], List[Tuple[float, Variable]]] = defaultdict(list)
        for arc in arcs:
            if arc.kind is ArcKind.TRANSIT and arc.capacity <= 0:
                continue  # fully committed link-slot: no variable at all
            var = model.add_variable(f"M[{rid},{arc.src},{arc.dst},{arc.slot}]")
            flow_vars[(rid, arc)] = var
            if arc.kind is ArcKind.TRANSIT:
                arc_users[arc].append(var)
            elif arc.src != request.destination:
                storage_users[arc].append(var)
            balance[arc.tail].append((1.0, var))
            balance[arc.head].append((-1.0, var))

        source = graph.source_node(request)
        sink = graph.sink_node(request)
        if source not in balance:
            raise SchedulingError(
                f"file {rid}: no admissible arc leaves its source; "
                "the problem is trivially infeasible"
            )
        for node, terms in balance.items():
            net = LinExpr.from_terms(terms)
            if node == source:
                model.add_constraint(net == request.size_gb, name=f"src[{rid}]")
            elif node == sink:
                model.add_constraint(net == -request.size_gb, name=f"snk[{rid}]")
            else:
                model.add_constraint(
                    net == 0.0, name=f"cons[{rid},{node[0]},{node[1]}]"
                )

    # Capacity rows: aggregate new traffic within residual capacity.
    capacity_rows: Dict[Tuple[int, int, int], object] = {}
    for arc, users in arc_users.items():
        if arc.capacity != float("inf"):
            capacity_rows[(arc.src, arc.dst, arc.slot)] = model.add_constraint(
                LinExpr.sum(users) <= arc.capacity,
                name=f"cap[{arc.src},{arc.dst},{arc.slot}]",
            )

    # Storage rows: per-datacenter buffer capacity for in-transit data.
    if storage_capacity != float("inf"):
        for arc, users in storage_users.items():
            model.add_constraint(
                LinExpr.sum(users) <= storage_capacity,
                name=f"store[{arc.src},{arc.slot}]",
            )

    # Charge rows: one X_ij per overlay link that new traffic can use.
    by_link: Dict[Tuple[int, int], Dict[int, List[Variable]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for arc, users in arc_users.items():
        by_link[arc.link_key][arc.slot].extend(users)

    charge_vars: Dict[Tuple[int, int], Variable] = {}
    objective_terms: List[Tuple[float, Variable]] = []
    fixed_cost = 0.0
    for link in state.topology.links:
        key = link.key
        prior = (
            charged_volume_fn(*key)
            if charged_volume_fn is not None
            else state.charged_volume(*key)
        )
        cost_fn = cost_fn_factory(link) if cost_fn_factory else None
        if key not in by_link:
            fixed_cost += cost_fn(prior) if cost_fn else link.price * prior
            continue
        x = model.add_variable(f"X[{key[0]},{key[1]}]", lb=prior)
        charge_vars[key] = x
        for slot, users in by_link[key].items():
            if charge_exempt is not None and charge_exempt(key[0], key[1], slot):
                continue
            committed = state.committed_volume(key[0], key[1], slot)
            if predicted_volume_fn is not None:
                committed += predicted_volume_fn(key[0], key[1], slot)
            model.add_constraint(
                x >= LinExpr.sum(users) + committed,
                name=f"chg[{key[0]},{key[1]},{slot}]",
            )
        if cost_fn is None:
            objective_terms.append((link.price, x))
        else:
            objective_terms.append(
                (1.0, _link_cost_variable(model, key, x, cost_fn))
            )

    # Metered storage cost: price per GB-slot of in-transit buffering.
    storage_terms: List[Tuple[float, Variable]] = []
    if storage_price > 0.0:
        for users in storage_users.values():
            storage_terms.extend((storage_price, var) for var in users)

    model.minimize(
        LinExpr.from_terms(objective_terms + storage_terms, constant=fixed_cost)
    )

    return PostcardModel(
        model, graph, list(requests), flow_vars, charge_vars, fixed_cost,
        capacity_rows=capacity_rows,
    )


def _lin(coeffs: Dict[int, float], constant: float, model_id: int) -> LinExpr:
    """A LinExpr adopting ``coeffs`` without the constructor's copy.

    Only for freshly-built dictionaries that no other code aliases.
    """
    expr = LinExpr.__new__(LinExpr)
    expr.coeffs = coeffs
    expr.constant = constant
    expr._model_id = model_id
    return expr


def _assemble_fast(
    state: NetworkState,
    graph: TimeExpandedGraph,
    requests: List[TransferRequest],
    storage: str,
    name: str,
    storage_capacity: float,
    storage_price: float,
    cost_fn_factory,
    charge_exempt,
    charged_volume_fn,
    predicted_volume_fn,
) -> PostcardModel:
    """Direct-construction assembly, float-identical to the reference.

    Mirrors :func:`_assemble_legacy` row for row but writes each row's
    coefficient dictionary directly instead of going through the
    ``LinExpr`` operators: every coefficient is the exact float the
    operator chain would have produced (``1.0``, ``-1.0``, or a negated
    constant), in the same insertion order, so the compiled matrices are
    interchangeable bit for bit.  Arc grouping keys on ``id(arc)``
    (arc objects are unique within a graph) to avoid hashing frozen
    dataclasses in the hot loop.
    """
    model = Model(name)
    mid = model._id
    variables = model.variables
    constraints = model.constraints
    inf = float("inf")

    flow_items: List[Tuple[int, Arc, Variable]] = []
    #: id(arc) -> (arc, vars crossing it); insertion order matches the
    #: legacy Arc-keyed dicts because each arc object is first seen at
    #: the same point of the same iteration.
    arc_users: Dict[int, Tuple[Arc, List[Variable]]] = {}
    storage_users: Dict[int, Tuple[Arc, List[Variable]]] = {}

    # Hot-loop locals: every name below is touched once per (request,
    # arc) pair, so attribute/global lookups would dominate.
    by_slot = graph._by_slot
    transit_kind = ArcKind.TRANSIT
    make_var = Variable
    add_var = variables.append
    add_flow = flow_items.append
    get_arc_entry = arc_users.get
    get_store_entry = storage_users.get
    dest_only = storage == STORAGE_DESTINATION_ONLY
    nvar = len(variables)
    #: Balance rows key on ``node_id * _NODE_KEY + slot`` instead of
    #: ``(node_id, slot)`` tuples — integer keys hash in one machine op
    #: and skip ~2 tuple allocations per arc in the hottest loop.
    #: Node ids are non-negative ints (Topology invariant) and slots
    #: stay far below the stride, so the encoding is collision-free.
    stride = _NODE_KEY

    #: Request windows overlap heavily, so everything that depends only
    #: on the (slot, arc) pair — attribute reads, the committed-capacity
    #: filter, the formatted name suffix — is computed once per slot and
    #: replayed per request as plain tuple unpacking.  Filtering at prep
    #: time preserves the legacy per-arc iteration order exactly.  The
    #: dict lives on the graph: for GraphCache-built graphs it is the
    #: cache's persistent store, so slots whose arc lists were reused
    #: unchanged keep their prepared tuples across consecutive builds.
    prepared = graph.assembly_prep

    def _prep(slot: int) -> list:
        entries = []
        for arc in by_slot.get(slot, ()):
            transit = arc.kind is transit_kind
            if transit and arc.capacity <= 0:
                continue  # fully committed link-slot: no variable
            src, dst = arc.src, arc.dst
            entries.append(
                (transit, src, dst, f"{src},{dst},{slot}]", arc, id(arc))
            )
        prepared[slot] = entries
        return entries

    def _emit_request_rows(request, rid, first, last_exclusive, balance):
        """Source/sink/conservation rows from an assembled balance map."""
        source = request.source * stride + first
        sink = request.destination * stride + last_exclusive
        if source not in balance:
            raise SchedulingError(
                f"file {rid}: no admissible arc leaves its source; "
                "the problem is trivially infeasible"
            )
        size = float(request.size_gb)
        for node, coeffs in balance.items():
            if node == source:
                con = Constraint(_lin(coeffs, -size, mid), Sense.EQ, f"src[{rid}]")
            elif node == sink:
                con = Constraint(_lin(coeffs, size, mid), Sense.EQ, f"snk[{rid}]")
            else:
                con = Constraint(
                    _lin(coeffs, 0.0, mid), Sense.EQ,
                    f"cons[{rid},{node // stride},{node % stride}]",
                )
            constraints.append(con)

    if not dest_only:
        # STORAGE_FULL admits every prepared arc, so a whole window's
        # structure — name suffixes, arc order, balance-row template —
        # is a pure function of (first, last): build it once per window
        # and replay it per request with C-speed comprehensions.  Every
        # produced object matches the per-pair loop below element for
        # element (same offsets, same insertion orders).
        window_cache: Dict[Tuple[int, int], tuple] = {}

        def _window_template(first: int, last: int) -> tuple:
            suffixes: List[str] = []
            arcs: List[Arc] = []
            transit_offs: List[Tuple[int, Arc, int]] = []
            storage_offs: List[Tuple[int, Arc, int, int]] = []
            rows: Dict[int, List[Tuple[int, float]]] = {}
            off = 0
            for slot in range(first, last):
                entries = prepared.get(slot)
                if entries is None:
                    entries = _prep(slot)
                for transit, src, dst, suffix, arc, aid in entries:
                    suffixes.append(suffix)
                    arcs.append(arc)
                    if transit:
                        transit_offs.append((off, arc, aid))
                    else:
                        storage_offs.append((off, arc, aid, src))
                    tail = src * stride + slot
                    head = dst * stride + slot + 1
                    lst = rows.get(tail)
                    if lst is None:
                        rows[tail] = [(off, 1.0)]
                    else:
                        lst.append((off, 1.0))
                    lst = rows.get(head)
                    if lst is None:
                        rows[head] = [(off, -1.0)]
                    else:
                        lst.append((off, -1.0))
                    off += 1
            tmpl = (suffixes, arcs, transit_offs, storage_offs, list(rows.items()))
            window_cache[(first, last)] = tmpl
            return tmpl

        for request in requests:
            rid = request.request_id
            destination = request.destination
            first, last_exclusive = graph.request_window(request)
            tmpl = window_cache.get((first, last_exclusive))
            if tmpl is None:
                tmpl = _window_template(first, last_exclusive)
            suffixes, arcs, transit_offs, storage_offs, row_items = tmpl

            base = nvar
            prefix = f"M[{rid},"
            new_vars = [
                make_var(prefix + suffix, base + off, 0.0, inf, mid)
                for off, suffix in enumerate(suffixes)
            ]
            nvar = base + len(new_vars)
            variables.extend(new_vars)
            flow_items.extend(zip(repeat(rid), arcs, new_vars))

            for off, arc, aid in transit_offs:
                var = new_vars[off]
                entry = get_arc_entry(aid)
                if entry is None:
                    arc_users[aid] = (arc, [var])
                else:
                    entry[1].append(var)
            for off, arc, aid, src in storage_offs:
                if src == destination:
                    continue
                var = new_vars[off]
                entry = get_store_entry(aid)
                if entry is None:
                    storage_users[aid] = (arc, [var])
                else:
                    entry[1].append(var)

            balance = {
                key: {base + off: coef for off, coef in pairs}
                for key, pairs in row_items
            }
            _emit_request_rows(request, rid, first, last_exclusive, balance)
    else:
        for request in requests:
            rid = request.request_id
            destination = request.destination
            first, last_exclusive = graph.request_window(request)
            prefix = f"M[{rid},"
            balance: Dict[int, Dict[int, float]] = {}
            for slot in range(first, last_exclusive):
                entries = prepared.get(slot)
                if entries is None:
                    entries = _prep(slot)
                for transit, src, dst, suffix, arc, aid in entries:
                    if not transit and src != destination:
                        continue  # destination_only: no relay buffering
                    index = nvar
                    nvar = index + 1
                    var = make_var(prefix + suffix, index, 0.0, inf, mid)
                    add_var(var)
                    add_flow((rid, arc, var))
                    if transit:
                        entry = get_arc_entry(aid)
                        if entry is None:
                            arc_users[aid] = (arc, [var])
                        else:
                            entry[1].append(var)
                    elif src != destination:
                        entry = get_store_entry(aid)
                        if entry is None:
                            storage_users[aid] = (arc, [var])
                        else:
                            entry[1].append(var)
                    tail = src * stride + slot
                    head = dst * stride + slot + 1
                    row = balance.get(tail)
                    if row is None:
                        balance[tail] = {index: 1.0}
                    else:
                        row[index] = 1.0
                    row = balance.get(head)
                    if row is None:
                        balance[head] = {index: -1.0}
                    else:
                        row[index] = -1.0

            _emit_request_rows(request, rid, first, last_exclusive, balance)

    # Capacity rows: aggregate new traffic within residual capacity.
    capacity_rows: Dict[Tuple[int, int, int], object] = {}
    for arc, users in arc_users.values():
        if arc.capacity != inf:
            con = Constraint(
                _lin({var.index: 1.0 for var in users}, -float(arc.capacity), mid),
                Sense.LE,
                f"cap[{arc.src},{arc.dst},{arc.slot}]",
            )
            constraints.append(con)
            capacity_rows[(arc.src, arc.dst, arc.slot)] = con

    # Storage rows: per-datacenter buffer capacity for in-transit data.
    if storage_capacity != inf:
        for arc, users in storage_users.values():
            constraints.append(
                Constraint(
                    _lin({var.index: 1.0 for var in users},
                         -float(storage_capacity), mid),
                    Sense.LE,
                    f"store[{arc.src},{arc.slot}]",
                )
            )

    # Charge rows: one X_ij per overlay link that new traffic can use.
    by_link: Dict[Tuple[int, int], Dict[int, List[Variable]]] = {}
    for arc, users in arc_users.values():
        slots = by_link.get(arc.link_key)
        if slots is None:
            slots = by_link[arc.link_key] = {}
        slot_users = slots.get(arc.slot)
        if slot_users is None:
            slots[arc.slot] = list(users)
        else:
            slot_users.extend(users)

    charge_vars: Dict[Tuple[int, int], Variable] = {}
    objective_terms: List[Tuple[float, Variable]] = []
    fixed_cost = 0.0
    for link in state.topology.links:
        key = link.key
        prior = (
            charged_volume_fn(*key)
            if charged_volume_fn is not None
            else state.charged_volume(*key)
        )
        cost_fn = cost_fn_factory(link) if cost_fn_factory else None
        if key not in by_link:
            fixed_cost += cost_fn(prior) if cost_fn else link.price * prior
            continue
        index = len(variables)
        x = Variable(f"X[{key[0]},{key[1]}]", index, float(prior), inf, mid)
        variables.append(x)
        charge_vars[key] = x
        # One volumes-map fetch per link instead of one ledger call per
        # row; ``volumes.get(slot, 0.0)`` is exactly committed_volume().
        committed_map = state.ledger.usage(key[0], key[1]).volumes
        for slot, users in by_link[key].items():
            if charge_exempt is not None and charge_exempt(key[0], key[1], slot):
                continue
            committed = committed_map.get(slot, 0.0)
            if predicted_volume_fn is not None:
                committed += predicted_volume_fn(key[0], key[1], slot)
            coeffs = {index: 1.0}
            for var in users:
                coeffs[var.index] = -1.0
            constraints.append(
                Constraint(
                    _lin(coeffs, -float(committed), mid),
                    Sense.GE,
                    f"chg[{key[0]},{key[1]},{slot}]",
                )
            )
        if cost_fn is None:
            objective_terms.append((link.price, x))
        else:
            objective_terms.append(
                (1.0, _link_cost_variable(model, key, x, cost_fn))
            )

    # Metered storage cost: price per GB-slot of in-transit buffering.
    storage_terms: List[Tuple[float, Variable]] = []
    if storage_price > 0.0:
        for _arc, users in storage_users.values():
            storage_terms.extend((storage_price, var) for var in users)

    model.minimize(
        LinExpr.from_terms(objective_terms + storage_terms, constant=fixed_cost)
    )

    return PostcardModel(
        model,
        graph,
        list(requests),
        flow_items,
        charge_vars,
        fixed_cost,
        capacity_rows=capacity_rows,
    )


def _link_cost_variable(model: Model, key, x: Variable, cost_fn) -> Variable:
    """Epigraph variable for a (convex) cost of one link's charge.

    ``LinearCost`` lowers to ``c == price * X``; a convex
    :class:`~repro.charging.costfunc.PiecewiseLinearCost` lowers to one
    ``c >= slope * X + intercept`` row per segment.  Concave functions
    (volume discounts) cannot be minimized this way and are rejected.
    """
    from repro.charging.costfunc import LinearCost, PiecewiseLinearCost

    c = model.add_variable(f"C[{key[0]},{key[1]}]", lb=None)
    if isinstance(cost_fn, LinearCost):
        model.add_constraint(c >= cost_fn.price * x, name=f"cost[{key}]")
        return c
    if isinstance(cost_fn, PiecewiseLinearCost):
        if not cost_fn.is_convex:
            raise SchedulingError(
                f"cost function for link {key} is not convex; the epigraph "
                "objective cannot represent volume discounts"
            )
        model.add_constraint(c >= 0.0, name=f"cost0[{key}]")
        for i, (slope, intercept) in enumerate(cost_fn.segments()):
            model.add_constraint(
                c >= slope * x + intercept, name=f"cost[{key},{i}]"
            )
        return c
    raise SchedulingError(
        f"unsupported cost function type {type(cost_fn).__name__} for the "
        "LP objective (use LinearCost or a convex PiecewiseLinearCost)"
    )
