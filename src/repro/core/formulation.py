"""The Postcard LP on the time-expanded graph (Sec. V, problem (6)-(10)).

Variables ``M[k, arc]`` give the GB of file ``k`` carried by each
admissible arc of the time-expanded graph.  Charged volumes ``X_ij``
enter through the epigraph transform: minimizing
``sum(a_ij * X_ij)`` subject to ``X_ij >= X_ij(t-1)`` and, for every
slot ``n``, ``X_ij >= B_ij(n) + sum_k M[k, (i,j,n)]``, where ``B_ij(n)``
is traffic already committed by earlier online rounds.  With
``B == 0`` this is exactly the paper's
``X_ij(t) = max{X_ij(t-1), max_n sum_k M_ij^k(n)}``; with in-flight
traffic it is the strictly more accurate form (see DESIGN.md).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.core.schedule import ScheduleEntry, TransferSchedule
from repro.core.state import NetworkState
from repro.lp import LinExpr, Model, Solution, Variable
from repro.timeexp.graph import Arc, ArcKind, TimeExpandedGraph
from repro.traffic.spec import TransferRequest
from repro.units import VOLUME_ATOL

#: Storage policies for :func:`build_postcard_model`.
STORAGE_FULL = "full"
STORAGE_DESTINATION_ONLY = "destination_only"


class PostcardModel:
    """A built (not yet solved) Postcard LP plus its variable maps."""

    def __init__(
        self,
        model: Model,
        graph: TimeExpandedGraph,
        requests: List[TransferRequest],
        flow_vars: Dict[Tuple[int, Arc], Variable],
        charge_vars: Dict[Tuple[int, int], Variable],
        fixed_charge_cost: float,
        capacity_rows=None,
    ):
        self.model = model
        self.graph = graph
        self.requests = requests
        self.flow_vars = flow_vars
        self.charge_vars = charge_vars
        #: sum(a_ij * X_ij(t-1)) over links the new files cannot touch;
        #: a constant added to the objective so it reports the full
        #: network-wide cost per slot.
        self.fixed_charge_cost = fixed_charge_cost
        #: (src, dst, slot) -> the capacity Constraint, for shadow prices.
        self.capacity_rows: Dict[Tuple[int, int, int], object] = capacity_rows or {}

    def solve(self, backend: str = "highs", **options) -> Tuple[TransferSchedule, Solution]:
        """Optimize and extract the store-and-forward schedule."""
        solution = self.model.solve(backend=backend, **options)
        entries = []
        for (request_id, arc), var in self.flow_vars.items():
            volume = solution.value(var)
            if volume > VOLUME_ATOL:
                entries.append(
                    ScheduleEntry(
                        request_id=request_id,
                        src=arc.src,
                        dst=arc.dst,
                        slot=arc.slot,
                        volume=volume,
                        kind=arc.kind,
                    )
                )
        return TransferSchedule(entries), solution

    def charged_volumes(self, solution: Solution) -> Dict[Tuple[int, int], float]:
        """Optimal X_ij for the links the model optimizes over."""
        return {key: solution.value(var) for key, var in self.charge_vars.items()}

    def congestion_prices(self, solution: Solution) -> Dict[Tuple[int, int, int], float]:
        """Shadow price of each binding capacity row, in $/GB.

        The dual of the capacity constraint on (src, dst, slot) is the
        marginal saving one extra GB/slot of capacity there would buy —
        the LP-theoretic answer to "which link should we upgrade?".
        Only links whose price is positive appear; zero-price entries
        are filtered.  Requires the HiGHS backend (duals).
        """
        prices = {}
        for key, constraint in self.capacity_rows.items():
            dual = solution.dual(constraint)
            # A <=-row dual in a minimization is <= 0: relaxing the
            # capacity lowers cost.  Report the positive saving.
            if dual < -1e-9:
                prices[key] = -dual
        return prices


def build_postcard_model(
    state: NetworkState,
    requests: List[TransferRequest],
    storage: str = STORAGE_FULL,
    name: str = "postcard",
    storage_capacity: float = float("inf"),
    storage_price: float = 0.0,
    cost_fn_factory=None,
    charge_exempt=None,
    charged_volume_fn=None,
) -> PostcardModel:
    """Assemble the Sec. V LP for the files released at the current slot.

    Parameters
    ----------
    state:
        Online state providing residual capacities, committed per-slot
        volumes ``B_ij(n)`` and charged volumes ``X_ij(t-1)``.
    requests:
        The slot's released files ``K(t)`` (mixed release slots are
        allowed; the graph spans all their windows).
    storage:
        ``"full"`` (the paper) allows holdover at any datacenter;
        ``"destination_only"`` disables intermediate/source storage so
        data must keep moving — the ablation quantifying what
        store-and-forward itself contributes.
    storage_capacity:
        GB of buffer available per datacenter per slot for in-transit
        data.  The paper assumes infinite (datacenter disk dwarfs WAN
        bandwidth); finite values study the capacitated variant.  Data
        already at its own destination is delivered and never counts.
    storage_price:
        Dollars per GB-slot of intermediate buffering.  The paper
        assumes zero; a positive price makes the optimizer trade
        storage against transit peaks.  Billed per use, not per peak
        (disk is metered, unlike percentile-billed WAN links).
    cost_fn_factory:
        Optional ``factory(link) -> CostFunction`` replacing the
        default linear ``a_ij * X_ij`` term of each link.  Piece-wise
        linear functions must be convex (epigraph representation).
    charge_exempt:
        Optional predicate ``(src, dst, slot) -> bool``; link-slots for
        which it returns True get no charge row — their traffic is
        assumed to land in the free top percentile of a q < 100
        charging scheme (see
        :class:`repro.extensions.percentile.PercentileAwareScheduler`).
    charged_volume_fn:
        Optional override for ``X_ij(t-1)``; percentile-aware callers
        pass the charged volume *excluding* amnestied burst slots.
    """
    if not requests:
        raise SchedulingError("build_postcard_model needs at least one request")
    if storage not in (STORAGE_FULL, STORAGE_DESTINATION_ONLY):
        raise SchedulingError(f"unknown storage policy {storage!r}")
    if storage_capacity < 0:
        raise SchedulingError("storage_capacity must be non-negative")
    if storage_price < 0:
        raise SchedulingError("storage_price must be non-negative")

    start = min(r.release_slot for r in requests)
    end = max(r.release_slot + r.deadline_slots for r in requests)
    graph = TimeExpandedGraph(
        state.topology,
        start_slot=start,
        horizon=end - start,
        capacity_fn=state.residual_capacity,
    )

    model = Model(name)
    flow_vars: Dict[Tuple[int, Arc], Variable] = {}
    #: per transit (link, slot): list of vars crossing it (for capacity
    #: and charge rows)
    arc_users: Dict[Arc, List[Variable]] = defaultdict(list)
    #: per holdover arc: vars of files *in transit* stored there (a
    #: file buffered at its own destination is delivered, not stored)
    storage_users: Dict[Arc, List[Variable]] = defaultdict(list)

    for request in requests:
        rid = request.request_id
        arcs = graph.arcs_for_request(request)
        if storage == STORAGE_DESTINATION_ONLY:
            arcs = [
                a
                for a in arcs
                if a.kind is ArcKind.TRANSIT or a.src == request.destination
            ]
        # Node balance built incrementally: +1 on out-arcs, -1 on in-arcs.
        balance: Dict[Tuple[int, int], List[Tuple[float, Variable]]] = defaultdict(list)
        for arc in arcs:
            if arc.kind is ArcKind.TRANSIT and arc.capacity <= 0:
                continue  # fully committed link-slot: no variable at all
            var = model.add_variable(f"M[{rid},{arc.src},{arc.dst},{arc.slot}]")
            flow_vars[(rid, arc)] = var
            if arc.kind is ArcKind.TRANSIT:
                arc_users[arc].append(var)
            elif arc.src != request.destination:
                storage_users[arc].append(var)
            balance[arc.tail].append((1.0, var))
            balance[arc.head].append((-1.0, var))

        source = graph.source_node(request)
        sink = graph.sink_node(request)
        if source not in balance:
            raise SchedulingError(
                f"file {rid}: no admissible arc leaves its source; "
                "the problem is trivially infeasible"
            )
        for node, terms in balance.items():
            net = LinExpr.from_terms(terms)
            if node == source:
                model.add_constraint(net == request.size_gb, name=f"src[{rid}]")
            elif node == sink:
                model.add_constraint(net == -request.size_gb, name=f"snk[{rid}]")
            else:
                model.add_constraint(
                    net == 0.0, name=f"cons[{rid},{node[0]},{node[1]}]"
                )

    # Capacity rows: aggregate new traffic within residual capacity.
    capacity_rows: Dict[Tuple[int, int, int], object] = {}
    for arc, users in arc_users.items():
        if arc.capacity != float("inf"):
            capacity_rows[(arc.src, arc.dst, arc.slot)] = model.add_constraint(
                LinExpr.sum(users) <= arc.capacity,
                name=f"cap[{arc.src},{arc.dst},{arc.slot}]",
            )

    # Storage rows: per-datacenter buffer capacity for in-transit data.
    if storage_capacity != float("inf"):
        for arc, users in storage_users.items():
            model.add_constraint(
                LinExpr.sum(users) <= storage_capacity,
                name=f"store[{arc.src},{arc.slot}]",
            )

    # Charge rows: one X_ij per overlay link that new traffic can use.
    by_link: Dict[Tuple[int, int], Dict[int, List[Variable]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for arc, users in arc_users.items():
        by_link[arc.link_key][arc.slot].extend(users)

    charge_vars: Dict[Tuple[int, int], Variable] = {}
    objective_terms: List[Tuple[float, Variable]] = []
    fixed_cost = 0.0
    for link in state.topology.links:
        key = link.key
        prior = (
            charged_volume_fn(*key)
            if charged_volume_fn is not None
            else state.charged_volume(*key)
        )
        cost_fn = cost_fn_factory(link) if cost_fn_factory else None
        if key not in by_link:
            fixed_cost += cost_fn(prior) if cost_fn else link.price * prior
            continue
        x = model.add_variable(f"X[{key[0]},{key[1]}]", lb=prior)
        charge_vars[key] = x
        for slot, users in by_link[key].items():
            if charge_exempt is not None and charge_exempt(key[0], key[1], slot):
                continue
            committed = state.committed_volume(key[0], key[1], slot)
            model.add_constraint(
                x >= LinExpr.sum(users) + committed,
                name=f"chg[{key[0]},{key[1]},{slot}]",
            )
        if cost_fn is None:
            objective_terms.append((link.price, x))
        else:
            objective_terms.append(
                (1.0, _link_cost_variable(model, key, x, cost_fn))
            )

    # Metered storage cost: price per GB-slot of in-transit buffering.
    storage_terms: List[Tuple[float, Variable]] = []
    if storage_price > 0.0:
        for users in storage_users.values():
            storage_terms.extend((storage_price, var) for var in users)

    model.minimize(
        LinExpr.from_terms(objective_terms + storage_terms, constant=fixed_cost)
    )

    return PostcardModel(
        model, graph, list(requests), flow_vars, charge_vars, fixed_cost,
        capacity_rows=capacity_rows,
    )


def _link_cost_variable(model: Model, key, x: Variable, cost_fn) -> Variable:
    """Epigraph variable for a (convex) cost of one link's charge.

    ``LinearCost`` lowers to ``c == price * X``; a convex
    :class:`~repro.charging.costfunc.PiecewiseLinearCost` lowers to one
    ``c >= slope * X + intercept`` row per segment.  Concave functions
    (volume discounts) cannot be minimized this way and are rejected.
    """
    from repro.charging.costfunc import LinearCost, PiecewiseLinearCost

    c = model.add_variable(f"C[{key[0]},{key[1]}]", lb=None)
    if isinstance(cost_fn, LinearCost):
        model.add_constraint(c >= cost_fn.price * x, name=f"cost[{key}]")
        return c
    if isinstance(cost_fn, PiecewiseLinearCost):
        if not cost_fn.is_convex:
            raise SchedulingError(
                f"cost function for link {key} is not convex; the epigraph "
                "objective cannot represent volume discounts"
            )
        model.add_constraint(c >= 0.0, name=f"cost0[{key}]")
        for i, (slope, intercept) in enumerate(cost_fn.segments()):
            model.add_constraint(
                c >= slope * x + intercept, name=f"cost[{key},{i}]"
            )
        return c
    raise SchedulingError(
        f"unsupported cost function type {type(cost_fn).__name__} for the "
        "LP objective (use LinearCost or a convex PiecewiseLinearCost)"
    )
