"""The scheduler interface shared by Postcard and every baseline."""

from __future__ import annotations

import abc
from typing import List, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.schedule import TransferSchedule
    from repro.core.state import NetworkState
    from repro.traffic.spec import TransferRequest


class Scheduler(abc.ABC):
    """Decides routing and timing for each slot's newly released files.

    A scheduler owns a :class:`~repro.core.state.NetworkState` and is
    driven slot by slot: the simulator calls :meth:`on_slot` with the
    files released at that slot; the scheduler returns the committed
    :class:`~repro.core.schedule.TransferSchedule` (already applied to
    its state).  Decisions are *online*: once committed, a transfer is
    never rescheduled, matching the paper's model where "all routing
    paths and flow assignments for previous traffic pairs are already
    known".
    """

    #: Human-readable name used in benchmark tables.
    name: str = "scheduler"

    @property
    @abc.abstractmethod
    def state(self) -> "NetworkState":
        """The scheduler's view of committed traffic and paid volumes.

        Returns:
            The :class:`~repro.core.state.NetworkState` every cost,
            completion, and rejection is recorded against.  Composite
            schedulers (e.g. the hybrid) may share one state across
            internal lanes, but externally there is always exactly one.
        """

    def adopt_state(self, state: "NetworkState") -> None:
        """Replace this scheduler's state with a restored one.

        The checkpoint workflow builds a fresh scheduler and hands it a
        :class:`~repro.core.state.NetworkState` restored by
        :mod:`repro.core.checkpoint`.  The default assumes the
        conventional ``_state`` attribute every in-tree scheduler uses;
        composite schedulers override it to re-point internal lanes and
        any caches that hold a state reference.

        Args:
            state: The restored state; must be built against the same
                topology this scheduler was constructed with.
        """
        self._state = state

    @abc.abstractmethod
    def on_slot(
        self, slot: int, requests: List["TransferRequest"]
    ) -> "TransferSchedule":
        """Schedule the files released at ``slot`` and commit the result.

        Args:
            slot: The current slot index.  Implementations may require
                every request's ``release_slot`` to equal it.
            requests: The newly released files ``K(t)``; may be empty.

        Returns:
            The committed :class:`~repro.core.schedule.TransferSchedule`
            — already applied to :attr:`state`, so the caller must not
            commit it again.  Empty when nothing was scheduled.

        Raises:
            InfeasibleError: some file cannot meet its deadline and the
                scheduler's infeasibility policy is ``"raise"``; with
                ``"drop"``, the file is recorded in ``state.rejected``
                instead.
        """
