"""The scheduler interface shared by Postcard and every baseline."""

from __future__ import annotations

import abc
from typing import List, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.schedule import TransferSchedule
    from repro.core.state import NetworkState
    from repro.traffic.spec import TransferRequest


class Scheduler(abc.ABC):
    """Decides routing and timing for each slot's newly released files.

    A scheduler owns a :class:`~repro.core.state.NetworkState` and is
    driven slot by slot: the simulator calls :meth:`on_slot` with the
    files released at that slot; the scheduler returns the committed
    :class:`~repro.core.schedule.TransferSchedule` (already applied to
    its state).  Decisions are *online*: once committed, a transfer is
    never rescheduled, matching the paper's model where "all routing
    paths and flow assignments for previous traffic pairs are already
    known".
    """

    #: Human-readable name used in benchmark tables.
    name: str = "scheduler"

    @property
    @abc.abstractmethod
    def state(self) -> "NetworkState":
        """The scheduler's view of committed traffic and paid volumes."""

    @abc.abstractmethod
    def on_slot(
        self, slot: int, requests: List["TransferRequest"]
    ) -> "TransferSchedule":
        """Schedule the files released at ``slot`` and commit the result."""
