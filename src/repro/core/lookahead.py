"""Postcard with arrival lookahead.

The pure online controller is myopic: it happily fills cheap links to
the brim even when the next slot's files will then be forced onto
expensive ones.  When arrivals are predictable a few slots out (the
paper's Sec. III cites Benson et al. that *fine-grained* prediction
fails beyond seconds, but bulk/backup traffic is often scheduled and
therefore known), a lookahead controller co-optimizes the current
files with the next ``W`` slots' previewed files and commits only the
current slot's decisions.

With ``W = 0`` this is exactly :class:`PostcardScheduler`'s behavior;
with ``W`` covering the whole run it approaches the offline optimum.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import InfeasibleError, SchedulingError
from repro.core.formulation import STORAGE_FULL, build_postcard_model
from repro.core.interfaces import Scheduler
from repro.core.schedule import TransferSchedule
from repro.core.scheduler import (
    ON_INFEASIBLE_DROP,
    ON_INFEASIBLE_RAISE,
    shed_until_feasible,
)
from repro.core.state import NetworkState
from repro.net.topology import Topology
from repro.traffic.spec import TransferRequest

#: A preview oracle: slot index -> the files that will be released then.
PreviewFn = Callable[[int], List[TransferRequest]]


class LookaheadPostcardScheduler(Scheduler):
    """Online Postcard that previews the next ``lookahead`` slots.

    ``preview`` is typically ``workload.requests_at`` — the simulator's
    workloads are deterministic per slot, so the preview is a perfect
    oracle; plugging in a noisy predictor measures robustness instead.
    """

    name = "postcard-lookahead"

    def __init__(
        self,
        topology: Topology,
        horizon: int,
        preview: PreviewFn,
        lookahead: int = 2,
        backend: str = "highs",
        storage: str = STORAGE_FULL,
        on_infeasible: str = ON_INFEASIBLE_RAISE,
    ):
        if lookahead < 0:
            raise SchedulingError(f"lookahead must be >= 0, got {lookahead}")
        if on_infeasible not in (ON_INFEASIBLE_RAISE, ON_INFEASIBLE_DROP):
            raise SchedulingError(f"unknown on_infeasible policy {on_infeasible!r}")
        self._state = NetworkState(topology, horizon)
        self.preview = preview
        self.lookahead = lookahead
        self.backend = backend
        self.storage = storage
        self.on_infeasible = on_infeasible
        self.last_objective: Optional[float] = None

    @property
    def state(self) -> NetworkState:
        return self._state

    def on_slot(self, slot: int, requests: List[TransferRequest]) -> TransferSchedule:
        if not requests:
            return TransferSchedule()
        for request in requests:
            if request.release_slot != slot:
                raise SchedulingError(
                    f"file {request.request_id} released at "
                    f"{request.release_slot}, scheduled at {slot}"
                )

        future: List[TransferRequest] = []
        for ahead in range(1, self.lookahead + 1):
            future.extend(self.preview(slot + ahead))

        def solve(current: List[TransferRequest]) -> TransferSchedule:
            return self._solve(current, future)

        if self.on_infeasible == ON_INFEASIBLE_RAISE:
            schedule, accepted = solve(list(requests)), list(requests)
        else:
            schedule, accepted = shed_until_feasible(solve, requests, self._state)
            if schedule is None:
                return TransferSchedule()

        self._state.commit(schedule, accepted)
        return schedule

    def _solve(
        self, current: List[TransferRequest], future: List[TransferRequest]
    ) -> TransferSchedule:
        """Co-optimize current + previewed files; keep only current
        files' entries (future files are re-solved at their own slot,
        when they are real)."""
        try:
            built = build_postcard_model(
                self._state, current + future, storage=self.storage
            )
            schedule, solution = built.solve(backend=self.backend)
        except InfeasibleError:
            if not future:
                raise
            # The previewed future may be jointly infeasible with the
            # present (it will be shed at its own slot); fall back to
            # the myopic solve rather than dropping *current* files.
            built = build_postcard_model(self._state, current, storage=self.storage)
            schedule, solution = built.solve(backend=self.backend)
            self.last_objective = solution.objective
            return schedule

        self.last_objective = solution.objective
        current_ids = {r.request_id for r in current}
        return TransferSchedule(
            [e for e in schedule.entries if e.request_id in current_ids]
        )
