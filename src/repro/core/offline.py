"""The offline (hindsight-optimal) Postcard solver.

Postcard is an *online* algorithm: at slot ``t`` it knows nothing about
files arriving after ``t``.  The offline optimum — one LP over the
whole horizon with every file visible — lower-bounds what any online
policy can achieve, so the ratio ``online / offline`` measures the
price of not knowing the future (the empirical competitive ratio).

Tractable for small instances only: the LP couples every file with
every slot of the full horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SchedulingError
from repro.core.formulation import STORAGE_FULL, build_postcard_model
from repro.core.schedule import TransferSchedule
from repro.core.state import NetworkState
from repro.net.topology import Topology
from repro.traffic.spec import TransferRequest


@dataclass
class OfflineResult:
    """Hindsight-optimal schedule and its cost."""

    schedule: TransferSchedule
    cost_per_slot: float
    #: The state after committing the schedule (for billing queries).
    state: NetworkState


def solve_offline(
    topology: Topology,
    requests: List[TransferRequest],
    horizon: int,
    backend: str = "highs",
    storage: str = STORAGE_FULL,
) -> OfflineResult:
    """Optimize all ``requests`` jointly with full future knowledge.

    Each file still moves only inside its own release-to-deadline
    window — hindsight does not relax deadlines, it only removes the
    online commitment order.
    """
    if not requests:
        raise SchedulingError("solve_offline needs at least one request")
    state = NetworkState(topology, horizon)
    built = build_postcard_model(state, list(requests), storage=storage)
    schedule, solution = built.solve(backend=backend)
    state.commit(schedule, list(requests))
    return OfflineResult(
        schedule=schedule,
        cost_per_slot=solution.objective,
        state=state,
    )


def empirical_competitive_ratio(
    online_cost_per_slot: float, offline: OfflineResult
) -> float:
    """``online / offline`` on one instance (>= 1 up to solver noise)."""
    if offline.cost_per_slot <= 0:
        if online_cost_per_slot <= 0:
            return 1.0
        raise SchedulingError("offline optimum is zero but online cost is not")
    return online_cost_per_slot / offline.cost_per_slot
