"""Path decomposition of store-and-forward schedules.

An LP solution assigns volumes to time-expanded arcs; operators think
in terms of *paths*: "2 GB leave DC2 at slot 3, wait one slot at DC1,
arrive at DC4 at slot 6".  This module strips a file's arc flows into
such timed paths (the classic flow-decomposition argument on a DAG:
repeatedly follow positive arcs from the source, peel off the
bottleneck volume; termination is guaranteed because each round zeroes
at least one arc).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import SchedulingError
from repro.core.schedule import TransferSchedule
from repro.timeexp.graph import TimeNode
from repro.traffic.spec import TransferRequest
from repro.units import VOLUME_ATOL


@dataclass(frozen=True)
class TimedPath:
    """One path through the time-expanded graph with a volume.

    ``nodes`` is the sequence of (datacenter, layer) hops, source
    first.  Consecutive nodes with the same datacenter are storage
    steps; datacenter changes are transmissions.
    """

    nodes: Tuple[TimeNode, ...]
    volume: float

    @property
    def hop_count(self) -> int:
        """Number of actual transmissions along the path."""
        return sum(
            1 for a, b in zip(self.nodes, self.nodes[1:]) if a[0] != b[0]
        )

    @property
    def storage_slots(self) -> int:
        """Number of slots the volume spends parked at a datacenter."""
        return sum(
            1 for a, b in zip(self.nodes, self.nodes[1:]) if a[0] == b[0]
        )

    @property
    def departure_slot(self) -> int:
        return self.nodes[0][1]

    @property
    def arrival_slot(self) -> int:
        """Slot *boundary* at which the volume is at the destination."""
        return self.nodes[-1][1]

    def describe(self) -> str:
        steps = []
        for a, b in zip(self.nodes, self.nodes[1:]):
            if a[0] == b[0]:
                steps.append(f"hold@{a[0]}")
            else:
                steps.append(f"{a[0]}->{b[0]}")
        return f"{self.volume:g} GB: " + ", ".join(
            f"slot {a[1]}: {step}" for (a, _b), step in zip(zip(self.nodes, self.nodes[1:]), steps)
        )


def decompose_paths(
    schedule: TransferSchedule, request: TransferRequest
) -> List[TimedPath]:
    """Decompose one file's schedule into timed paths.

    Requires a store-and-forward schedule that fully delivers the file
    (raises :class:`SchedulingError` otherwise).  The returned volumes
    sum to the file size; at most ``#arcs`` paths are produced.
    """
    residual: Dict[Tuple[TimeNode, TimeNode], float] = {}
    for entry in schedule.entries_for_request(request.request_id):
        key = ((entry.src, entry.slot), (entry.dst, entry.slot + 1))
        residual[key] = residual.get(key, 0.0) + entry.volume

    total = schedule.delivered_volume(request)
    if abs(total - request.size_gb) > max(1e-5, 1e-5 * request.size_gb):
        raise SchedulingError(
            f"cannot decompose: file {request.request_id} is not fully "
            f"delivered ({total:g} of {request.size_gb:g} GB)"
        )

    # Out-adjacency over positive-residual arcs, rebuilt lazily.
    def out_arcs(node: TimeNode):
        return [
            (tail, head)
            for (tail, head), volume in residual.items()
            if tail == node and volume > VOLUME_ATOL
        ]

    paths: List[TimedPath] = []
    remaining = total
    tol = max(VOLUME_ATOL, 1e-9 * request.size_gb)
    guard = 2 * len(residual) + 2
    while remaining > tol and guard > 0:
        guard -= 1
        # Start at the earliest source node that still has outflow.
        starts = sorted(
            (
                tail
                for (tail, _head), volume in residual.items()
                if tail[0] == request.source and volume > VOLUME_ATOL
            ),
            key=lambda n: n[1],
        )
        if not starts:
            raise SchedulingError(
                f"decomposition stuck: {remaining:g} GB of file "
                f"{request.request_id} unaccounted"
            )
        node = starts[0]
        path = [node]
        arcs_taken: List[Tuple[TimeNode, TimeNode]] = []
        # Walk until the volume first touches the destination; trailing
        # holds at the destination (riding to the sink layer) are
        # delivery bookkeeping, not part of the operational path.
        while node[0] != request.destination:
            candidates = out_arcs(node)
            if not candidates:
                raise SchedulingError(
                    f"decomposition dead-ends at {node} for file "
                    f"{request.request_id}"
                )
            # Prefer transmissions over holds (terminates briskly) and,
            # among those, the fattest arc (fewer total paths).
            candidates.sort(
                key=lambda arc: (arc[0][0] == arc[1][0], -residual[arc])
            )
            arc = candidates[0]
            arcs_taken.append(arc)
            node = arc[1]
            path.append(node)
        bottleneck = min(residual[arc] for arc in arcs_taken)
        volume = min(bottleneck, remaining)
        for arc in arcs_taken:
            residual[arc] -= volume
        paths.append(TimedPath(tuple(path), volume))
        remaining -= volume

    if remaining > max(1e-4, 1e-6 * request.size_gb):
        raise SchedulingError(
            f"decomposition left {remaining:g} GB of file "
            f"{request.request_id} unexplained"
        )
    return paths
