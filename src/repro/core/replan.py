"""Replanning Postcard: in-flight transfers are re-optimized every slot.

The paper's online model commits a file's entire future schedule the
moment it arrives ("all routing paths and flow assignments for previous
traffic pairs are already known").  That makes each slot's LP small,
but early commitments can strand later arrivals.  This module
implements the natural relaxation: only the *current* slot's traffic is
ever executed; everything not yet transmitted — including data already
parked at intermediate datacenters — is re-optimized jointly with each
new batch.

Formally, at slot ``t`` every active file ``k`` is described by its
remaining volume distribution: ``supplies[i]`` GB currently sitting at
datacenter ``i`` (its source, and/or intermediate nodes where earlier
slots parked it).  The LP is the Sec. V formulation with multi-source
supply nodes; only the ``n = t`` arcs of the solution are executed,
and the rest is thrown away and re-derived next slot.

Feasibility is monotone: the tail of last slot's plan is always still
feasible (capacities ahead are untouched), so replanning can only help
— at the price of solving a bigger LP every slot.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import InfeasibleError, SchedulingError
from repro.core.interfaces import Scheduler
from repro.core.schedule import ScheduleEntry, TransferSchedule
from repro.core.state import NetworkState
from repro.lp import LinExpr, Model, Variable
from repro.net.topology import Topology
from repro.obs import registry as obs
from repro.timeexp.graph import Arc, ArcKind, TimeExpandedGraph
from repro.traffic.spec import TransferRequest
from repro.units import VOLUME_ATOL


@dataclass
class ActiveFile:
    """An accepted file that has not finished arriving yet."""

    request: TransferRequest
    #: Where its undelivered data currently sits: node -> GB.
    supplies: Dict[int, float] = field(default_factory=dict)
    #: GB already delivered to the destination.
    delivered: float = 0.0

    @property
    def remaining(self) -> float:
        return sum(self.supplies.values())

    @property
    def deadline_slot(self) -> int:
        return self.request.last_slot


def solve_multisource_plan(
    state: NetworkState,
    slot: int,
    files: List[ActiveFile],
    backend: str = "highs",
    capacity_fn=None,
    history_peak_fn=None,
    committed_fn=None,
    model_name: str = "replan",
) -> Tuple[Dict[Tuple[int, Arc], float], float]:
    """The Sec. V formulation with multi-source supply nodes.

    Plans all remaining volume of ``files`` from slot ``slot`` onwards:
    each file's data may start from several datacenters at once (its
    ``supplies`` distribution), and everything must reach the file's
    destination by its own deadline.  Returns ``(plan, objective)``
    where ``plan`` maps ``(request_id, arc)`` to planned GB.

    The three hooks select between the two users of this formulation:

    * The replanning scheduler re-derives *everything* each slot, so
      future capacities are raw link capacities (``capacity_fn=None``)
      and nothing else is committed (``committed_fn=None``).
    * :class:`repro.sim.recovery.RecoveryManager` replans a disrupted
      file *around* other files' still-valid commitments, so it passes
      residual capacities and the committed per-slot loads, and prices
      against the already-paid peaks (``history_peak_fn``).
    """
    if not files:
        return {}, 0.0

    if capacity_fn is None:

        def capacity_fn(src: int, dst: int, n: int) -> float:
            if (
                state.fault_model is not None
                and state.fault_model.is_visible_down(src, dst, n)
            ):
                return 0.0
            return state.topology.link(src, dst).capacity

    if history_peak_fn is None:

        def history_peak_fn(src: int, dst: int) -> float:
            return state.ledger.peak_in_range(src, dst, 0, max(slot, 1))

    end = max(f.deadline_slot for f in files) + 1
    graph = TimeExpandedGraph(
        state.topology,
        start_slot=slot,
        horizon=end - slot,
        capacity_fn=capacity_fn,
    )

    model = Model(model_name)
    flow_vars: Dict[Tuple[int, Arc], Variable] = {}
    arc_users: Dict[Arc, List[Variable]] = defaultdict(list)

    for f in files:
        rid = f.request.request_id
        window_last = f.deadline_slot
        balance: Dict[Tuple[int, int], List[Tuple[float, Variable]]] = defaultdict(list)
        arcs = [a for a in graph.arcs if slot <= a.slot <= window_last]
        for arc in arcs:
            if arc.kind is ArcKind.TRANSIT and arc.capacity <= 0:
                continue
            var = model.add_variable(f"M[{rid},{arc.src},{arc.dst},{arc.slot}]")
            flow_vars[(rid, arc)] = var
            if arc.kind is ArcKind.TRANSIT:
                arc_users[arc].append(var)
            balance[arc.tail].append((1.0, var))
            balance[arc.head].append((-1.0, var))

        sink = (f.request.destination, window_last + 1)
        for node, terms in balance.items():
            net = LinExpr.from_terms(terms)
            supply = f.supplies.get(node[0], 0.0) if node[1] == slot else 0.0
            if node == sink:
                model.add_constraint(
                    net == supply - f.remaining, name=f"snk[{rid}]"
                )
            elif supply > 0.0:
                model.add_constraint(net == supply, name=f"sup[{rid},{node[0]}]")
            else:
                model.add_constraint(
                    net == 0.0, name=f"cons[{rid},{node[0]},{node[1]}]"
                )

    for arc, users in arc_users.items():
        if arc.capacity != float("inf"):
            model.add_constraint(
                LinExpr.sum(users) <= arc.capacity,
                name=f"cap[{arc.src},{arc.dst},{arc.slot}]",
            )

    # Charge structure: history peaks are paid; the plan's per-slot
    # loads — stacked on whatever is already committed there — set the
    # new peaks.
    by_link: Dict[Tuple[int, int], Dict[int, List[Variable]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for arc, users in arc_users.items():
        by_link[arc.link_key][arc.slot].extend(users)

    objective_terms: List[Tuple[float, Variable]] = []
    fixed_cost = 0.0
    for link in state.topology.links:
        prior = history_peak_fn(link.src, link.dst)
        if link.key not in by_link:
            fixed_cost += link.price * prior
            continue
        x = model.add_variable(f"X[{link.src},{link.dst}]", lb=prior)
        for plan_slot, users in by_link[link.key].items():
            load = LinExpr.sum(users)
            if committed_fn is not None:
                load = load + committed_fn(link.src, link.dst, plan_slot)
            model.add_constraint(
                x >= load,
                name=f"chg[{link.src},{link.dst},{plan_slot}]",
            )
        objective_terms.append((link.price, x))

    model.minimize(LinExpr.from_terms(objective_terms, constant=fixed_cost))
    solution = model.solve(backend=backend)
    plan = {
        key: solution.value(var)
        for key, var in flow_vars.items()
        if solution.value(var) > VOLUME_ATOL
    }
    return plan, solution.objective


class ReplanningPostcardScheduler(Scheduler):
    """Executes one slot at a time, re-deriving the rest every slot."""

    name = "postcard-replan"

    def __init__(
        self,
        topology: Topology,
        horizon: int,
        backend: str = "highs",
        on_infeasible: str = "raise",
    ):
        if on_infeasible not in ("raise", "drop"):
            raise SchedulingError(f"unknown on_infeasible policy {on_infeasible!r}")
        self._state = NetworkState(topology, horizon)
        self.backend = backend
        self.on_infeasible = on_infeasible
        self.active: List[ActiveFile] = []
        self.last_objective: Optional[float] = None

    @property
    def state(self) -> NetworkState:
        return self._state

    # -- the online loop -------------------------------------------------

    def on_slot(self, slot: int, requests: List[TransferRequest]) -> TransferSchedule:
        for request in requests:
            if request.release_slot != slot:
                raise SchedulingError(
                    f"file {request.request_id} released at "
                    f"{request.release_slot}, scheduled at {slot}"
                )

        newcomers = [
            ActiveFile(r, supplies={r.source: r.size_gb}) for r in requests
        ]

        # Admission: the current active set stays feasible by
        # construction (last slot's plan tail is untouched), so only
        # newcomers can break feasibility.  Shedding mirrors
        # shed_until_feasible: individually-impossible files first,
        # then the hungriest, one at a time.
        def attempt(subset):
            return self._solve(slot, self.active + subset)

        try:
            plan = attempt(newcomers)
        except InfeasibleError:
            if self.on_infeasible == "raise":
                raise
            survivors = []
            for f in newcomers:
                try:
                    attempt([f])
                    survivors.append(f)
                except InfeasibleError:
                    self._state.reject(f.request)
            newcomers = survivors
            while True:
                try:
                    plan = attempt(newcomers)
                    break
                except InfeasibleError:
                    if not newcomers:
                        raise
                    victim = max(
                        newcomers,
                        key=lambda f: (f.request.desired_rate, f.remaining),
                    )
                    newcomers.remove(victim)
                    self._state.reject(victim.request)

        self.active.extend(newcomers)
        executed = self._execute_slot(slot, plan)
        self.active = [f for f in self.active if f.remaining > VOLUME_ATOL]
        return executed

    # -- planning ----------------------------------------------------------

    def _solve(
        self, slot: int, files: List[ActiveFile]
    ) -> Dict[Tuple[int, Arc], float]:
        """Plan all remaining volume; returns arc volumes per file."""
        if not files:
            return {}
        obs.counter("scheduler.replans")
        with obs.span("scheduler.replan", slot=slot, files=len(files)):
            return self._solve_instrumented(slot, files)

    def _solve_instrumented(
        self, slot: int, files: List[ActiveFile]
    ) -> Dict[Tuple[int, Arc], float]:
        # Future capacities are raw link capacities (nothing is
        # committed ahead of time in the replanning model) minus
        # visible outages; history peaks are what earlier slots
        # actually executed.
        plan, objective = solve_multisource_plan(
            self._state, slot, files, backend=self.backend
        )
        self.last_objective = objective
        return plan

    # -- surprise-failure recovery ------------------------------------------

    def resupply(
        self,
        request: "TransferRequest",
        supplies: Dict[int, float],
        delivered: float,
    ) -> None:
        """Execution-time disruption hook used by the recovery layer.

        A surprise outage voided some of this slot's executed arcs; the
        engine reconstructed where the file's undelivered data really
        sits.  Overwrite the scheduler's in-memory picture with that
        ground truth — the file re-enters the active set and the next
        slot's replan routes it around the (now revealed) outage.
        """
        for f in self.active:
            if f.request.request_id == request.request_id:
                f.supplies = dict(supplies)
                f.delivered = delivered
                break
        else:
            self.active.append(
                ActiveFile(request, supplies=dict(supplies), delivered=delivered)
            )
        # A completion recorded from the voided arcs is no longer true.
        self._state.completions.pop(request.request_id, None)

    # -- execution ----------------------------------------------------------

    def _execute_slot(
        self, slot: int, plan: Dict[Tuple[int, Arc], float]
    ) -> TransferSchedule:
        """Apply only the plan's slot-``t`` arcs; update supplies."""
        entries: List[ScheduleEntry] = []
        moved: Dict[int, Dict[int, float]] = defaultdict(lambda: defaultdict(float))

        for (rid, arc), volume in plan.items():
            if arc.slot != slot:
                continue
            entries.append(
                ScheduleEntry(rid, arc.src, arc.dst, slot, volume, arc.kind)
            )
            if arc.kind is ArcKind.TRANSIT:
                self._state.ledger.record(arc.src, arc.dst, slot, volume)
                level = self._state.ledger.volume(arc.src, arc.dst, slot)
                if level > self._state.charged_volume(arc.src, arc.dst):
                    self._state._charged[(arc.src, arc.dst)] = level
                moved[rid][arc.src] -= volume
                moved[rid][arc.dst] += volume

        by_id = {f.request.request_id: f for f in self.active}
        for rid, deltas in moved.items():
            f = by_id[rid]
            for node, delta in deltas.items():
                if node == f.request.destination and delta > 0:
                    f.delivered += delta
                else:
                    f.supplies[node] = f.supplies.get(node, 0.0) + delta
            f.supplies = {
                node: volume
                for node, volume in f.supplies.items()
                if volume > VOLUME_ATOL
            }
            if f.remaining <= max(VOLUME_ATOL, 1e-9 * f.request.size_gb):
                self._state.completions[rid] = slot
            self._state.storage_used += sum(f.supplies.values())

        return TransferSchedule(entries)
