"""Transfer schedules: the output of every scheduler.

A schedule is a bag of :class:`ScheduleEntry` rows — "move (or hold)
this volume of file ``k`` on link (i, j) during slot ``n``" — plus
helpers to audit feasibility and aggregate per-link traffic.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.timeexp.graph import ArcKind
from repro.traffic.spec import TransferRequest
from repro.units import VOLUME_ATOL

LinkSlot = Tuple[int, int, int]  # (src, dst, slot)


@dataclass(frozen=True)
class ScheduleEntry:
    """One scheduling decision.

    ``kind`` distinguishes real transmissions (:attr:`ArcKind.TRANSIT`)
    from temporary storage (:attr:`ArcKind.HOLDOVER`, where
    ``src == dst``).  Only transit entries generate billable traffic.
    """

    request_id: int
    src: int
    dst: int
    slot: int
    volume: float
    kind: ArcKind = ArcKind.TRANSIT

    def __post_init__(self):
        if self.volume < 0:
            raise SchedulingError(
                f"entry for file {self.request_id} has negative volume {self.volume}"
            )
        if (self.src == self.dst) != (self.kind is ArcKind.HOLDOVER):
            raise SchedulingError(
                f"entry ({self.src}->{self.dst}) kind {self.kind.value} is inconsistent"
            )


#: Store-and-forward semantics: data arriving at a node during slot n
#: can leave no earlier than slot n+1 (the time-expanded-graph model).
SEMANTICS_STORE_AND_FORWARD = "store_and_forward"
#: Fluid semantics: data is relayed within the same slot it arrives
#: (the flow-based model of Sec. II-B, where a file is a constant-rate
#: flow along its paths).
SEMANTICS_FLUID = "fluid"


class TransferSchedule:
    """A set of committed scheduling decisions for one or more files.

    ``semantics`` declares which conservation law the schedule obeys —
    store-and-forward (Postcard) or fluid (the flow-based baseline) —
    and selects the matching feasibility audit in :meth:`validate`.
    Billing, capacity accounting and delivery accounting are identical
    under both.
    """

    def __init__(
        self,
        entries: Iterable[ScheduleEntry] = (),
        semantics: str = SEMANTICS_STORE_AND_FORWARD,
    ):
        if semantics not in (SEMANTICS_STORE_AND_FORWARD, SEMANTICS_FLUID):
            raise SchedulingError(f"unknown schedule semantics {semantics!r}")
        self.semantics = semantics
        self.entries: List[ScheduleEntry] = [
            e for e in entries if e.volume > VOLUME_ATOL
        ]

    # -- aggregation -----------------------------------------------------

    def transit_entries(self) -> List[ScheduleEntry]:
        return [e for e in self.entries if e.kind is ArcKind.TRANSIT]

    def holdover_entries(self) -> List[ScheduleEntry]:
        return [e for e in self.entries if e.kind is ArcKind.HOLDOVER]

    def link_slot_volumes(self) -> Dict[LinkSlot, float]:
        """Aggregate billable volume per (src, dst, slot)."""
        out: Dict[LinkSlot, float] = defaultdict(float)
        for e in self.transit_entries():
            out[(e.src, e.dst, e.slot)] += e.volume
        return dict(out)

    def storage_slot_volumes(self) -> Dict[Tuple[int, int], float]:
        """Aggregate stored volume per (datacenter, slot)."""
        out: Dict[Tuple[int, int], float] = defaultdict(float)
        for e in self.holdover_entries():
            out[(e.src, e.slot)] += e.volume
        return dict(out)

    def entries_for_request(self, request_id: int) -> List[ScheduleEntry]:
        return [e for e in self.entries if e.request_id == request_id]

    def total_transit_volume(self) -> float:
        """Billable GB across all links and slots (hops count separately)."""
        return sum(e.volume for e in self.transit_entries())

    def total_storage_volume(self) -> float:
        """GB-slots of storage used at intermediate datacenters."""
        return sum(e.volume for e in self.holdover_entries())

    def slots_used(self) -> List[int]:
        return sorted({e.slot for e in self.entries})

    def merge(self, other: "TransferSchedule") -> "TransferSchedule":
        """A new schedule containing both sets of entries.

        Merging mixed-semantics schedules is disallowed — the combined
        object could not be audited consistently.
        """
        if other.semantics != self.semantics:
            raise SchedulingError(
                f"cannot merge {self.semantics} and {other.semantics} schedules"
            )
        return TransferSchedule(self.entries + other.entries, semantics=self.semantics)

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    # -- per-file accounting ------------------------------------------------

    def delivered_volume(self, request: TransferRequest) -> float:
        """GB of ``request`` that reach its destination (net inflow)."""
        inflow = sum(
            e.volume
            for e in self.transit_entries()
            if e.request_id == request.request_id and e.dst == request.destination
        )
        outflow = sum(
            e.volume
            for e in self.transit_entries()
            if e.request_id == request.request_id and e.src == request.destination
        )
        return inflow - outflow

    def completion_slot(self, request: TransferRequest) -> Optional[int]:
        """Slot whose end sees the final byte delivered, or None.

        This is the actual transfer time ``T'_k`` measured in slots:
        ``completion_slot - release_slot + 1 <= deadline_slots`` must
        hold for a deadline-feasible schedule.
        """
        arrivals: Dict[int, float] = defaultdict(float)
        for e in self.transit_entries():
            if e.request_id == request.request_id:
                if e.dst == request.destination:
                    arrivals[e.slot] += e.volume
                if e.src == request.destination:
                    arrivals[e.slot] -= e.volume
        if not arrivals:
            return None
        cumulative = 0.0
        for slot in sorted(arrivals):
            cumulative += arrivals[slot]
            if cumulative >= request.size_gb - max(VOLUME_ATOL, 1e-9 * request.size_gb):
                return slot
        return None

    # -- auditing -----------------------------------------------------------

    def validate(
        self,
        requests: List[TransferRequest],
        capacity_fn=None,
        atol: float = 1e-5,
        require_full_delivery: bool = True,
        deadline_slack: int = 0,
    ) -> None:
        """Raise :class:`SchedulingError` unless this schedule is feasible.

        Checks, per file: delivery (full by default; partial schedules
        from the bulk-throughput extension pass
        ``require_full_delivery=False`` and are only checked for
        over-delivery), deadline (no movement outside the window, which
        implies on-time delivery given conservation), and flow
        conservation at every intermediate time-expanded node.  Checks,
        per link and slot: aggregate volume within
        ``capacity_fn(src, dst, slot)`` when provided.
        """
        by_request = {r.request_id: r for r in requests}
        for e in self.entries:
            if e.request_id not in by_request:
                raise SchedulingError(
                    f"schedule references unknown file {e.request_id}"
                )
            req = by_request[e.request_id]
            if not req.release_slot <= e.slot <= req.last_slot + deadline_slack:
                raise SchedulingError(
                    f"file {e.request_id} moves at slot {e.slot}, outside its "
                    f"window [{req.release_slot}, {req.last_slot + deadline_slack}]"
                )

        for req in requests:
            delivered = self.delivered_volume(req)
            tol = max(atol, atol * req.size_gb)
            if require_full_delivery and abs(delivered - req.size_gb) > tol:
                raise SchedulingError(
                    f"file {req.request_id} delivers {delivered:.6f} GB "
                    f"of {req.size_gb:.6f} GB"
                )
            if delivered > req.size_gb + tol:
                raise SchedulingError(
                    f"file {req.request_id} over-delivers: {delivered:.6f} GB "
                    f"of {req.size_gb:.6f} GB"
                )
            if self.semantics == SEMANTICS_STORE_AND_FORWARD:
                self._check_conservation(req, atol, delivered)
            else:
                self._check_conservation_fluid(req, atol)

        if capacity_fn is not None:
            for (src, dst, slot), volume in self.link_slot_volumes().items():
                cap = capacity_fn(src, dst, slot)
                if volume > cap + max(atol, atol * max(1.0, cap)):
                    raise SchedulingError(
                        f"link ({src},{dst}) carries {volume:.6f} GB at slot "
                        f"{slot}, over capacity {cap:.6f}"
                    )

    def _check_conservation(
        self, request: TransferRequest, atol: float, delivered: Optional[float] = None
    ) -> None:
        """Flow conservation for one file at every time-expanded node.

        ``delivered`` overrides the expected source emission for
        partial-delivery schedules (bulk throughput); by default the
        whole file must leave the source.
        """
        emitted = request.size_gb if delivered is None else delivered
        balance: Dict[Tuple[int, int], float] = defaultdict(float)
        for e in self.entries_for_request(request.request_id):
            balance[(e.src, e.slot)] -= e.volume       # leaves tail node
            balance[(e.dst, e.slot + 1)] += e.volume   # enters head node
        source = (request.source, request.release_slot)
        tol = max(atol, atol * request.size_gb)
        for node, net in balance.items():
            if node == source:
                expected = -emitted
            elif node[0] == request.destination:
                # Arrival nodes at the destination absorb flow; partial
                # arrivals across several slots are each non-negative.
                if net < -tol:
                    raise SchedulingError(
                        f"file {request.request_id}: destination node {node} "
                        f"re-emits {-net:.6f} GB"
                    )
                continue
            else:
                expected = 0.0
            if abs(net - expected) > tol:
                raise SchedulingError(
                    f"file {request.request_id}: conservation violated at "
                    f"node {node}: net {net:.6f}, expected {expected:.6f}"
                )

    def _check_conservation_fluid(self, request: TransferRequest, atol: float) -> None:
        """Fluid conservation: within every slot, each intermediate node
        relays exactly what it receives; the source only emits and the
        destination only absorbs."""
        net_out: Dict[Tuple[int, int], float] = defaultdict(float)
        for e in self.entries_for_request(request.request_id):
            if e.kind is ArcKind.HOLDOVER:
                raise SchedulingError(
                    f"file {request.request_id}: fluid schedules cannot "
                    "contain holdover entries"
                )
            net_out[(e.src, e.slot)] += e.volume
            net_out[(e.dst, e.slot)] -= e.volume
        tol = max(atol, atol * request.size_gb)
        for (node, slot), net in net_out.items():
            if node == request.source:
                if net < -tol:
                    raise SchedulingError(
                        f"file {request.request_id}: source absorbs "
                        f"{-net:.6f} GB at slot {slot}"
                    )
            elif node == request.destination:
                if net > tol:
                    raise SchedulingError(
                        f"file {request.request_id}: destination emits "
                        f"{net:.6f} GB at slot {slot}"
                    )
            elif abs(net) > tol:
                raise SchedulingError(
                    f"file {request.request_id}: fluid conservation violated "
                    f"at node {node}, slot {slot}: net {net:.6f}"
                )

    def __repr__(self) -> str:
        return (
            f"TransferSchedule(semantics={self.semantics!r}, "
            f"entries={len(self.entries)}, "
            f"transit_gb={self.total_transit_volume():.3f})"
        )
