"""The online Postcard controller.

Implements the paper's per-slot optimization (Secs. IV-V): at each
slot ``t`` the newly released files ``K(t)`` are routed and scheduled
jointly by one LP over the time-expanded graph, minimizing the
increase of the charged volumes ``X_ij`` on top of everything already
committed.

History: the seed PR introduced the from-scratch per-slot pipeline
(fresh graph, operator-algebra assembly, cold solves); PR 3 made that
pipeline incremental — :class:`~repro.timeexp.cache.GraphCache` reuse,
direct assembly, and warm starts threaded between consecutive solves —
behind ``incremental=``/``warm_start=`` flags that default on; PR 4's
:class:`~repro.heuristic.hybrid.HybridScheduler` reuses this scheduler
unchanged as its escalation lane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import InfeasibleError, SchedulingError
from repro.core.formulation import STORAGE_FULL, build_postcard_model
from repro.core.interfaces import Scheduler
from repro.core.schedule import TransferSchedule
from repro.core.state import NetworkState
from repro.lp.warm import WarmStart
from repro.net.topology import Topology
from repro.obs import registry as obs
from repro.timeexp.cache import GraphCache
from repro.traffic.spec import TransferRequest

#: What to do when a slot's files cannot all meet their deadlines.
ON_INFEASIBLE_RAISE = "raise"
ON_INFEASIBLE_DROP = "drop"


def shed_until_feasible(solve_fn, requests, state):
    """Drop files until ``solve_fn(accepted)`` succeeds.

    Two-stage policy shared by all optimizing schedulers:

    1. Files that are infeasible *alone* (e.g. a deadline shorter than
       any admissible path) are dropped first — no amount of shedding
       other traffic can save them.
    2. If the set is still jointly infeasible (congestion), shed the
       most capacity-hungry file (largest desired rate, ties by size)
       one at a time.

    Dropped files are recorded via ``state.reject``.  Returns
    ``(schedule_or_None, accepted)``; ``None`` means everything was
    shed.
    """
    accepted = list(requests)
    try:
        return solve_fn(accepted), accepted
    except InfeasibleError:
        pass

    lonely_feasible = []
    for request in accepted:
        try:
            solve_fn([request])
            lonely_feasible.append(request)
        except InfeasibleError:
            state.reject(request)
    accepted = lonely_feasible

    while accepted:
        try:
            return solve_fn(accepted), accepted
        except InfeasibleError:
            victim = max(accepted, key=lambda r: (r.desired_rate, r.size_gb))
            accepted.remove(victim)
            state.reject(victim)
    return None, []


@dataclass
class LpPlan:
    """A solved-but-uncommitted slot: the LP's output, state untouched.

    Produced by :meth:`PostcardScheduler.plan_slot`, applied by
    :meth:`PostcardScheduler.commit_plan`.  The split exists for the
    solver watchdog (PR 7): the solve — the part that can hang — runs
    with zero state mutation, so a timed-out solve can be abandoned
    without leaving half a slot in the ledger; the commit is cheap and
    runs only on the winning path.
    """

    slot: int
    schedule: Optional[TransferSchedule]
    accepted: List[TransferRequest] = field(default_factory=list)
    rejected: List[TransferRequest] = field(default_factory=list)


class _RejectRecorder:
    """A ``state.reject``-shaped shim that only collects (plan phase)."""

    def __init__(self) -> None:
        self.rejected: List[TransferRequest] = []

    def reject(self, request: TransferRequest) -> None:
        self.rejected.append(request)


class PostcardScheduler(Scheduler):
    """Runs the Sec. V optimization every slot and commits the result.

    Parameters
    ----------
    topology:
        The inter-datacenter network.
    horizon:
        Number of slots in the charging period (for billing).
    backend:
        LP backend name (``"highs"`` by default).
    storage:
        ``"full"`` or ``"destination_only"`` (ablation; see
        :func:`~repro.core.formulation.build_postcard_model`).
    on_infeasible:
        ``"raise"`` propagates :class:`InfeasibleError`;  ``"drop"``
        greedily rejects the most capacity-hungry files (largest
        ``size/deadline``) until the rest fit, recording rejects in
        ``state.rejected``.
    incremental:
        When True (the default), reuse the previous slot's
        time-expanded arcs through a :class:`GraphCache` and assemble
        the LP with the direct fast path.  Produces bit-identical
        models to the from-scratch reference — only faster.
    warm_start:
        When True (the default), thread the previous slot's solution
        into the backend as a :class:`~repro.lp.warm.WarmStart` hint.
        Backends that cannot use it ignore it, so results never depend
        on the flag.
    """

    name = "postcard"

    def __init__(
        self,
        topology: Topology,
        horizon: int,
        backend: str = "highs",
        storage: str = STORAGE_FULL,
        on_infeasible: str = ON_INFEASIBLE_RAISE,
        storage_capacity: float = float("inf"),
        storage_price: float = 0.0,
        cost_fn_factory=None,
        incremental: bool = True,
        warm_start: bool = True,
    ):
        if on_infeasible not in (ON_INFEASIBLE_RAISE, ON_INFEASIBLE_DROP):
            raise SchedulingError(f"unknown on_infeasible policy {on_infeasible!r}")
        self._state = NetworkState(topology, horizon)
        self.backend = backend
        self.storage = storage
        self.on_infeasible = on_infeasible
        self.storage_capacity = storage_capacity
        self.storage_price = storage_price
        self.cost_fn_factory = cost_fn_factory
        self.incremental = incremental
        self.warm_start = warm_start
        self._graph_cache = GraphCache(topology) if incremental else None
        self._warm: Optional[WarmStart] = None
        #: objective value of the last solved slot (cost per interval).
        self.last_objective: Optional[float] = None
        #: Optional :class:`~repro.forecast.provider.ForecastProvider`;
        #: when active, its predictions join the committed volume in
        #: the LP's charge rows (never the capacity rows).
        self.forecast = None

    @property
    def state(self) -> NetworkState:
        return self._state

    def on_slot(self, slot: int, requests: List[TransferRequest]) -> TransferSchedule:
        if not requests:
            return TransferSchedule()
        return self.commit_plan(self.plan_slot(slot, requests))

    def plan_slot(self, slot: int, requests: List[TransferRequest]) -> LpPlan:
        """Solve the slot without committing anything.

        Pure with respect to :class:`NetworkState`: rejections decided
        by the shedding policy are *collected* on the plan, not
        recorded.  (The warm-start hint and the incremental graph cache
        do advance — they are performance state, rebuilt from scratch
        at worst.)  Apply the result with :meth:`commit_plan`, or drop
        it on the floor — e.g. when the solver watchdog times the slot
        out — and the ledger never knows the solve happened.
        """
        for request in requests:
            if request.release_slot != slot:
                raise SchedulingError(
                    f"file {request.request_id} released at "
                    f"{request.release_slot}, scheduled at {slot}"
                )
        if self.on_infeasible == ON_INFEASIBLE_RAISE:
            return LpPlan(slot, self._solve(requests), list(requests), [])
        recorder = _RejectRecorder()
        schedule, accepted = shed_until_feasible(
            self._solve, requests, recorder
        )
        return LpPlan(slot, schedule, accepted, recorder.rejected)

    def commit_plan(self, plan: LpPlan) -> TransferSchedule:
        """Apply an :class:`LpPlan`: record rejections, commit the rest."""
        for request in plan.rejected:
            self._state.reject(request)
        if plan.schedule is None:
            return TransferSchedule()
        self._state.commit(plan.schedule, plan.accepted)
        return plan.schedule

    def _solve(self, requests: List[TransferRequest]) -> TransferSchedule:
        with obs.span("scheduler.solve", scheduler=self.name,
                      requests=len(requests)):
            forecast = self.forecast
            predicted_volume_fn = None
            if (
                forecast is not None
                and forecast.active
                and forecast.config.lp_charge_rows
            ):
                predicted_volume_fn = forecast.predicted_volume
            with obs.span("scheduler.build_model"):
                built = build_postcard_model(
                    self._state,
                    requests,
                    storage=self.storage,
                    storage_capacity=self.storage_capacity,
                    storage_price=self.storage_price,
                    cost_fn_factory=self.cost_fn_factory,
                    predicted_volume_fn=predicted_volume_fn,
                    graph_cache=self._graph_cache,
                    assembly="fast" if self.incremental else "legacy",
                )
            schedule, solution = built.solve(
                backend=self.backend,
                warm=self._warm if self.warm_start else None,
            )
            if self.warm_start:
                self._warm = WarmStart.from_solution(built.model, solution)
        self.last_objective = solution.objective
        return schedule
