"""Soft deadlines: lateness as a priced constraint instead of a hard one.

The paper's constraint (5) is hard — miss the window, and the problem
is infeasible.  Real SLAs are softer: delivering a backup an hour late
costs goodwill (or contractual penalty), not infinity.  This module
formulates that variant: each file may run up to ``extension`` slots
past its deadline, paying ``lateness_penalty`` dollars per GB per late
slot; the optimizer then trades WAN cost against SLA cost.

With ``extension=0`` this is exactly the hard-deadline LP of
:func:`repro.core.formulation.build_postcard_model`; with a generous
extension and a steep penalty it behaves identically on feasible
instances but *degrades gracefully* on overloaded ones — the use case
that makes the drop policy unnecessary.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import SchedulingError
from repro.core.schedule import ScheduleEntry, TransferSchedule
from repro.core.state import NetworkState
from repro.lp import LinExpr, Model, Solution, Variable
from repro.timeexp.graph import Arc, ArcKind, TimeExpandedGraph
from repro.traffic.spec import TransferRequest
from repro.units import VOLUME_ATOL


@dataclass
class SoftDeadlineResult:
    """A solved soft-deadline round."""

    schedule: TransferSchedule
    solution: Solution
    #: GB-slots of lateness per request id (0.0 = fully on time).
    lateness: Dict[int, float]

    @property
    def total_lateness(self) -> float:
        return sum(self.lateness.values())


def build_soft_deadline_model(
    state: NetworkState,
    requests: List[TransferRequest],
    extension: int,
    lateness_penalty: float,
    name: str = "postcard-soft",
) -> Tuple[Model, Dict[Tuple[int, Arc], Variable], TimeExpandedGraph, Dict]:
    """Assemble the lateness-priced LP; see :func:`solve_soft_deadline`."""
    if not requests:
        raise SchedulingError("need at least one request")
    if extension < 0:
        raise SchedulingError("extension must be non-negative")
    if lateness_penalty < 0:
        raise SchedulingError("lateness_penalty must be non-negative")

    start = min(r.release_slot for r in requests)
    end = max(r.release_slot + r.deadline_slots for r in requests) + extension
    graph = TimeExpandedGraph(
        state.topology,
        start_slot=start,
        horizon=end - start,
        capacity_fn=state.residual_capacity,
    )

    model = Model(name)
    flow_vars: Dict[Tuple[int, Arc], Variable] = {}
    arc_users: Dict[Arc, List[Variable]] = defaultdict(list)
    penalty_terms: List[Tuple[float, Variable]] = []
    #: (request_id) -> [(late_slots, var)] for lateness accounting.
    lateness_terms: Dict[int, List[Tuple[float, Variable]]] = defaultdict(list)

    for request in requests:
        rid = request.request_id
        first = request.release_slot
        hard_deadline_layer = request.release_slot + request.deadline_slots
        last_exclusive = hard_deadline_layer + extension
        balance: Dict[Tuple[int, int], List[Tuple[float, Variable]]] = defaultdict(list)
        for arc in graph.arcs:
            if not first <= arc.slot < last_exclusive:
                continue
            if arc.kind is ArcKind.TRANSIT and arc.capacity <= 0:
                continue
            var = model.add_variable(f"M[{rid},{arc.src},{arc.dst},{arc.slot}]")
            flow_vars[(rid, arc)] = var
            if arc.kind is ArcKind.TRANSIT:
                arc_users[arc].append(var)
                # Arrival at the destination after the hard deadline
                # pays per GB per late slot.
                if arc.dst == request.destination:
                    late = max(0, arc.slot + 1 - hard_deadline_layer)
                    if late > 0 and lateness_penalty > 0:
                        penalty_terms.append((lateness_penalty * late, var))
                    if late > 0:
                        lateness_terms[rid].append((float(late), var))
            balance[arc.tail].append((1.0, var))
            balance[arc.head].append((-1.0, var))

        source = (request.source, first)
        sink = (request.destination, last_exclusive)
        if source not in balance:
            raise SchedulingError(
                f"file {rid}: no admissible arc leaves its source"
            )
        for node, terms in balance.items():
            net = LinExpr.from_terms(terms)
            if node == source:
                model.add_constraint(net == request.size_gb, name=f"src[{rid}]")
            elif node == sink:
                model.add_constraint(net == -request.size_gb, name=f"snk[{rid}]")
            else:
                model.add_constraint(net == 0.0, name=f"cons[{rid},{node}]")

    capacity_rows = {}
    for arc, users in arc_users.items():
        if arc.capacity != float("inf"):
            capacity_rows[(arc.src, arc.dst, arc.slot)] = model.add_constraint(
                LinExpr.sum(users) <= arc.capacity,
                name=f"cap[{arc.src},{arc.dst},{arc.slot}]",
            )

    by_link: Dict[Tuple[int, int], Dict[int, List[Variable]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for arc, users in arc_users.items():
        by_link[arc.link_key][arc.slot].extend(users)

    objective_terms: List[Tuple[float, Variable]] = list(penalty_terms)
    fixed_cost = 0.0
    for link in state.topology.links:
        key = link.key
        prior = state.charged_volume(*key)
        if key not in by_link:
            fixed_cost += link.price * prior
            continue
        x = model.add_variable(f"X[{key[0]},{key[1]}]", lb=prior)
        for slot, users in by_link[key].items():
            committed = state.committed_volume(key[0], key[1], slot)
            model.add_constraint(
                x >= LinExpr.sum(users) + committed, name=f"chg[{key},{slot}]"
            )
        objective_terms.append((link.price, x))

    model.minimize(LinExpr.from_terms(objective_terms, constant=fixed_cost))
    return model, flow_vars, graph, lateness_terms


def solve_soft_deadline(
    state: NetworkState,
    requests: List[TransferRequest],
    extension: int = 2,
    lateness_penalty: float = 10.0,
    backend: str = "highs",
) -> SoftDeadlineResult:
    """Optimize with priced lateness; returns schedule + lateness report.

    The returned schedule may move data after file deadlines — audit it
    with ``schedule.validate(requests, deadline_slack=extension)``.
    """
    model, flow_vars, _graph, lateness_terms = build_soft_deadline_model(
        state, requests, extension, lateness_penalty
    )
    solution = model.solve(backend=backend)

    destination_of = {r.request_id: r.destination for r in requests}
    entries = []
    for (rid, arc), var in flow_vars.items():
        volume = solution.value(var)
        if volume <= VOLUME_ATOL:
            continue
        # Holdover at a file's own destination is delivered data riding
        # to the (extended) sink layer — bookkeeping, not scheduling.
        if arc.kind is ArcKind.HOLDOVER and arc.src == destination_of[rid]:
            continue
        entries.append(
            ScheduleEntry(rid, arc.src, arc.dst, arc.slot, volume, arc.kind)
        )
    lateness = {
        rid: sum(late * solution.value(var) for late, var in terms)
        for rid, terms in lateness_terms.items()
    }
    for request in requests:
        lateness.setdefault(request.request_id, 0.0)
    return SoftDeadlineResult(
        schedule=TransferSchedule(entries),
        solution=solution,
        lateness={rid: max(0.0, v) for rid, v in lateness.items()},
    )
