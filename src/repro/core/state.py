"""The online controller's view of the network at time t.

Because Postcard is online, each slot's optimization must respect what
earlier slots already committed: future link capacity consumed by
in-flight transfers, and the charged volume ``X_ij(t-1)`` each link has
already accumulated (traffic up to that peak is "already paid" for the
rest of the charging period).  :class:`NetworkState` tracks both, on top
of a :class:`~repro.charging.ledger.TrafficLedger`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.charging.ledger import TrafficLedger
from repro.charging.schemes import ChargingScheme
from repro.core.schedule import TransferSchedule
from repro.net.topology import LinkKey, Topology
from repro.obs import registry as obs
from repro.traffic.spec import TransferRequest


class NetworkState:
    """Committed traffic, paid volumes, and completion records."""

    def __init__(self, topology: Topology, horizon: int):
        self.topology = topology
        self.horizon = horizon
        self.ledger = TrafficLedger(topology, horizon)
        #: X_ij(t-1): the running per-link peak slot volume, including
        #: volumes committed to *future* slots by in-flight transfers.
        self._charged: Dict[LinkKey, float] = {
            link.key: 0.0 for link in topology.links
        }
        #: Completed requests: request_id -> completion slot.
        self.completions: Dict[int, int] = {}
        #: Requests that could not be scheduled (dropped by policy).
        self.rejected: List[TransferRequest] = []
        #: GB-slots of intermediate storage committed so far.
        self.storage_used: float = 0.0
        #: Optional :class:`repro.sim.faults.FaultModel`; *visibly*
        #: downed link-slots (announced outages, or surprise outages
        #: already revealed by execution) report zero residual
        #: capacity, so every scheduler transparently routes around
        #: outages it is allowed to know about.  Surprise outages stay
        #: invisible here until the engine detects them mid-run.
        self.fault_model = None
        #: Optional :class:`repro.net.schedule.LinkSchedule`; link-slots
        #: outside a scheduled link's availability windows report zero
        #: residual capacity, so every scheduler routes — and
        #: time-shifts — around dark windows through this one gate.
        self.link_schedule = None
        #: Slot at which the current charging period began.
        self.period_start: int = 0
        #: Bills of completed charging periods (dollars each).
        self.banked_period_bills: List[float] = []

    # -- inputs to the optimizer -----------------------------------------

    def charged_volume(self, src: int, dst: int) -> float:
        """X_ij(t-1) for one link."""
        return self._charged[(src, dst)]

    def charged_snapshot(self) -> Dict[LinkKey, float]:
        return dict(self._charged)

    def committed_volume(self, src: int, dst: int, slot: int) -> float:
        """B_ij(n): volume already committed on (src, dst) at slot n."""
        return self.ledger.volume(src, dst, slot)

    def residual_capacity(self, src: int, dst: int, slot: int) -> float:
        """Capacity left for new traffic on (src, dst) during slot n
        (zero while the link is *visibly* down, if a fault model is
        attached — surprise outages are not knowable here — and zero
        outside a link schedule's availability windows)."""
        if self.fault_model is not None and self.fault_model.is_visible_down(
            src, dst, slot
        ):
            return 0.0
        if self.link_schedule is not None and not self.link_schedule.is_up(
            src, dst, slot
        ):
            return 0.0
        return self.ledger.residual_capacity(src, dst, slot)

    def paid_headroom(self, src: int, dst: int, slot: int) -> float:
        """Volume (src, dst) can carry at slot n *free of extra charge*:
        up to the already-paid peak, bounded by residual capacity."""
        free = self._charged[(src, dst)] - self.committed_volume(src, dst, slot)
        return max(0.0, min(free, self.residual_capacity(src, dst, slot)))

    def current_cost_per_slot(self) -> float:
        """Sum of a_ij * X_ij(t-1): the bill per interval if nothing
        further is sent this period."""
        return sum(
            link.price * self._charged[link.key] for link in self.topology.links
        )

    # -- committing decisions ----------------------------------------------

    def commit(
        self,
        schedule: TransferSchedule,
        requests: List[TransferRequest],
        validate: bool = True,
    ) -> None:
        """Apply a schedule: record traffic, update X_ij, log completions.

        With ``validate=True`` (default) the schedule is audited against
        per-slot residual capacities *before* anything is recorded, so a
        failed commit leaves the state untouched.
        """
        if validate:
            schedule.validate(requests, capacity_fn=self.residual_capacity)

        recorded_gb = 0.0
        for (src, dst, slot), volume in schedule.link_slot_volumes().items():
            self.ledger.record(src, dst, slot, volume)
            recorded_gb += volume
            new_level = self.ledger.volume(src, dst, slot)
            if new_level > self._charged[(src, dst)]:
                self._charged[(src, dst)] = new_level

        self.storage_used += schedule.total_storage_volume()

        if obs.get_registry().enabled:
            # The ledger-charge leg of a request trace: inside the slot
            # loop's trace() context these events carry the batch's
            # trace ids, closing the intake -> lane -> solve -> charge
            # chain.
            obs.counter("ledger.charged_gb", round(recorded_gb, 6),
                        files=len(requests))
            obs.gauge("ledger.cost_per_slot", self.current_cost_per_slot())

        for request in requests:
            completion = schedule.completion_slot(request)
            if completion is None:
                raise SchedulingError(
                    f"commit: file {request.request_id} is not delivered "
                    "by the schedule"
                )
            self.completions[request.request_id] = completion

    def void_traffic(self, src: int, dst: int, slot: int, volume: float) -> None:
        """Refund committed traffic that a surprise outage prevented.

        Removes the volume from the ledger (see
        :meth:`TrafficLedger.void`) and re-derives the link's charged
        volume ``X_ij`` from the surviving samples, so the bill never
        includes traffic that physically could not flow.  The recomputed
        peak spans the current charging period including future
        committed slots, matching how :meth:`commit` raised it.
        """
        self.ledger.void(src, dst, slot, volume)
        usage = self.ledger.usage(src, dst)
        end = max(usage.last_slot() + 1, self.period_start + 1)
        self._charged[(src, dst)] = self.ledger.peak_in_range(
            src, dst, self.period_start, end
        )

    def reject(self, request: TransferRequest) -> None:
        """Record a file the scheduling policy chose to drop."""
        self.rejected.append(request)
        obs.counter("scheduler.rejected")

    def preview_cost(self, schedule: TransferSchedule) -> float:
        """Cost per slot if ``schedule`` were committed — without
        committing it.

        Answers the operator's "what would this plan do to the bill?"
        question: for every link the new peak is
        ``max(X_ij(t-1), max_n (B_ij(n) + schedule load))``.
        """
        peaks = dict(self._charged)
        for (src, dst, slot), volume in schedule.link_slot_volumes().items():
            level = self.committed_volume(src, dst, slot) + volume
            if level > peaks[(src, dst)]:
                peaks[(src, dst)] = level
        return sum(
            link.price * peaks[link.key] for link in self.topology.links
        )

    # -- billing -----------------------------------------------------------

    def start_new_period(self, boundary_slot: int) -> float:
        """Close the charging period ending at ``boundary_slot``.

        The closed period's bill (max-charging over its own samples) is
        banked and returned.  Crucially, the paid peaks **expire**: the
        new period's charged volumes ``X_ij`` restart at the largest
        volume already committed to slots at or after the boundary by
        in-flight transfers — nothing else is free anymore.
        """
        if boundary_slot <= self.period_start:
            raise SchedulingError(
                f"period boundary {boundary_slot} does not advance past "
                f"{self.period_start}"
            )
        bill = self.ledger.period_cost(self.period_start, boundary_slot)
        self.banked_period_bills.append(bill)
        self.period_start = boundary_slot
        for link in self.topology.links:
            self._charged[link.key] = self.ledger.peak_in_range(
                link.src, link.dst, boundary_slot, boundary_slot + self.horizon
            )
        return bill

    def cost_per_slot(self, scheme: Optional[ChargingScheme] = None) -> float:
        """Average billed cost per slot from the ledger's samples.

        Default scheme is the paper's 100-th percentile, under which
        this equals :meth:`current_cost_per_slot` once all committed
        slots lie inside the charging period.
        """
        return self.ledger.cost_per_slot(scheme)

    def total_cost(self, scheme: Optional[ChargingScheme] = None) -> float:
        return self.ledger.total_cost(scheme)

    def __repr__(self) -> str:
        return (
            f"NetworkState(completions={len(self.completions)}, "
            f"rejected={len(self.rejected)}, "
            f"cost_per_slot={self.current_cost_per_slot():.3f})"
        )
