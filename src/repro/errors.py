"""Exception hierarchy for the Postcard reproduction.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch one type to handle any
library-level failure while still letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ModelError(ReproError):
    """An optimization model was built or used inconsistently.

    Examples: adding a constraint that references a variable from a
    different model, or asking for the value of a variable before the
    model has been solved.
    """


class SolverError(ReproError):
    """A solver backend failed to produce a usable answer."""


class InfeasibleError(SolverError):
    """The optimization problem admits no feasible point.

    For Postcard this typically means the requested transfers cannot all
    meet their deadlines under the residual link capacities.
    """

    def __init__(self, message: str = "problem is infeasible", *, detail: str = ""):
        super().__init__(message)
        self.detail = detail


class UnboundedError(SolverError):
    """The optimization problem is unbounded below (for minimization)."""


class TopologyError(ReproError):
    """An inter-datacenter topology was specified inconsistently."""


class ChargingError(ReproError):
    """A charging scheme or cost function was used incorrectly."""


class WorkloadError(ReproError):
    """A transfer request or workload generator was invalid."""


class SchedulingError(ReproError):
    """A scheduler produced or was given an inconsistent schedule."""


class SimulationError(ReproError):
    """The simulation engine detected an internal inconsistency."""


class RecoveryError(SimulationError):
    """Salvage-and-replan bookkeeping went inconsistent.

    Raised when post-disruption reconstruction of a file's remaining
    supply distribution disagrees with what the ledger recorded — a
    bug, never an expected runtime outcome (infeasible recoveries are
    recorded as SLO violations instead).
    """


class ObservabilityError(ReproError):
    """An instrumentation artifact (event file, sink) was invalid."""


class ServiceError(ReproError):
    """The transfer-broker daemon was used or configured incorrectly."""


class WalError(ServiceError):
    """The write-ahead log was used inconsistently (not corruption).

    Corruption of the log *file* is never an error: a torn or
    checksum-failed tail is expected after a crash and is silently
    truncated during recovery.  This type covers programming mistakes —
    appending to a closed log, replaying records against the wrong
    snapshot generation, an unknown record type.
    """


class RecoveryVerifyError(ServiceError):
    """A post-recovery invariant check failed.

    Raised by :func:`repro.service.verify.verify_recovery` when a
    resumed broker's books are inconsistent (ledger conservation,
    double-charged ids, watermark regression, clock regression).  A
    broker must refuse to serve from such a state — continuing would
    silently corrupt every bill downstream.
    """


class ProtocolError(ServiceError):
    """A wire message violated the service's NDJSON protocol."""


class BackpressureError(ServiceError):
    """The intake queue is saturated; the client should retry later.

    Carries ``retry_after_s``, the server's estimate of when capacity
    will free up (one virtual slot tick by default) — the value the
    daemon echoes back in its reject-with-retry-after response.
    """

    def __init__(self, message: str = "intake queue is full", *, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s
