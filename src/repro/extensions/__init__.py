"""Sec. VI: other problems the time-expansion approach solves.

* :mod:`repro.extensions.bulk` — NetStitcher-style bulk backhaul:
  maximize delivered volume using only leftover, already-paid
  bandwidth (objective (11)), generalized from Laoutaris et al.'s
  single file to multiple files with individual deadlines.
* :mod:`repro.extensions.budget` — given a budget on traffic costs,
  maximize the number of files transferred.
* :mod:`repro.extensions.percentile` — a q < 100 percentile-aware
  scheduler that spends each link's free burst slots (beyond the
  paper, which fixes q = 100 for tractability).
"""

from repro.extensions.bulk import BulkTransferResult, maximize_bulk_throughput
from repro.extensions.budget import BudgetResult, maximize_transfers_under_budget
from repro.extensions.percentile import PercentileAwareScheduler
from repro.extensions.multicast import MulticastResult, solve_multicast

__all__ = [
    "MulticastResult",
    "solve_multicast",
    "BulkTransferResult",
    "maximize_bulk_throughput",
    "BudgetResult",
    "maximize_transfers_under_budget",
    "PercentileAwareScheduler",
]
