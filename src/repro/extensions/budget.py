"""Budget-constrained transfer admission (Sec. VI, second problem).

"Given a certain budget on costs incurred by inter-datacenter traffic,
what is the maximum number of files that a cloud provider can transfer?"

The LP relaxation transfers fractions ``y_k in [0, 1]`` of each file,
maximizes ``sum(y_k)`` subject to the Postcard charge structure and the
budget ``sum(a_ij * X_ij) * I <= B``.  Because files are atomic in
practice, a greedy rounding pass then admits whole files in decreasing
fractional order, re-checking the budget with an exact Postcard solve
at every step; the fractional optimum upper-bounds the integral one, so
the gap is reported alongside the result.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import InfeasibleError, SchedulingError
from repro.core.formulation import build_postcard_model
from repro.core.schedule import ScheduleEntry, TransferSchedule
from repro.core.state import NetworkState
from repro.lp import LinExpr, Model, Variable
from repro.timeexp.graph import Arc, ArcKind, TimeExpandedGraph
from repro.traffic.spec import TransferRequest
from repro.units import VOLUME_ATOL


@dataclass
class BudgetResult:
    """Outcome of budget-constrained admission."""

    #: Files admitted by the greedy rounding (all-or-nothing).
    admitted: List[TransferRequest]
    #: Their committed schedule (None when nothing was admitted).
    schedule: Optional[TransferSchedule]
    #: Cost per slot of the admitted set.
    cost_per_slot: float
    #: Fractional files transferred by the LP relaxation (upper bound).
    fractional_optimum: float
    #: Fractions y_k of the relaxation, per request id.
    fractions: Dict[int, float]

    @property
    def admitted_count(self) -> int:
        return len(self.admitted)


def _fractional_relaxation(
    state: NetworkState,
    requests: List[TransferRequest],
    budget_per_slot: float,
    backend: str,
) -> Tuple[float, Dict[int, float]]:
    """Solve the y_k in [0,1] relaxation; returns (objective, fractions)."""
    start = min(r.release_slot for r in requests)
    end = max(r.release_slot + r.deadline_slots for r in requests)
    graph = TimeExpandedGraph(
        state.topology,
        start_slot=start,
        horizon=end - start,
        capacity_fn=state.residual_capacity,
    )

    model = Model("budget_relaxation")
    arc_users: Dict[Arc, List[Variable]] = defaultdict(list)
    fraction_vars: Dict[int, Variable] = {}

    for request in requests:
        rid = request.request_id
        balance: Dict[Tuple[int, int], List[Tuple[float, Variable]]] = defaultdict(list)
        for arc in graph.arcs_for_request(request):
            if arc.kind is ArcKind.TRANSIT and arc.capacity <= 0:
                continue
            var = model.add_variable(f"M[{rid},{arc.src},{arc.dst},{arc.slot}]")
            if arc.kind is ArcKind.TRANSIT:
                arc_users[arc].append(var)
            balance[arc.tail].append((1.0, var))
            balance[arc.head].append((-1.0, var))

        y = model.add_variable(f"y[{rid}]", lb=0.0, ub=1.0)
        fraction_vars[rid] = y
        source = graph.source_node(request)
        sink = graph.sink_node(request)
        for node, terms in balance.items():
            net = LinExpr.from_terms(terms)
            if node == source:
                model.add_constraint(
                    net - request.size_gb * y == 0.0, name=f"src[{rid}]"
                )
            elif node == sink:
                model.add_constraint(
                    net + request.size_gb * y == 0.0, name=f"snk[{rid}]"
                )
            else:
                model.add_constraint(net == 0.0, name=f"cons[{rid},{node[0]},{node[1]}]")

    for arc, users in arc_users.items():
        if arc.capacity != float("inf"):
            model.add_constraint(
                LinExpr.sum(users) <= arc.capacity,
                name=f"cap[{arc.src},{arc.dst},{arc.slot}]",
            )

    # Charge structure + budget.
    by_link: Dict[Tuple[int, int], Dict[int, List[Variable]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for arc, users in arc_users.items():
        by_link[arc.link_key][arc.slot].extend(users)

    budget_terms: List[Tuple[float, Variable]] = []
    fixed_cost = 0.0
    for link in state.topology.links:
        key = link.key
        prior = state.charged_volume(*key)
        if key not in by_link:
            fixed_cost += link.price * prior
            continue
        x = model.add_variable(f"X[{key[0]},{key[1]}]", lb=prior)
        for slot, users in by_link[key].items():
            committed = state.committed_volume(key[0], key[1], slot)
            model.add_constraint(
                x >= LinExpr.sum(users) + committed,
                name=f"chg[{key[0]},{key[1]},{slot}]",
            )
        budget_terms.append((link.price, x))

    model.add_constraint(
        LinExpr.from_terms(budget_terms, constant=fixed_cost) <= budget_per_slot,
        name="budget",
    )
    model.maximize(LinExpr.sum(fraction_vars.values()))
    solution = model.solve(backend=backend)
    fractions = {rid: solution.value(var) for rid, var in fraction_vars.items()}
    return solution.objective, fractions


def maximize_transfers_under_budget(
    state: NetworkState,
    requests: List[TransferRequest],
    budget_per_slot: float,
    backend: str = "highs",
) -> BudgetResult:
    """Admit as many whole files as the per-slot budget allows.

    ``budget_per_slot`` is ``B / I`` in the paper's notation: the
    largest tolerable value of ``sum(a_ij * X_ij)``.  The state is NOT
    mutated; callers commit the returned schedule themselves if they
    accept the admission decision.
    """
    if not requests:
        raise SchedulingError("need at least one candidate request")
    if budget_per_slot < state.current_cost_per_slot() - 1e-9:
        raise SchedulingError(
            "budget is below the cost already committed "
            f"({budget_per_slot:g} < {state.current_cost_per_slot():g})"
        )

    frac_opt, fractions = _fractional_relaxation(
        state, requests, budget_per_slot, backend
    )

    # Greedy rounding: try files in decreasing fractional value; a file
    # is kept if the exact Postcard optimum of the kept set fits the
    # budget.
    order = sorted(requests, key=lambda r: fractions[r.request_id], reverse=True)
    admitted: List[TransferRequest] = []
    best_schedule: Optional[TransferSchedule] = None
    best_cost = state.current_cost_per_slot()
    for candidate in order:
        if fractions[candidate.request_id] <= 1e-9:
            break
        trial = admitted + [candidate]
        try:
            built = build_postcard_model(state, trial)
            schedule, solution = built.solve(backend=backend)
        except InfeasibleError:
            continue
        if solution.objective <= budget_per_slot + 1e-6:
            admitted = trial
            best_schedule = schedule
            best_cost = solution.objective

    return BudgetResult(
        admitted=admitted,
        schedule=best_schedule,
        cost_per_slot=best_cost,
        fractional_optimum=frac_opt,
        fractions=fractions,
    )
