"""Bulk background transfers over leftover bandwidth (objective (11)).

The cloud provider has already paid for each link's charged volume
``X_ij(t-1)``; any slot where a link carries less than that is free
capacity.  Following Sec. VI (and NetStitcher), bulk delay-tolerant
files — backups, data migration — should ride exclusively on this
leftover bandwidth, delivering as much volume as possible within each
file's deadline without increasing any link's bill.

Interpretation note: the paper states objective (11) "with all
constraints remaining the same", but keeping the exact-delivery
constraints (8) would make the objective a constant.  The sensible (and
NetStitcher-consistent) reading implemented here relaxes delivery to
*at most* ``F_k`` per file and maximizes the total delivered volume;
files may be partially transferred when free bandwidth is scarce.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.core.schedule import ScheduleEntry, TransferSchedule
from repro.core.state import NetworkState
from repro.lp import LinExpr, Model, Variable
from repro.timeexp.graph import Arc, ArcKind, TimeExpandedGraph
from repro.traffic.spec import TransferRequest
from repro.units import VOLUME_ATOL


@dataclass
class BulkTransferResult:
    """Outcome of a bulk-throughput maximization."""

    schedule: TransferSchedule
    #: Delivered GB per request id (<= the request's size).
    delivered: Dict[int, float]
    #: Total delivered GB (the optimal objective (11) value).
    total_delivered: float

    def fraction_delivered(self, request: TransferRequest) -> float:
        return self.delivered.get(request.request_id, 0.0) / request.size_gb


def maximize_bulk_throughput(
    state: NetworkState,
    requests: List[TransferRequest],
    backend: str = "highs",
    weights: Optional[Dict[int, float]] = None,
) -> BulkTransferResult:
    """Maximize (weighted) delivered bulk volume over paid headroom.

    ``weights`` maps request ids to objective weights (default 1.0
    each); weighting lets callers prioritize, say, compliance backups
    over cache warmups.
    """
    if not requests:
        raise SchedulingError("maximize_bulk_throughput needs at least one request")

    start = min(r.release_slot for r in requests)
    end = max(r.release_slot + r.deadline_slots for r in requests)
    # Free capacity only: the paid headroom of each link-slot.
    graph = TimeExpandedGraph(
        state.topology,
        start_slot=start,
        horizon=end - start,
        capacity_fn=state.paid_headroom,
    )

    model = Model("bulk_throughput")
    flow_vars: Dict[Tuple[int, Arc], Variable] = {}
    arc_users: Dict[Arc, List[Variable]] = defaultdict(list)
    delivered_vars: Dict[int, Variable] = {}
    objective_terms: List[Tuple[float, Variable]] = []

    for request in requests:
        rid = request.request_id
        balance: Dict[Tuple[int, int], List[Tuple[float, Variable]]] = defaultdict(list)
        for arc in graph.arcs_for_request(request):
            if arc.kind is ArcKind.TRANSIT and arc.capacity <= 0:
                continue
            var = model.add_variable(f"M[{rid},{arc.src},{arc.dst},{arc.slot}]")
            flow_vars[(rid, arc)] = var
            if arc.kind is ArcKind.TRANSIT:
                arc_users[arc].append(var)
            balance[arc.tail].append((1.0, var))
            balance[arc.head].append((-1.0, var))

        y = model.add_variable(f"y[{rid}]", lb=0.0, ub=request.size_gb)
        delivered_vars[rid] = y
        weight = (weights or {}).get(rid, 1.0)
        objective_terms.append((weight, y))

        source = graph.source_node(request)
        sink = graph.sink_node(request)
        for node, terms in balance.items():
            net = LinExpr.from_terms(terms)
            if node == source:
                model.add_constraint(net - y == 0.0, name=f"src[{rid}]")
            elif node == sink:
                model.add_constraint(net + y == 0.0, name=f"snk[{rid}]")
            else:
                model.add_constraint(net == 0.0, name=f"cons[{rid},{node[0]},{node[1]}]")

    for arc, users in arc_users.items():
        if arc.capacity != float("inf"):
            model.add_constraint(
                LinExpr.sum(users) <= arc.capacity,
                name=f"cap[{arc.src},{arc.dst},{arc.slot}]",
            )

    model.maximize(LinExpr.from_terms(objective_terms))
    solution = model.solve(backend=backend)

    entries = []
    for (rid, arc), var in flow_vars.items():
        volume = solution.value(var)
        if volume > VOLUME_ATOL:
            entries.append(
                ScheduleEntry(rid, arc.src, arc.dst, arc.slot, volume, arc.kind)
            )
    delivered = {rid: solution.value(var) for rid, var in delivered_vars.items()}
    return BulkTransferResult(
        schedule=TransferSchedule(entries),
        delivered=delivered,
        total_delivered=sum(delivered.values()),
    )
