"""Multicast transfers with shared upstream traffic.

Sec. III handles one-to-many replication "by introducing a separate
file for each source-destination pair" — upstream links then carry one
copy *per destination*.  Real replication fans out: a link common to
several destinations' routes only needs to carry the data once, with
duplication at the branch datacenter.

On the time-expanded graph this is the classic multicast LP relaxation:
per destination ``d`` a unit flow ``f_d`` from the source layer to
``d``'s deadline layer, plus a shared *occupancy* ``u_arc`` with

    u_arc >= f_d,arc      for every destination,

and capacity/charge rows written against ``u`` instead of the per-
destination sum.  At any optimum ``u`` is the pointwise max, i.e. the
volume a replicating relay actually transmits.  (This is a relaxation
of Steiner-style integral multicast, exact for the single-source case
with fractional splitting — which is the regime the paper's model
already lives in.)
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import SchedulingError
from repro.core.schedule import ScheduleEntry, TransferSchedule
from repro.core.state import NetworkState
from repro.lp import LinExpr, Model, Solution, Variable
from repro.timeexp.graph import Arc, ArcKind, TimeExpandedGraph
from repro.traffic.spec import TransferRequest, expand_multicast
from repro.units import VOLUME_ATOL


@dataclass
class MulticastResult:
    """A solved multicast round."""

    #: Billable transmissions: what each link actually carries (the
    #: shared occupancy), as schedule entries under a synthetic id.
    schedule: TransferSchedule
    solution: Solution
    #: Cost per interval of the whole network after this round.
    cost_per_slot: float
    #: Completion slot per destination id.
    completions: Dict[int, int]


def solve_multicast(
    state: NetworkState,
    source: int,
    destinations: Sequence[int],
    size_gb: float,
    deadline_slots: int,
    release_slot: int = 0,
    backend: str = "highs",
) -> MulticastResult:
    """Optimize one replication job with shared upstream traffic."""
    requests = expand_multicast(
        source, list(destinations), size_gb, deadline_slots, release_slot
    )

    start = release_slot
    end = release_slot + deadline_slots
    graph = TimeExpandedGraph(
        state.topology,
        start_slot=start,
        horizon=end - start,
        capacity_fn=state.residual_capacity,
    )

    model = Model("multicast")
    #: per-destination flows on each arc.
    flow_vars: Dict[Tuple[int, Arc], Variable] = {}
    #: shared occupancy per transit arc.
    occupancy: Dict[Arc, Variable] = {}

    arcs = list(graph.arcs)
    for arc in arcs:
        if arc.kind is ArcKind.TRANSIT:
            if arc.capacity <= 0:
                continue
            occupancy[arc] = model.add_variable(
                f"u[{arc.src},{arc.dst},{arc.slot}]"
            )

    for request in requests:
        rid = request.request_id
        balance: Dict[Tuple[int, int], List[Tuple[float, Variable]]] = defaultdict(list)
        for arc in graph.arcs_for_request(request):
            if arc.kind is ArcKind.TRANSIT and arc not in occupancy:
                continue
            var = model.add_variable(f"f[{rid},{arc.src},{arc.dst},{arc.slot}]")
            flow_vars[(rid, arc)] = var
            if arc.kind is ArcKind.TRANSIT:
                model.add_constraint(
                    occupancy[arc] >= var, name=f"share[{rid},{arc.src},{arc.dst},{arc.slot}]"
                )
            balance[arc.tail].append((1.0, var))
            balance[arc.head].append((-1.0, var))

        src_node = graph.source_node(request)
        sink = graph.sink_node(request)
        for node, terms in balance.items():
            net = LinExpr.from_terms(terms)
            if node == src_node:
                model.add_constraint(net == size_gb, name=f"src[{rid}]")
            elif node == sink:
                model.add_constraint(net == -size_gb, name=f"snk[{rid}]")
            else:
                model.add_constraint(net == 0.0, name=f"cons[{rid},{node}]")

    # Capacity and charge rows on the shared occupancy.
    for arc, u in occupancy.items():
        if arc.capacity != float("inf"):
            model.add_constraint(u <= arc.capacity, name=f"cap[{arc}]")

    by_link: Dict[Tuple[int, int], Dict[int, Variable]] = defaultdict(dict)
    for arc, u in occupancy.items():
        by_link[arc.link_key][arc.slot] = u

    objective_terms: List[Tuple[float, Variable]] = []
    fixed_cost = 0.0
    for link in state.topology.links:
        key = link.key
        prior = state.charged_volume(*key)
        if key not in by_link:
            fixed_cost += link.price * prior
            continue
        x = model.add_variable(f"X[{key[0]},{key[1]}]", lb=prior)
        for slot, u in by_link[key].items():
            committed = state.committed_volume(key[0], key[1], slot)
            model.add_constraint(x >= u + committed, name=f"chg[{key},{slot}]")
        objective_terms.append((link.price, x))

    model.minimize(LinExpr.from_terms(objective_terms, constant=fixed_cost))
    solution = model.solve(backend=backend)

    # The billable schedule is the occupancy, attributed to the first
    # destination's request id (a synthetic "multicast job" id).
    job_id = requests[0].request_id
    entries = []
    for arc, u in occupancy.items():
        volume = solution.value(u)
        if volume > VOLUME_ATOL:
            entries.append(
                ScheduleEntry(job_id, arc.src, arc.dst, arc.slot, volume)
            )

    completions = {}
    for request in requests:
        arrivals: Dict[int, float] = defaultdict(float)
        for (rid, arc), var in flow_vars.items():
            if rid != request.request_id or arc.kind is not ArcKind.TRANSIT:
                continue
            value = solution.value(var)
            if arc.dst == request.destination:
                arrivals[arc.slot] += value
            if arc.src == request.destination:
                arrivals[arc.slot] -= value
        cumulative = 0.0
        for slot in sorted(arrivals):
            cumulative += arrivals[slot]
            if cumulative >= size_gb - max(VOLUME_ATOL, 1e-9 * size_gb):
                completions[request.destination] = slot
                break

    return MulticastResult(
        schedule=TransferSchedule(entries),
        solution=solution,
        cost_per_slot=solution.objective,
        completions=completions,
    )
