"""A percentile-aware extension of the Postcard scheduler.

The paper fixes q = 100 for tractability: under peak billing, every
slot's volume matters and the max-epigraph objective is exact.  Real
ISPs bill the 95-th percentile, under which the busiest
``(1 - q/100) * horizon`` slots of each link are *free* — an optimizer
that knows this can deliberately burst a few times per period at no
cost.  Exact q-percentile optimization is non-convex (choosing which
slots to sacrifice is combinatorial), so this module implements the
natural greedy heuristic on top of the Postcard LP:

* each link has a *burst budget* of ``floor((1 - q/100) * horizon)``
  slots for the charging period;
* the charged volume fed to the LP excludes already-amnestied slots;
* per round, the LP is solved once, and if a link's bill rose, its
  peak slot of this round is amnestied (budget permitting) and the LP
  re-solved once with that slot's charge row removed.

With q = 100 the budget is zero and the scheduler is exactly
:class:`~repro.core.scheduler.PostcardScheduler`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import SchedulingError
from repro.charging.schemes import PercentileCharging
from repro.core.formulation import build_postcard_model
from repro.core.interfaces import Scheduler
from repro.core.schedule import TransferSchedule
from repro.core.scheduler import (
    ON_INFEASIBLE_DROP,
    ON_INFEASIBLE_RAISE,
    shed_until_feasible,
)
from repro.core.state import NetworkState
from repro.net.topology import LinkKey, Topology
from repro.traffic.spec import TransferRequest
from repro.units import VOLUME_ATOL


class PercentileAwareScheduler(Scheduler):
    """Online Postcard that spends each link's free burst slots."""

    name = "postcard-percentile"

    def __init__(
        self,
        topology: Topology,
        horizon: int,
        q: float = 95.0,
        backend: str = "highs",
        on_infeasible: str = ON_INFEASIBLE_RAISE,
    ):
        if not 0 < q <= 100:
            raise SchedulingError(f"percentile must be in (0, 100], got {q}")
        if on_infeasible not in (ON_INFEASIBLE_RAISE, ON_INFEASIBLE_DROP):
            raise SchedulingError(f"unknown on_infeasible policy {on_infeasible!r}")
        self._state = NetworkState(topology, horizon)
        self.q = float(q)
        self.backend = backend
        self.on_infeasible = on_infeasible
        #: Free burst slots per link for the whole charging period:
        #: exactly the samples strictly above the charged index of the
        #: q-th percentile scheme (matches the ledger's billing).
        from repro.units import percentile_slot_index

        self.burst_budget = horizon - 1 - percentile_slot_index(q, horizon)
        #: Amnestied (free) slots per link.
        self.amnesty: Dict[LinkKey, Set[int]] = defaultdict(set)
        self.last_objective: Optional[float] = None

    @property
    def state(self) -> NetworkState:
        return self._state

    # -- accounting that ignores amnestied slots ------------------------

    def effective_charged_volume(self, src: int, dst: int) -> float:
        """Peak recorded volume over non-amnestied slots of (src, dst)."""
        usage = self._state.ledger._usage[(src, dst)]
        free = self.amnesty[(src, dst)]
        return max(
            (v for slot, v in usage.volumes.items() if slot not in free),
            default=0.0,
        )

    def billed_cost_per_slot(self) -> float:
        """The real q-percentile bill of everything recorded so far."""
        return self._state.ledger.cost_per_slot(PercentileCharging(self.q))

    def remaining_budget(self, src: int, dst: int) -> int:
        return self.burst_budget - len(self.amnesty[(src, dst)])

    # -- the online loop ----------------------------------------------------

    def on_slot(self, slot: int, requests: List[TransferRequest]) -> TransferSchedule:
        if not requests:
            return TransferSchedule()
        for request in requests:
            if request.release_slot != slot:
                raise SchedulingError(
                    f"file {request.request_id} released at "
                    f"{request.release_slot}, scheduled at {slot}"
                )

        if self.on_infeasible == ON_INFEASIBLE_RAISE:
            schedule, accepted = self._solve_with_amnesty(requests), list(requests)
        else:
            schedule, accepted = shed_until_feasible(
                self._solve_with_amnesty, requests, self._state
            )
            if schedule is None:
                return TransferSchedule()

        self._state.commit(schedule, accepted)
        return schedule

    def _solve_once(self, requests: List[TransferRequest]):
        built = build_postcard_model(
            self._state,
            requests,
            charge_exempt=lambda s, d, n: n in self.amnesty[(s, d)],
            charged_volume_fn=self.effective_charged_volume,
        )
        return built.solve(backend=self.backend)

    def _solve_with_amnesty(
        self, requests: List[TransferRequest]
    ) -> TransferSchedule:
        schedule, solution = self._solve_once(requests)
        self.last_objective = solution.objective

        # Did any link's (effective) bill rise?  If so, amnesty its
        # peak slot of this round and re-solve once.
        granted = False
        loads: Dict[Tuple[LinkKey, int], float] = defaultdict(float)
        for (src, dst, n), volume in schedule.link_slot_volumes().items():
            loads[((src, dst), n)] += volume
        peak_by_link: Dict[LinkKey, Tuple[float, int]] = {}
        for (key, n), volume in loads.items():
            total = volume + self._state.committed_volume(key[0], key[1], n)
            if key not in peak_by_link or total > peak_by_link[key][0]:
                peak_by_link[key] = (total, n)
        for key, (total, n) in peak_by_link.items():
            before = self.effective_charged_volume(*key)
            if (
                total > before + VOLUME_ATOL
                and self.remaining_budget(*key) > 0
                and n not in self.amnesty[key]
            ):
                self.amnesty[key].add(n)
                granted = True

        if granted:
            schedule, solution = self._solve_once(requests)
            self.last_objective = solution.objective
        return schedule
