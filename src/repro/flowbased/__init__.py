"""The flow-based baseline of Sec. II-B.

Storage at intermediate datacenters is eliminated: every file becomes a
constant-rate *flow* at its desired rate ``r_k = F_k / T_k`` (GB/slot),
routed — possibly split over several multi-hop paths — on the static
overlay graph for the ``T_k`` slots of its window.

Two solution strategies are provided:

* :func:`~repro.flowbased.model.build_flow_model` — the exact LP for
  the flow-based cost minimization (same percentile objective as
  Postcard, no storage);
* :func:`~repro.flowbased.two_phase.solve_two_phase` — the paper's
  decomposition: a maximum concurrent flow over already-paid headroom,
  then a minimum-cost multicommodity flow for the remainder.
"""

from repro.flowbased.model import FlowModel, build_flow_model
from repro.flowbased.two_phase import solve_two_phase
from repro.flowbased.colgen import ColGenResult, solve_flow_column_generation
from repro.flowbased.scheduler import (
    VARIANT_LP,
    VARIANT_TWO_PHASE,
    FlowBasedScheduler,
)

__all__ = [
    "FlowModel",
    "build_flow_model",
    "solve_two_phase",
    "FlowBasedScheduler",
    "VARIANT_LP",
    "VARIANT_TWO_PHASE",
    "ColGenResult",
    "solve_flow_column_generation",
]
