"""Column generation (Dantzig-Wolfe) for the flow-based LP.

The arc-based flow LP of :mod:`repro.flowbased.model` has
``files x links`` variables; at datacenter-fleet scale the classic
remedy is a *path-based* master problem with pricing:

* the restricted master holds a few explicit paths per file plus the
  charge variables ``X_ij``, all constraints written as LE/EQ so the
  HiGHS duals follow one convention;
* the pricing subproblem per file is a shortest-path computation under
  link weights derived from the capacity- and charge-row duals; a path
  with negative reduced cost enters the master;
* iteration stops when no file prices out, which certifies optimality
  of the master over *all* paths (LP duality).

The test suite pins the result to the arc-based LP's objective, making
this both a scalability tool and an independent correctness check of
the flow formulation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import InfeasibleError, SchedulingError, SolverError
from repro.core.schedule import SEMANTICS_FLUID, ScheduleEntry, TransferSchedule
from repro.core.state import NetworkState
from repro.lp import LinExpr, Model, Variable
from repro.traffic.spec import TransferRequest
from repro.units import VOLUME_ATOL

LinkKey = Tuple[int, int]
Path = Tuple[int, ...]  # node sequence


@dataclass
class ColGenResult:
    """Outcome of a column-generation solve."""

    schedule: TransferSchedule
    objective: float
    iterations: int
    columns_generated: int
    #: paths (with rates) chosen per request id.
    paths: Dict[int, List[Tuple[Path, float]]]


def _path_links(path: Path) -> List[LinkKey]:
    return list(zip(path, path[1:]))


def _initial_paths(
    state: NetworkState, request: TransferRequest
) -> List[Path]:
    """Seed columns: the cheapest price path plus the direct link."""
    graph = state.topology.to_networkx()
    paths: List[Path] = []
    try:
        cheapest = nx.shortest_path(
            graph, request.source, request.destination, weight="price"
        )
        paths.append(tuple(cheapest))
    except nx.NetworkXNoPath:
        raise InfeasibleError(
            f"no path from {request.source} to {request.destination}"
        ) from None
    if state.topology.has_link(request.source, request.destination):
        direct = (request.source, request.destination)
        if direct not in paths:
            paths.append(direct)
    return paths


def solve_flow_column_generation(
    state: NetworkState,
    requests: List[TransferRequest],
    backend: str = "highs",
    max_iterations: int = 200,
    tolerance: float = 1e-7,
) -> ColGenResult:
    """Solve the flow-based cost minimization by path pricing."""
    if not requests:
        raise SchedulingError("column generation needs at least one request")
    topology = state.topology

    columns: Dict[int, List[Path]] = {
        r.request_id: _initial_paths(state, r) for r in requests
    }
    active_slots = {
        r.request_id: list(range(r.release_slot, r.last_slot + 1)) for r in requests
    }

    total_columns = sum(len(c) for c in columns.values())
    iterations = 0
    while True:
        iterations += 1
        if iterations > max_iterations:
            raise SolverError("column generation did not converge")

        master, path_vars, demand_rows, cap_rows, chg_rows, slack_vars = _build_master(
            state, requests, columns, active_slots
        )
        solution = master.solve(backend=backend)

        # Pricing: per-link weight = -(sum of duals of the LE rows a
        # unit of path flow on that link would hit).  All those duals
        # are <= 0 in a minimization, so weights are >= 0 and Dijkstra
        # applies.  A path enters iff  weight(path) < dual(demand_k).
        improved = False
        for request in requests:
            rid = request.request_id
            weights: Dict[LinkKey, float] = {}
            for link in topology.links:
                weight = 0.0
                for slot in active_slots[rid]:
                    row = cap_rows.get((link.key, slot))
                    if row is not None:
                        weight -= solution.dual(row)
                    row = chg_rows.get((link.key, slot))
                    if row is not None:
                        weight -= solution.dual(row)
                weights[link.key] = max(0.0, weight)

            graph = nx.DiGraph()
            graph.add_nodes_from(topology.node_ids())
            for link in topology.links:
                graph.add_edge(link.src, link.dst, w=weights[link.key])
            try:
                best = nx.shortest_path(
                    graph, request.source, request.destination, weight="w"
                )
            except nx.NetworkXNoPath:  # pragma: no cover - seeded above
                continue
            best_weight = sum(weights[key] for key in _path_links(tuple(best)))
            sigma = solution.dual(demand_rows[rid])
            if best_weight < sigma - tolerance:
                candidate = tuple(best)
                if candidate not in columns[rid]:
                    columns[rid].append(candidate)
                    total_columns += 1
                    improved = True

        if not improved:
            residual_slack = sum(
                solution.value(slack) for slack in slack_vars.values()
            )
            if residual_slack > 1e-6:
                raise InfeasibleError(
                    "flow-based problem is infeasible: "
                    f"{residual_slack:g} GB/slot of demand unroutable"
                )
            break

    # Final extraction from the last master solution.
    paths_out: Dict[int, List[Tuple[Path, float]]] = defaultdict(list)
    entries: List[ScheduleEntry] = []
    for (rid, path), var in path_vars.items():
        rate = solution.value(var)
        if rate <= VOLUME_ATOL:
            continue
        paths_out[rid].append((path, rate))
        request = next(r for r in requests if r.request_id == rid)
        for src, dst in _path_links(path):
            for slot in active_slots[rid]:
                entries.append(ScheduleEntry(rid, src, dst, slot, rate))

    return ColGenResult(
        schedule=TransferSchedule(entries, semantics=SEMANTICS_FLUID),
        objective=solution.objective,
        iterations=iterations,
        columns_generated=total_columns,
        paths=dict(paths_out),
    )


def _build_master(
    state: NetworkState,
    requests: List[TransferRequest],
    columns: Dict[int, List[Path]],
    active_slots: Dict[int, List[int]],
):
    """The restricted master over the current columns.

    All rows are EQ or LE so every dual follows one sign convention.
    """
    topology = state.topology
    model = Model("colgen_master")

    path_vars: Dict[Tuple[int, Path], Variable] = {}
    for request in requests:
        rid = request.request_id
        for path in columns[rid]:
            path_vars[(rid, path)] = model.add_variable(
                f"f[{rid},{'-'.join(map(str, path))}]"
            )

    # Big-M feasibility slack: the seed columns alone may not be able
    # to carry a file's rate (shared bottlenecks), yet the full path
    # set can — pricing needs a feasible master to produce the duals
    # that discover those paths.  Positive slack at convergence means
    # genuine infeasibility.
    big_m = 1e5 * max(link.price for link in topology.links)
    slack_vars: Dict[int, Variable] = {}
    demand_rows = {}
    for request in requests:
        rid = request.request_id
        slack = model.add_variable(f"slack[{rid}]")
        slack_vars[rid] = slack
        total = LinExpr.sum(
            path_vars[(rid, path)] for path in columns[rid]
        )
        demand_rows[rid] = model.add_constraint(
            total + slack == request.desired_rate, name=f"dem[{rid}]"
        )

    # Per (link, slot): which path variables load it.
    users: Dict[Tuple[LinkKey, int], List[Variable]] = defaultdict(list)
    for request in requests:
        rid = request.request_id
        for path in columns[rid]:
            var = path_vars[(rid, path)]
            for key in _path_links(path):
                for slot in active_slots[rid]:
                    users[(key, slot)].append(var)

    cap_rows = {}
    chg_rows = {}
    objective_terms: List[Tuple[float, Variable]] = []
    fixed_cost = 0.0
    touched_links = {key for key, _slot in users}
    for link in topology.links:
        prior = state.charged_volume(*link.key)
        if link.key not in touched_links:
            fixed_cost += link.price * prior
            continue
        x = model.add_variable(f"X[{link.src},{link.dst}]", lb=prior)
        objective_terms.append((link.price, x))
        for (key, slot), vars_here in users.items():
            if key != link.key:
                continue
            committed = state.committed_volume(key[0], key[1], slot)
            load = LinExpr.sum(vars_here)
            residual = state.residual_capacity(key[0], key[1], slot)
            if residual != float("inf"):
                cap_rows[(key, slot)] = model.add_constraint(
                    load <= residual, name=f"cap[{key},{slot}]"
                )
            chg_rows[(key, slot)] = model.add_constraint(
                load - x <= -committed, name=f"chg[{key},{slot}]"
            )

    slack_terms = [(big_m, slack) for slack in slack_vars.values()]
    model.minimize(
        LinExpr.from_terms(objective_terms + slack_terms, constant=fixed_cost)
    )
    return model, path_vars, demand_rows, cap_rows, chg_rows, slack_vars
