"""The exact LP for the flow-based model.

Variables ``f[k, (i,j)]`` are the constant rate (GB/slot) of file ``k``
on overlay link (i, j) throughout its window.  Unlike Postcard's
time-expanded LP there is no time index on the flow variables — that is
precisely the baseline's handicap: every active file loads its links in
*every* slot of its window, so peaks cannot be time-shifted.

The objective matches Postcard's: minimize ``sum(a_ij * X_ij)`` with
``X_ij >= X_ij(t-1)`` and per-slot rows
``X_ij >= B_ij(n) + sum_{k active at n} f[k, (i,j)]``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.errors import SchedulingError
from repro.core.schedule import SEMANTICS_FLUID, ScheduleEntry, TransferSchedule
from repro.core.state import NetworkState
from repro.lp import LinExpr, Model, Solution, Variable
from repro.traffic.spec import TransferRequest
from repro.units import VOLUME_ATOL

LinkKey = Tuple[int, int]


class FlowModel:
    """A built (not yet solved) flow-based LP plus its variable maps."""

    def __init__(
        self,
        model: Model,
        requests: List[TransferRequest],
        rate_vars: Dict[Tuple[int, LinkKey], Variable],
        charge_vars: Dict[LinkKey, Variable],
        fixed_charge_cost: float,
    ):
        self.model = model
        self.requests = requests
        self.rate_vars = rate_vars
        self.charge_vars = charge_vars
        self.fixed_charge_cost = fixed_charge_cost

    def solve(self, backend: str = "highs", **options) -> Tuple[TransferSchedule, Solution]:
        """Optimize and expand rates into per-slot fluid entries."""
        solution = self.model.solve(backend=backend, **options)
        by_request = {r.request_id: r for r in self.requests}
        entries = []
        for (request_id, (src, dst)), var in self.rate_vars.items():
            rate = solution.value(var)
            if rate <= VOLUME_ATOL:
                continue
            request = by_request[request_id]
            for slot in range(request.release_slot, request.last_slot + 1):
                entries.append(
                    ScheduleEntry(
                        request_id=request_id,
                        src=src,
                        dst=dst,
                        slot=slot,
                        volume=rate,
                    )
                )
        return TransferSchedule(entries, semantics=SEMANTICS_FLUID), solution


def build_flow_model(
    state: NetworkState,
    requests: List[TransferRequest],
    name: str = "flowbased",
) -> FlowModel:
    """Assemble the flow-based LP for the files released this slot."""
    if not requests:
        raise SchedulingError("build_flow_model needs at least one request")

    topology = state.topology
    model = Model(name)

    rate_vars: Dict[Tuple[int, LinkKey], Variable] = {}
    for request in requests:
        rid = request.request_id
        balance: Dict[int, List[Tuple[float, Variable]]] = defaultdict(list)
        for link in topology.links:
            var = model.add_variable(f"f[{rid},{link.src},{link.dst}]")
            rate_vars[(rid, link.key)] = var
            balance[link.src].append((1.0, var))
            balance[link.dst].append((-1.0, var))
        rate = request.desired_rate
        for node in topology.node_ids():
            net = LinExpr.from_terms(balance.get(node, []))
            if node == request.source:
                model.add_constraint(net == rate, name=f"src[{rid}]")
            elif node == request.destination:
                model.add_constraint(net == -rate, name=f"snk[{rid}]")
            else:
                model.add_constraint(net == 0.0, name=f"cons[{rid},{node}]")

    # Which files are active at which slot, per link-slot rows.
    start = min(r.release_slot for r in requests)
    end = max(r.last_slot for r in requests) + 1

    charge_vars: Dict[LinkKey, Variable] = {}
    objective_terms: List[Tuple[float, Variable]] = []
    fixed_cost = 0.0
    for link in topology.links:
        key = link.key
        prior = state.charged_volume(*key)
        users_by_slot: Dict[int, List[Variable]] = defaultdict(list)
        for request in requests:
            var = rate_vars[(request.request_id, key)]
            for slot in range(request.release_slot, request.last_slot + 1):
                users_by_slot[slot].append(var)

        if not users_by_slot:
            fixed_cost += link.price * prior
            continue

        x = model.add_variable(f"X[{key[0]},{key[1]}]", lb=prior)
        charge_vars[key] = x
        for slot in range(start, end):
            users = users_by_slot.get(slot)
            if not users:
                continue
            committed = state.committed_volume(key[0], key[1], slot)
            load = LinExpr.sum(users)
            model.add_constraint(
                x >= load + committed, name=f"chg[{key[0]},{key[1]},{slot}]"
            )
            residual = state.residual_capacity(key[0], key[1], slot)
            if residual != float("inf"):
                model.add_constraint(
                    load <= residual, name=f"cap[{key[0]},{key[1]},{slot}]"
                )
        objective_terms.append((link.price, x))

    model.minimize(LinExpr.from_terms(objective_terms, constant=fixed_cost))
    return FlowModel(model, list(requests), rate_vars, charge_vars, fixed_cost)
