"""The flow-based online scheduler (the paper's comparison point)."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import InfeasibleError, SchedulingError
from repro.core.interfaces import Scheduler
from repro.core.schedule import TransferSchedule
from repro.core.state import NetworkState
from repro.flowbased.model import build_flow_model
from repro.flowbased.two_phase import solve_two_phase
from repro.net.topology import Topology
from repro.obs import registry as obs
from repro.traffic.spec import TransferRequest

VARIANT_LP = "lp"
VARIANT_TWO_PHASE = "two_phase"

ON_INFEASIBLE_RAISE = "raise"
ON_INFEASIBLE_DROP = "drop"


class FlowBasedScheduler(Scheduler):
    """Routes each slot's files as constant-rate multipath flows.

    ``variant`` selects the exact LP (``"lp"``) or the paper's two-phase
    decomposition (``"two_phase"``).  Infeasibility handling mirrors
    :class:`~repro.core.scheduler.PostcardScheduler`.
    """

    name = "flow-based"

    def __init__(
        self,
        topology: Topology,
        horizon: int,
        backend: str = "highs",
        variant: str = VARIANT_LP,
        on_infeasible: str = ON_INFEASIBLE_RAISE,
    ):
        if variant not in (VARIANT_LP, VARIANT_TWO_PHASE):
            raise SchedulingError(f"unknown flow-based variant {variant!r}")
        if on_infeasible not in (ON_INFEASIBLE_RAISE, ON_INFEASIBLE_DROP):
            raise SchedulingError(f"unknown on_infeasible policy {on_infeasible!r}")
        self._state = NetworkState(topology, horizon)
        self.backend = backend
        self.variant = variant
        self.on_infeasible = on_infeasible
        self.last_objective: Optional[float] = None
        #: lambda of the last two-phase solve (None for the LP variant).
        self.last_lambda: Optional[float] = None

    @property
    def state(self) -> NetworkState:
        return self._state

    def on_slot(self, slot: int, requests: List[TransferRequest]) -> TransferSchedule:
        if not requests:
            return TransferSchedule()
        for request in requests:
            if request.release_slot != slot:
                raise SchedulingError(
                    f"file {request.request_id} released at "
                    f"{request.release_slot}, scheduled at {slot}"
                )

        if self.on_infeasible == ON_INFEASIBLE_RAISE:
            schedule, accepted = self._solve(requests), list(requests)
        else:
            from repro.core.scheduler import shed_until_feasible

            schedule, accepted = shed_until_feasible(
                self._solve, requests, self._state
            )
            if schedule is None:
                return TransferSchedule()

        self._state.commit(schedule, accepted)
        return schedule

    def _solve(self, requests: List[TransferRequest]) -> TransferSchedule:
        with obs.span("scheduler.solve", scheduler=self.name,
                      variant=self.variant, requests=len(requests)):
            if self.variant == VARIANT_LP:
                with obs.span("scheduler.build_model"):
                    built = build_flow_model(self._state, requests)
                schedule, solution = built.solve(backend=self.backend)
                self.last_objective = solution.objective
                self.last_lambda = None
            else:
                schedule, lam, phase2_cost = solve_two_phase(
                    self._state, requests, backend=self.backend
                )
                self.last_objective = phase2_cost
                self.last_lambda = lam
        return schedule
