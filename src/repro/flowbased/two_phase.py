"""The paper's two-phase decomposition of the flow-based problem.

Sec. II-B proposes solving the flow-based cost minimization as two
sequential sub-problems:

1. **Maximum concurrent flow** over the *already-paid headroom*: on each
   link, traffic up to the charged volume ``X_ij(t-1)`` is free for the
   rest of the period, so first push the largest common fraction
   ``lambda`` of every file's desired rate through that free capacity.
2. **Minimum-cost multicommodity flow** for the remaining
   ``(1 - lambda) * r_k`` of every file, over residual capacity, paying
   ``a_ij`` per unit of added rate.

Both sub-problems are solved exactly (as LPs); the decomposition itself
is the heuristic — phase 2's linear cost treats every added unit of
rate as chargeable even when several files could share one new peak, so
the exact LP of :mod:`repro.flowbased.model` never does worse.  The
benchmark suite compares the two variants.

Windows are handled conservatively: the shared free/residual capacity
of a link is its minimum over the union of all files' windows.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.errors import SchedulingError
from repro.core.schedule import SEMANTICS_FLUID, ScheduleEntry, TransferSchedule
from repro.core.state import NetworkState
from repro.lp import LinExpr, Model
from repro.mcmf.concurrent import max_concurrent_flow
from repro.obs import registry as obs
from repro.traffic.spec import TransferRequest
from repro.units import VOLUME_ATOL

LinkKey = Tuple[int, int]


def _min_over_window(values) -> float:
    return min(values) if values else 0.0


def solve_two_phase(
    state: NetworkState,
    requests: List[TransferRequest],
    backend: str = "highs",
) -> Tuple[TransferSchedule, float, float]:
    """Run both phases; returns (schedule, lambda, phase2_cost).

    ``lambda`` is the common fraction served free in phase 1;
    ``phase2_cost`` is the rate-weighted price paid for the remainder
    (the decomposition's own objective, not the percentile bill).
    """
    if not requests:
        raise SchedulingError("solve_two_phase needs at least one request")

    topology = state.topology
    node_ids = topology.node_ids()
    index_of = {node_id: i for i, node_id in enumerate(node_ids)}
    start = min(r.release_slot for r in requests)
    end = max(r.last_slot for r in requests) + 1
    window = range(start, end)

    # ---- Phase 1: concurrent flow inside paid headroom. ----
    links = topology.links
    free_caps = [
        _min_over_window([state.paid_headroom(l.src, l.dst, n) for n in window])
        for l in links
    ]
    edges = [
        (index_of[l.src], index_of[l.dst], cap) for l, cap in zip(links, free_caps)
    ]
    commodities = [
        (index_of[r.source], index_of[r.destination], r.desired_rate)
        for r in requests
    ]
    with obs.span("flowbased.phase1", files=len(requests)):
        lam, phase1_flows = max_concurrent_flow(
            len(node_ids), edges, commodities, cap_lambda=1.0, backend=backend
        )
    obs.gauge("flowbased.lambda", lam)

    # Rates routed per file per link in phase 1.
    rates: Dict[Tuple[int, LinkKey], float] = defaultdict(float)
    used_on_link: Dict[LinkKey, float] = defaultdict(float)
    for request, flows in zip(requests, phase1_flows):
        for (si, di), rate in flows.items():
            key = (node_ids[si], node_ids[di])
            rates[(request.request_id, key)] += rate
            used_on_link[key] += rate

    # ---- Phase 2: min-cost multicommodity flow for the remainder. ----
    phase2_cost = 0.0
    if lam < 1.0 - 1e-9:
        with obs.span("flowbased.phase2", files=len(requests)):
            residual_caps = {
                l.key: max(
                    0.0,
                    _min_over_window(
                        [state.residual_capacity(l.src, l.dst, n) for n in window]
                    )
                    - used_on_link[l.key],
                )
                for l in links
            }
            model = Model("two_phase_mcmf")
            f2: Dict[Tuple[int, LinkKey], object] = {}
            cost_terms = []
            for request in requests:
                rid = request.request_id
                balance = defaultdict(list)
                for link in links:
                    var = model.add_variable(f"f2[{rid},{link.src},{link.dst}]")
                    f2[(rid, link.key)] = var
                    balance[link.src].append((1.0, var))
                    balance[link.dst].append((-1.0, var))
                    cost_terms.append((link.price, var))
                remainder = (1.0 - lam) * request.desired_rate
                for node in node_ids:
                    net = LinExpr.from_terms(balance.get(node, []))
                    if node == request.source:
                        model.add_constraint(net == remainder, name=f"src[{rid}]")
                    elif node == request.destination:
                        model.add_constraint(net == -remainder, name=f"snk[{rid}]")
                    else:
                        model.add_constraint(net == 0.0, name=f"cons[{rid},{node}]")
            for link in links:
                cap = residual_caps[link.key]
                if cap != float("inf"):
                    model.add_constraint(
                        LinExpr.sum(
                            f2[(r.request_id, link.key)] for r in requests
                        )
                        <= cap,
                        name=f"cap[{link.src},{link.dst}]",
                    )
            model.minimize(LinExpr.from_terms(cost_terms))
            solution = model.solve(backend=backend)
            phase2_cost = solution.objective
            for (rid, key), var in f2.items():
                rate = solution.value(var)
                if rate > VOLUME_ATOL:
                    rates[(rid, key)] += rate

    # ---- Expand constant rates into per-slot fluid entries. ----
    by_request = {r.request_id: r for r in requests}
    entries = []
    for (rid, (src, dst)), rate in rates.items():
        if rate <= VOLUME_ATOL:
            continue
        request = by_request[rid]
        for slot in range(request.release_slot, request.last_slot + 1):
            entries.append(
                ScheduleEntry(request_id=rid, src=src, dst=dst, slot=slot, volume=rate)
            )
    return TransferSchedule(entries, semantics=SEMANTICS_FLUID), lam, phase2_cost
