"""Forecast-driven proactive scheduling (PR 10).

Lightweight online predictors learn each link's carried background
traffic ``B_ij(n)`` and each (src, dst) pair's arrival intensity from
the observed slots, and a :class:`~repro.forecast.provider.ForecastProvider`
feeds the damped predictions into both scheduling lanes so pressured
volume is deferred into slots forecast to sit under the current
watermark.  A TARDIS-style stability guard (bounded shift fraction plus
error-adaptive damping) keeps the controller from oscillating when the
forecasts are wrong.

Everything here is stdlib + numpy; there are no ML dependencies.
"""

from repro.forecast.guard import StabilityGuard
from repro.forecast.predictors import (
    DoubleSeasonal,
    Ewma,
    PREDICTOR_KINDS,
    SeasonalNaive,
    make_predictor,
)
from repro.forecast.provider import ForecastConfig, ForecastProvider
from repro.forecast.score import ForecastScoreboard

__all__ = [
    "DoubleSeasonal",
    "Ewma",
    "ForecastConfig",
    "ForecastProvider",
    "ForecastScoreboard",
    "PREDICTOR_KINDS",
    "SeasonalNaive",
    "StabilityGuard",
    "make_predictor",
]
