"""The TARDIS-style stability guard: bounded shift + adaptive damping.

A forecast-driven controller has a feedback loop: shifted volume
changes the traffic the predictors then observe, which changes the
forecasts, which changes the shifting.  TARDIS (PAPERS.md) shows the
loop stays stable when two knobs bound it, and :class:`StabilityGuard`
implements both:

* **Bounded shift fraction** — the reservation a forecast may place on
  any (link, slot) cell is capped at ``max_shift_fraction`` of the
  link's capacity, so even a confidently wrong forecast can never
  starve a cell or flip the whole schedule.
* **Error-adaptive damping** — reservations are scaled by a *trust*
  factor ``1 / (1 + beta * mape)`` computed from the scoreboard's
  rolling volume-weighted MAPE: the worse the recent forecasts, the
  less the controller acts on them, decaying smoothly to (near) zero
  influence — i.e. to the reactive scheduler — as predictions degrade.

On top of the smooth damping sits a **trip wire**: if the rolling MAPE
exceeds ``trip_mape`` the guard trips, forcing trust to zero for
``trip_cooldown`` slots (and counting the trip, which the CI smoke run
asserts stays at zero on clean workloads).
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.obs import registry as obs


class StabilityGuard:
    """Damping + bounding policy for forecast-driven reservations."""

    def __init__(
        self,
        max_shift_fraction: float = 0.6,
        damping_beta: float = 0.35,
        min_trust: float = 0.0,
        trip_mape: float = 2.5,
        trip_cooldown: int = 24,
    ):
        if not 0.0 < max_shift_fraction <= 1.0:
            raise SchedulingError(
                f"max_shift_fraction must be in (0, 1], got {max_shift_fraction}"
            )
        if damping_beta < 0.0:
            raise SchedulingError(
                f"damping_beta must be non-negative, got {damping_beta}"
            )
        if not 0.0 <= min_trust <= 1.0:
            raise SchedulingError(f"min_trust must be in [0, 1], got {min_trust}")
        if trip_mape <= 0.0:
            raise SchedulingError(f"trip_mape must be positive, got {trip_mape}")
        if trip_cooldown < 0:
            raise SchedulingError(
                f"trip_cooldown must be non-negative, got {trip_cooldown}"
            )
        self.max_shift_fraction = max_shift_fraction
        self.damping_beta = damping_beta
        self.min_trust = min_trust
        self.trip_mape = trip_mape
        self.trip_cooldown = trip_cooldown
        #: Times the trip wire fired (MAPE above ``trip_mape``).
        self.trips = 0
        self._cooldown_until = -1

    def update(self, slot: int, mape: float) -> None:
        """Check the trip wire against the current rolling MAPE.

        Called once per observed slot; while a cooldown from an earlier
        trip is active, a still-bad MAPE does not re-trip (one trip per
        excursion, not one per slot).
        """
        if slot < self._cooldown_until:
            return
        if mape > self.trip_mape:
            self.trips += 1
            self._cooldown_until = slot + 1 + self.trip_cooldown
            obs.counter("forecast.guard_trips", slot=slot, mape=round(mape, 4))

    def tripped(self, slot: int) -> bool:
        """True while a trip's cooldown suppresses all forecast influence."""
        return slot < self._cooldown_until

    def trust(self, slot: int, mape: float) -> float:
        """The damping factor applied to every reservation this slot."""
        if self.tripped(slot):
            return 0.0
        return max(self.min_trust, 1.0 / (1.0 + self.damping_beta * max(0.0, mape)))

    def bound(self, reservation: float, capacity: float) -> float:
        """Clamp a raw reservation to the bounded shift fraction."""
        if reservation <= 0.0:
            return 0.0
        return min(reservation, self.max_shift_fraction * capacity)
