"""Online scalar-series predictors for per-link traffic.

Each predictor consumes one value per slot through :meth:`observe` and
answers :meth:`forecast` queries for any number of steps ahead, in
O(1) per call, from state that is a pure function of the observation
sequence — so a crash-recovery replay that re-feeds the same slots
reproduces the same forecasts bit for bit.

The catalog mirrors the per-link GEANT-trace prediction idiom
referenced in ROADMAP.md:

* :class:`SeasonalNaive` — last season's value at the same phase; the
  strongest trivial baseline on strongly periodic traffic, but it
  copies last season's noise verbatim.
* :class:`Ewma` — an exponentially weighted level; tracks slow drift
  and ignores seasonality.
* :class:`DoubleSeasonal` — Holt–Winters-style additive smoothing with
  a level plus one (optionally two, e.g. daily + weekly) seasonal
  index arrays; averages across seasons, so per-slot noise is smoothed
  out of the shape.

All forecasts are clamped to be non-negative (traffic volumes).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SchedulingError

PREDICTOR_KINDS = ("seasonal", "ewma", "hw")


class SeasonalNaive:
    """Predict this phase's value as last season's value at the phase."""

    def __init__(self, period: int):
        if period < 2:
            raise SchedulingError(f"seasonal period must be >= 2, got {period}")
        self.period = period
        self._season: List[float] = [0.0] * period
        self._count = 0

    @property
    def ready(self) -> bool:
        """True once one full season has been observed."""
        return self._count >= self.period

    def observe(self, value: float) -> None:
        self._season[self._count % self.period] = float(value)
        self._count += 1

    def forecast(self, steps_ahead: int) -> float:
        if steps_ahead < 1:
            raise SchedulingError("forecast horizon must be >= 1 step")
        if not self.ready:
            return 0.0
        return max(0.0, self._season[(self._count - 1 + steps_ahead) % self.period])


class Ewma:
    """An exponentially weighted moving level (no seasonality)."""

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise SchedulingError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._level: Optional[float] = None
        self._count = 0

    @property
    def ready(self) -> bool:
        return self._level is not None

    def observe(self, value: float) -> None:
        value = float(value)
        if self._level is None:
            self._level = value
        else:
            self._level = self.alpha * value + (1.0 - self.alpha) * self._level
        self._count += 1

    def forecast(self, steps_ahead: int) -> float:
        if steps_ahead < 1:
            raise SchedulingError("forecast horizon must be >= 1 step")
        return max(0.0, self._level or 0.0)


class DoubleSeasonal:
    """Holt–Winters-style additive level + seasonal index smoothing.

    One seasonal array of length ``period`` is always maintained; a
    second of length ``period2`` (e.g. a weekly cycle on top of a daily
    one) is added when ``period2 > 0``.  Updates are the standard
    additive recurrences::

        level   <- alpha * (y - s1 - s2) + (1 - alpha) * level
        s1[i1]  <- gamma * (y - level - s2) + (1 - gamma) * s1[i1]
        s2[i2]  <- gamma * (y - level - s1) + (1 - gamma) * s2[i2]

    Unlike :class:`SeasonalNaive` the seasonal shape is averaged across
    seasons, so one noisy day does not get copied verbatim into the
    next day's forecasts.
    """

    def __init__(
        self,
        period: int,
        alpha: float = 0.3,
        gamma: float = 0.3,
        period2: int = 0,
    ):
        if period < 2:
            raise SchedulingError(f"seasonal period must be >= 2, got {period}")
        if period2 and period2 < 2:
            raise SchedulingError(f"second period must be >= 2, got {period2}")
        if not 0.0 < alpha <= 1.0:
            raise SchedulingError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 < gamma <= 1.0:
            raise SchedulingError(f"gamma must be in (0, 1], got {gamma}")
        self.period = period
        self.period2 = period2
        self.alpha = alpha
        self.gamma = gamma
        self._level: Optional[float] = None
        self._s1: List[float] = [0.0] * period
        self._s2: List[float] = [0.0] * period2 if period2 else []
        self._count = 0

    @property
    def ready(self) -> bool:
        """True once one full (primary) season has been observed."""
        return self._count >= self.period

    def observe(self, value: float) -> None:
        y = float(value)
        i1 = self._count % self.period
        i2 = self._count % self.period2 if self.period2 else 0
        s2 = self._s2[i2] if self.period2 else 0.0
        if self._level is None:
            self._level = y
        else:
            s1 = self._s1[i1]
            self._level = (
                self.alpha * (y - s1 - s2) + (1.0 - self.alpha) * self._level
            )
            self._s1[i1] = (
                self.gamma * (y - self._level - s2) + (1.0 - self.gamma) * s1
            )
            if self.period2:
                self._s2[i2] = (
                    self.gamma * (y - self._level - self._s1[i1])
                    + (1.0 - self.gamma) * s2
                )
        self._count += 1

    def forecast(self, steps_ahead: int) -> float:
        if steps_ahead < 1:
            raise SchedulingError("forecast horizon must be >= 1 step")
        if not self.ready:
            return 0.0
        n = self._count - 1 + steps_ahead
        value = (self._level or 0.0) + self._s1[n % self.period]
        if self.period2:
            value += self._s2[n % self.period2]
        return max(0.0, value)


def make_predictor(kind: str, period: int, alpha: float = 0.3,
                   gamma: float = 0.3, period2: int = 0):
    """Predictor factory keyed by catalog name.

    ``"seasonal"`` and ``"hw"`` need a positive ``period``; ``"ewma"``
    ignores it.
    """
    if kind == "ewma":
        return Ewma(alpha=alpha)
    if kind == "seasonal":
        return SeasonalNaive(period)
    if kind == "hw":
        return DoubleSeasonal(period, alpha=alpha, gamma=gamma, period2=period2)
    raise SchedulingError(
        f"unknown predictor kind {kind!r}; available: "
        + ", ".join(PREDICTOR_KINDS)
    )
