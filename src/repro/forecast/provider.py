"""The ForecastProvider: damped predictions feeding both lanes.

One provider instance is attached to a scheduler (the hybrid scheduler
wires it into both of its lanes) and follows the slot loop:

* :meth:`begin_slot` — once per slot, before planning: refresh the
  per-link forecasts over the configured horizon and the slot's trust
  factor.
* :meth:`reservation` — the damped, bounded GB of *predicted but not
  yet committed* background traffic on a future (link, slot) cell.
  The fast lane subtracts it from headroom/residual in its
  forecast-aware ALAP passes; the LP adds the same number to its
  charge rows (``X >= committed + predicted + new``), so both lanes
  price a predicted-busy slot as if the predicted traffic were already
  there — and therefore prefer parking pressured volume in slots
  forecast to sit under the current watermark.
* :meth:`observe_slot` — once per slot, after commit: feed every
  link's now-final carried volume and every pair's arrival volume to
  the predictors, score the one-step-ahead predictions made at
  :meth:`begin_slot`, and advance the stability guard.

Influence is shaped, never gating: the fast lane's final admission
pass and the LP's capacity rows stay on the *physical* residual
capacities, so a forecast (right or wrong) can change where volume is
placed but never whether a request is admitted.  Reservations apply
only to slots strictly after the current one — the present is
observed, not predicted — and are zero until the predictors have seen
a full warmup window, so a cold provider is bit-for-bit the reactive
scheduler.

The provider deliberately lives on the scheduler, not inside
:class:`~repro.core.state.NetworkState`: state snapshots stay
forecast-free (the ``link_schedule_path`` config-not-state idiom), and
a provider attached before WAL replay retrains deterministically from
the replayed slots.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.forecast.guard import StabilityGuard
from repro.forecast.predictors import PREDICTOR_KINDS, make_predictor
from repro.forecast.score import ForecastScoreboard
from repro.obs import registry as obs
from repro.timeexp.graph import ArcKind
from repro.units import VOLUME_ATOL

LinkKey = Tuple[int, int]


@dataclass
class ForecastConfig:
    """Tuning for one :class:`ForecastProvider`.

    ``period`` is the seasonal cycle in slots (a day, typically);
    ``horizon`` is how many slots ahead reservations extend.  The
    guard knobs are documented on :class:`StabilityGuard`;
    ``warmup_slots=0`` defaults the warmup to one full period (one
    full EWMA ramp, 8 slots, for the aseasonal predictor).
    """

    horizon: int = 24
    period: int = 24
    predictor: str = "hw"
    alpha: float = 0.3
    gamma: float = 0.3
    period2: int = 0
    score_window: int = 96
    max_shift_fraction: float = 0.6
    damping_beta: float = 0.35
    min_trust: float = 0.0
    trip_mape: float = 2.5
    trip_cooldown: int = 24
    warmup_slots: int = 0
    #: Feed predicted background into LP charge rows on escalated slots.
    lp_charge_rows: bool = True

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise SchedulingError(f"horizon must be >= 1, got {self.horizon}")
        if self.predictor not in PREDICTOR_KINDS:
            raise SchedulingError(
                f"unknown predictor kind {self.predictor!r}; available: "
                + ", ".join(PREDICTOR_KINDS)
            )
        if self.predictor != "ewma" and self.period < 2:
            raise SchedulingError(
                f"predictor {self.predictor!r} needs a seasonal period >= 2"
            )
        if self.warmup_slots < 0:
            raise SchedulingError("warmup_slots must be non-negative")

    @property
    def effective_warmup(self) -> int:
        if self.warmup_slots:
            return self.warmup_slots
        return self.period if self.predictor != "ewma" else 8


class ForecastProvider:
    """Online per-link forecasts + the stability guard, as one object.

    Parameters
    ----------
    config:
        The knobs (see :class:`ForecastConfig`).
    predictor_factory:
        Optional zero-argument callable returning a fresh predictor,
        overriding the catalog choice in ``config`` — the oscillation
        regression test injects adversarially wrong predictors here.
    """

    def __init__(
        self,
        config: Optional[ForecastConfig] = None,
        predictor_factory: Optional[Callable[[], object]] = None,
    ):
        self.config = config or ForecastConfig()
        cfg = self.config
        self._factory = predictor_factory or (
            lambda: make_predictor(
                cfg.predictor, cfg.period, alpha=cfg.alpha,
                gamma=cfg.gamma, period2=cfg.period2,
            )
        )
        self.guard = StabilityGuard(
            max_shift_fraction=cfg.max_shift_fraction,
            damping_beta=cfg.damping_beta,
            min_trust=cfg.min_trust,
            trip_mape=cfg.trip_mape,
            trip_cooldown=cfg.trip_cooldown,
        )
        self.link_score = ForecastScoreboard(cfg.score_window, name="forecast.link")
        self.pair_score = ForecastScoreboard(cfg.score_window, name="forecast.pair")
        self._state = None
        self._capacity: Dict[LinkKey, float] = {}
        self._link_predictors: Dict[LinkKey, object] = {}
        self._pair_predictors: Dict[LinkKey, object] = {}
        self._now = -1
        self._trust = 0.0
        #: link -> {slot: raw predicted carried GB} over the horizon.
        self._raw: Dict[LinkKey, Dict[int, float]] = {}
        self._has_res: Dict[LinkKey, bool] = {}
        self._pending_link: Dict[LinkKey, float] = {}
        self._pending_pair: Dict[LinkKey, float] = {}
        self.slots_observed = 0
        #: GB committed into forecast-quiet slots while the same link
        #: carried a positive reservation elsewhere in the horizon — the
        #: "proactively shifted volume" activity indicator.
        self.shifted_gb = 0.0

    # -- wiring ----------------------------------------------------------

    def bind(self, state) -> None:
        """Point at the scheduler's live state (re-bind after restore).

        Predictor state survives a re-bind on purpose: a checkpoint
        adoption swaps the :class:`NetworkState` object, not the
        traffic process being predicted.
        """
        self._state = state
        for link in state.topology.links:
            self._capacity[link.key] = link.capacity
            if link.key not in self._link_predictors:
                self._link_predictors[link.key] = self._factory()

    @property
    def bound(self) -> bool:
        return self._state is not None

    @property
    def active(self) -> bool:
        """True once warm enough for reservations to be non-trivial."""
        return (
            self._state is not None
            and self.slots_observed >= self.config.effective_warmup
        )

    @property
    def trust(self) -> float:
        """The damping factor in force for the current slot."""
        return self._trust

    @property
    def mape(self) -> float:
        return self.link_score.mape()

    @property
    def guard_trips(self) -> int:
        return self.guard.trips

    # -- the slot loop ---------------------------------------------------

    def begin_slot(self, slot: int) -> None:
        """Refresh forecasts and trust before the slot is planned."""
        self._now = slot
        self._trust = self.guard.trust(slot, self.link_score.mape())
        self._raw = {}
        self._has_res = {}
        self._pending_link = {}
        self._pending_pair = {}
        if self._state is None:
            return
        horizon = self.config.horizon
        for key, predictor in self._link_predictors.items():
            if not predictor.ready:
                continue
            # forecast(1) targets the slot being decided right now; it
            # is scored at observe time.  Reservations start one slot
            # later: the present is observed, not predicted.
            self._pending_link[key] = predictor.forecast(1)
            per_slot = {
                slot + h: predictor.forecast(h + 1)
                for h in range(1, horizon + 1)
            }
            self._raw[key] = per_slot
            self._has_res[key] = any(v > VOLUME_ATOL for v in per_slot.values())
        for key, predictor in self._pair_predictors.items():
            if predictor.ready:
                self._pending_pair[key] = predictor.forecast(1)

    def reservation(self, src: int, dst: int, slot: int) -> float:
        """Damped GB of predicted-but-uncommitted load on a future cell.

        Zero for the current slot and the past, for cold links, and
        whenever the guard has damped trust to zero.  Otherwise the
        predicted carried volume minus what is already committed there,
        clamped by the guard's bounded shift fraction, scaled by trust.
        """
        if slot <= self._now or self._trust <= 0.0 or not self.active:
            return 0.0
        per_link = self._raw.get((src, dst))
        if not per_link:
            return 0.0
        raw = per_link.get(slot, 0.0)
        if raw <= 0.0:
            return 0.0
        remaining = raw - self._state.committed_volume(src, dst, slot)
        if remaining <= 0.0:
            return 0.0
        bounded = self.guard.bound(remaining, self._capacity[(src, dst)])
        return self._trust * bounded

    #: LP charge rows add the same damped quantity the fast lane
    #: subtracts from headroom — one number, two lanes.
    predicted_volume = reservation

    def observe_slot(self, slot: int, requests, state=None) -> None:
        """Train on the slot's final ledger volumes and arrivals."""
        if state is not None and self._state is None:
            self.bind(state)
        st = self._state
        if st is None:
            return
        for key, predictor in self._link_predictors.items():
            actual = st.committed_volume(key[0], key[1], slot)
            predicted = self._pending_link.get(key)
            if predicted is not None:
                self.link_score.observe(key, predicted, actual)
            predictor.observe(actual)
        arrivals: Dict[LinkKey, float] = defaultdict(float)
        for request in requests:
            arrivals[(request.source, request.destination)] += request.size_gb
        for key in arrivals:
            if key not in self._pair_predictors:
                self._pair_predictors[key] = self._factory()
        for key, predictor in self._pair_predictors.items():
            actual = arrivals.get(key, 0.0)
            predicted = self._pending_pair.get(key)
            if predicted is not None:
                self.pair_score.observe(key, predicted, actual)
            predictor.observe(actual)
        self.slots_observed += 1
        self.guard.update(slot, self.link_score.mape())
        reg = obs.get_registry()
        if reg.enabled:
            reg.counter("forecast.slots")
            reg.gauge("forecast.mape", self.link_score.mape())
            reg.gauge("forecast.bias", self.link_score.bias())
            reg.gauge("forecast.trust", self._trust)
            reg.gauge("forecast.shifted_gb", self.shifted_gb)

    def note_placements(self, entries) -> None:
        """Count committed volume that landed in forecast-quiet slots.

        ``shifted_gb`` is an activity indicator, not a counterfactual:
        a transit entry counts when it was deferred past the decision
        slot into a cell the forecast marks quiet while the same link
        carries a positive reservation elsewhere in the horizon.
        """
        if self._trust <= 0.0 or not self.active:
            return
        for entry in entries:
            if entry.kind is not ArcKind.TRANSIT or entry.slot <= self._now:
                continue
            key = (entry.src, entry.dst)
            if not self._has_res.get(key):
                continue
            if self._raw[key].get(entry.slot, 0.0) <= VOLUME_ATOL:
                self.shifted_gb += entry.volume

    # -- reporting -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """JSON-safe summary for result objects / the ``metrics`` op."""
        return {
            "active": self.active,
            "predictor": self.config.predictor,
            "period": self.config.period,
            "horizon": self.config.horizon,
            "slots_observed": self.slots_observed,
            "links": len(self._link_predictors),
            "pairs": len(self._pair_predictors),
            "mape": round(self.link_score.mape(), 6),
            "bias": round(self.link_score.bias(), 6),
            "arrival_mape": round(self.pair_score.mape(), 6),
            "trust": round(self._trust, 6),
            "shifted_gb": round(self.shifted_gb, 6),
            "guard_trips": self.guard.trips,
        }
