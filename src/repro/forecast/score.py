"""One accuracy scoreboard for every predictor — synthetic or learned.

:class:`ForecastScoreboard` keeps a rolling window of (predicted,
actual) pairs per key — a (src, dst) link for the background-traffic
predictors, a (src, dst) pair for arrival intensity, and the same for
:class:`~repro.traffic.predictor.NoisyPreview`'s synthetic previews —
and reports the two numbers the stability guard and the operators read:

* **MAPE** — the volume-weighted mean absolute percentage error
  ``sum |pred - actual| / sum actual`` over the window (a.k.a. WAPE).
  The volume weighting is deliberate: per-link per-slot traffic is
  sparse, and a plain per-observation MAPE divides by near-zero
  actuals and explodes on exactly the slots that matter least.
* **bias** — ``sum (pred - actual) / sum actual``: positive means the
  predictor systematically over-forecasts (and the damped controller
  over-reserves), negative means it under-forecasts.

Every observation also streams through :mod:`repro.obs` (a
``forecast.scored`` counter plus an absolute-error histogram) when a
sink is attached, so live services expose the same accuracy view the
offline benchmarks print.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, Optional, Tuple

from repro.errors import SchedulingError
from repro.obs import registry as obs

#: Denominator floor: below this much actual volume in the window the
#: error ratios are reported as 0 (nothing meaningful was predicted).
_MIN_ACTUAL = 1e-9


class ForecastScoreboard:
    """Rolling per-key forecast accuracy (volume-weighted MAPE + bias)."""

    def __init__(self, window: int = 96, name: str = "forecast"):
        if window < 1:
            raise SchedulingError(f"score window must be >= 1, got {window}")
        self.window = window
        self.name = name
        self._pairs: Dict[Hashable, Deque[Tuple[float, float]]] = {}
        self.observations = 0

    def observe(self, key: Hashable, predicted: float, actual: float) -> None:
        """Fold one (predicted, actual) sample for ``key`` in."""
        ring = self._pairs.get(key)
        if ring is None:
            ring = self._pairs[key] = deque(maxlen=self.window)
        ring.append((float(predicted), float(actual)))
        self.observations += 1
        reg = obs.get_registry()
        if reg.enabled:
            reg.counter(f"{self.name}.scored")
            reg.histogram(
                f"{self.name}.abs_error", abs(predicted - actual)
            )

    # -- queries ---------------------------------------------------------

    def _sums(self, key: Optional[Hashable]) -> Tuple[float, float, float]:
        """(sum |err|, sum signed err, sum actual) over the window."""
        if key is not None:
            rings = [self._pairs[key]] if key in self._pairs else []
        else:
            rings = list(self._pairs.values())
        abs_err = signed = actual_sum = 0.0
        for ring in rings:
            for predicted, actual in ring:
                abs_err += abs(predicted - actual)
                signed += predicted - actual
                actual_sum += actual
        return abs_err, signed, actual_sum

    def mape(self, key: Optional[Hashable] = None) -> float:
        """Volume-weighted MAPE over the window (all keys pooled by
        default)."""
        abs_err, _, actual_sum = self._sums(key)
        if actual_sum <= _MIN_ACTUAL:
            return 0.0
        return abs_err / actual_sum

    def bias(self, key: Optional[Hashable] = None) -> float:
        """Signed relative error: > 0 over-forecasts, < 0 under."""
        _, signed, actual_sum = self._sums(key)
        if actual_sum <= _MIN_ACTUAL:
            return 0.0
        return signed / actual_sum

    def keys(self):
        return list(self._pairs)

    def summary(self) -> Dict[str, float]:
        """The reporting set: pooled mape/bias plus coverage counts."""
        return {
            "observations": self.observations,
            "keys": len(self._pairs),
            "mape": round(self.mape(), 6),
            "bias": round(self.bias(), 6),
        }
