"""The heuristic fast lane: deadline-guaranteed scheduling without LPs.

Introduced in PR 4.  Postcard's per-slot LP is exact but its
assembly + solve cost grows with the batch size and the window length;
close-to-deadline heuristics (DCRoute, RCD) show that admission and
placement can run in near-constant time per request while still
guaranteeing deadlines.  This package supplies that fast lane and the
hybrid mode that escalates pressured slots back to the LP:

* :class:`~repro.heuristic.tracker.UtilizationTracker` — O(1)
  residual / paid-headroom / utilization queries over committed plus
  tentative load;
* :class:`~repro.heuristic.paths.CandidatePathIndex` — cached
  K-cheapest simple paths per (source, destination) pair;
* :class:`~repro.heuristic.fastlane.FastLaneScheduler` — per-request
  admission test plus as-late-as-possible placement (registry name
  ``"heuristic"``);
* :class:`~repro.heuristic.hybrid.HybridScheduler` — fast lane per
  slot, LP escalation when admission pressure crosses a threshold
  (registry name ``"hybrid"``).
"""

from repro.heuristic.fastlane import FastLaneScheduler, SlotPlan
from repro.heuristic.hybrid import HybridScheduler
from repro.heuristic.paths import CandidatePathIndex
from repro.heuristic.tracker import UtilizationTracker

__all__ = [
    "CandidatePathIndex",
    "FastLaneScheduler",
    "HybridScheduler",
    "SlotPlan",
    "UtilizationTracker",
]
