"""The fast-lane scheduler: constant-ish-time admission + ALAP placement.

Introduced in PR 4 (heuristic fast-lane scheduler).  Inspired by
close-to-deadline schedulers for inter-datacenter transfers (DCRoute,
RCD): instead of solving the Postcard LP every slot, each arriving
request passes a per-request **admission test** — is there residual
capacity along some candidate path that delivers the file within its
deadline ``T_k``? — and, if admitted, is placed by an
**as-late-as-possible (ALAP)** rule that packs bytes into the slots
nearest the deadline.  Keeping early slots free is what preserves
admission headroom for future, possibly tighter-deadline arrivals;
filling the charging ledger's already-paid headroom first is what keeps
the bill from growing when free capacity exists.

The complexity per request is O(candidate paths x window length): one
backward ALAP sweep per hop over at most ``T_k`` slots, with O(1)
capacity queries through the :class:`UtilizationTracker` — no graph
build, no LP assembly, no solve.  Admitted requests are guaranteed to
meet their deadline: placement only ever uses slots inside
``[release, release + T_k - 1]`` with per-hop precedence windows, and
the commit re-validates delivery, conservation, and capacity.

The trade-off is cost: the LP sees all of ``K(t)`` jointly and
optimizes the charged-volume objective exactly; the fast lane plans one
file at a time against marginal bill increase.  The
:class:`~repro.heuristic.hybrid.HybridScheduler` recovers most of the
gap by escalating pressured slots back to the LP.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import InfeasibleError, SchedulingError
from repro.core.interfaces import Scheduler
from repro.core.schedule import ScheduleEntry, TransferSchedule
from repro.core.state import NetworkState
from repro.heuristic.paths import CandidatePathIndex
from repro.heuristic.tracker import UtilizationTracker
from repro.net.topology import Topology
from repro.obs import registry as obs
from repro.timeexp.graph import ArcKind
from repro.traffic.spec import TransferRequest
from repro.units import VOLUME_ATOL

ON_INFEASIBLE_RAISE = "raise"
ON_INFEASIBLE_DROP = "drop"

#: Per-hop send volumes: slot -> GB leaving the hop's tail that slot.
HopSends = Dict[int, float]


@dataclass
class SlotPlan:
    """The fast lane's tentative decisions for one slot, before commit.

    ``plans`` pairs each admitted request with its schedule entries;
    ``rejected`` holds the requests that failed admission;
    ``peak_utilization`` is the highest (committed + planned) / capacity
    ratio over every link-slot the plan touches — the admission-pressure
    signal the hybrid mode thresholds on.
    """

    slot: int
    plans: List[Tuple[TransferRequest, List[ScheduleEntry]]] = field(
        default_factory=list
    )
    rejected: List[TransferRequest] = field(default_factory=list)
    peak_utilization: float = 0.0

    @property
    def admitted(self) -> int:
        return len(self.plans)


class FastLaneScheduler(Scheduler):
    """Deadline-guaranteed admission + close-to-deadline placement.

    Parameters
    ----------
    topology:
        The inter-datacenter network.
    horizon:
        Number of slots in the charging period (for the ledger).
    num_candidate_paths:
        Cheapest simple paths examined per request (the admission
        test's fan-out).
    on_infeasible:
        ``"raise"`` propagates :class:`InfeasibleError` on the first
        inadmissible request; ``"drop"`` records it via
        ``state.reject`` and continues.
    state:
        Optional externally owned :class:`NetworkState` to plan and
        commit against — the hybrid scheduler passes the LP
        scheduler's state here so both lanes share one ledger.
    """

    name = "heuristic"

    def __init__(
        self,
        topology: Topology,
        horizon: int,
        num_candidate_paths: int = 4,
        on_infeasible: str = ON_INFEASIBLE_RAISE,
        state: Optional[NetworkState] = None,
    ):
        if on_infeasible not in (ON_INFEASIBLE_RAISE, ON_INFEASIBLE_DROP):
            raise SchedulingError(f"unknown on_infeasible policy {on_infeasible!r}")
        self._state = state if state is not None else NetworkState(topology, horizon)
        self.on_infeasible = on_infeasible
        self._paths = CandidatePathIndex(topology, max_paths=num_candidate_paths)
        self._tracker = UtilizationTracker(self._state)
        #: Optional :class:`~repro.forecast.provider.ForecastProvider`;
        #: ``None`` (the default) keeps placement purely reactive.
        self._forecast = None

    @property
    def state(self) -> NetworkState:
        return self._state

    def adopt_state(self, state: NetworkState) -> None:
        """Re-point at a restored state (checkpoint resume path).

        The utilization tracker holds a state reference, so it is
        rebuilt alongside — a stale tracker would answer capacity
        queries against the abandoned state.  An attached forecast
        provider is re-wired onto the fresh tracker (and keeps its
        predictor state: the traffic process did not change, only the
        ledger object did).
        """
        self._state = state
        self._tracker = UtilizationTracker(state)
        if self._forecast is not None:
            self.attach_forecast(self._forecast)

    def attach_forecast(self, provider) -> None:
        """Wire a forecast provider into the ALAP placement passes.

        The provider's damped reservations are subtracted from the
        headroom/residual answers of two extra *preference* passes;
        the plain passes still run after them, so admission is
        untouched — a reservation can only change where admitted
        volume parks.
        """
        self._forecast = provider
        self._tracker.reservation = (
            provider.reservation if provider is not None else None
        )
        if provider is not None and not provider.bound:
            provider.bind(self._state)

    @property
    def forecast(self):
        return self._forecast

    @property
    def tracker(self) -> UtilizationTracker:
        """The live utilization view (pending load of the current batch)."""
        return self._tracker

    # -- public entry ------------------------------------------------------

    def on_slot(self, slot: int, requests: List[TransferRequest]) -> TransferSchedule:
        """Admit-and-place the files released at ``slot``; commit the result.

        Args:
            slot: The current slot index (must equal every request's
                ``release_slot``).
            requests: The newly released files ``K(t)``.

        Returns:
            The committed :class:`TransferSchedule` for the admitted
            requests (empty when everything was rejected or no requests
            arrived).

        Raises:
            InfeasibleError: some request failed admission and the
                policy is ``on_infeasible="raise"``.
        """
        if not requests:
            return TransferSchedule()
        plan = self.plan_slot(slot, requests)
        if plan.rejected and self.on_infeasible == ON_INFEASIBLE_RAISE:
            ids = [r.request_id for r in plan.rejected]
            raise InfeasibleError(
                f"fast lane cannot admit files {ids} at slot {slot}"
            )
        return self.commit_plan(plan)

    def plan_slot(self, slot: int, requests: List[TransferRequest]) -> SlotPlan:
        """Plan every request tentatively — nothing is committed.

        Requests are processed tightest-deadline-first (ties: largest
        desired rate), each seeing the tentative load of the ones
        planned before it through the tracker.  The returned
        :class:`SlotPlan` can be committed with :meth:`commit_plan` or
        discarded (the hybrid mode discards it when escalating).
        """
        self._check_release(slot, requests)
        self._tracker.reset()
        plan = SlotPlan(slot=slot)
        with obs.span(
            "scheduler.fastlane", slot=slot, requests=len(requests)
        ):
            ordered = sorted(
                requests, key=lambda r: (r.deadline_slots, -r.desired_rate)
            )
            for request in ordered:
                entries = self._plan_file(request)
                if entries is None:
                    plan.rejected.append(request)
                    continue
                plan.plans.append((request, entries))
                for e in entries:
                    if e.kind is ArcKind.TRANSIT:
                        self._tracker.add(e.src, e.dst, e.slot, e.volume)
            plan.peak_utilization = self._tracker.peak_utilization()
        return plan

    def commit_plan(self, plan: SlotPlan) -> TransferSchedule:
        """Apply a :class:`SlotPlan`: record rejections, commit schedules.

        Each admitted request is committed individually (the commit
        audit validates delivery, conservation, deadline windows, and
        residual capacity), and the merged schedule is returned.
        """
        for request in plan.rejected:
            self._state.reject(request)
            obs.counter("heuristic.rejected")
        all_entries: List[ScheduleEntry] = []
        for request, entries in plan.plans:
            schedule = TransferSchedule(entries)
            self._state.commit(schedule, [request])
            all_entries.extend(schedule.entries)
            obs.counter("heuristic.admitted")
        self._tracker.reset()
        return TransferSchedule(all_entries)

    # -- per-file planning -------------------------------------------------

    def _check_release(self, slot: int, requests: List[TransferRequest]) -> None:
        for request in requests:
            if request.release_slot != slot:
                raise SchedulingError(
                    f"file {request.request_id} released at "
                    f"{request.release_slot}, scheduled at {slot}"
                )

    def _plan_file(self, request: TransferRequest) -> Optional[List[ScheduleEntry]]:
        """Admission test + placement: the cheapest feasible candidate.

        Tries every candidate path with the headroom-first ALAP rule
        and, for paths where free capacity fragments the placement into
        infeasibility, retries with the pure ALAP rule.  Returns the
        feasible plan with the smallest marginal bill increase, or
        ``None`` (inadmissible) when no candidate fits.
        """
        best: Optional[Tuple[float, int, List[ScheduleEntry]]] = None
        candidates = self._paths.candidates(
            request.source,
            request.destination,
            request.deadline_slots,
            # Window-aware candidates: never spend ALAP sweeps on a path
            # with a hop that stays dark for the whole request window.
            schedule=getattr(self._state, "link_schedule", None),
            window=(request.release_slot, request.last_slot + 1),
        )
        for path in candidates:
            entries = self._plan_on_path(path, request, headroom_first=True)
            if entries is None:
                entries = self._plan_on_path(path, request, headroom_first=False)
            if entries is None:
                continue
            cost = self._marginal_cost(entries)
            key = (cost, len(path))
            if best is None or key < (best[0], best[1]):
                best = (cost, len(path), entries)
        return None if best is None else best[2]

    def _plan_on_path(
        self, path: List[int], request: TransferRequest, headroom_first: bool
    ) -> Optional[List[ScheduleEntry]]:
        """ALAP placement along one path, planned backward from the deadline.

        Hop ``h`` (0-based, of ``L``) may use slots
        ``[release + h, release + T - (L - h)]``.  Hops are planned in
        reverse: the last hop owes the whole file by the deadline; each
        earlier hop owes, by slot ``n - 1``, whatever the next hop
        sends at slot ``n`` (store-and-forward precedence).  Within a
        hop the dues are packed into the latest admissible slots —
        already-paid headroom first when ``headroom_first`` — so early
        slots stay free for future arrivals.
        """
        hops = len(path) - 1
        release, last = request.release_slot, request.last_slot
        sends: List[HopSends] = [{} for _ in range(hops)]
        #: deadline slot -> volume the current hop must have sent by then.
        dues: Dict[int, float] = {last: request.size_gb}
        for h in range(hops - 1, -1, -1):
            first_h = release + h
            last_h = last - (hops - 1 - h)
            sent = self._alap_hop(
                path[h], path[h + 1], first_h, last_h, dues, headroom_first
            )
            if sent is None:
                return None
            sends[h] = sent
            next_dues: Dict[int, float] = defaultdict(float)
            for n, volume in sent.items():
                next_dues[n - 1] += volume
            dues = next_dues

        entries: List[ScheduleEntry] = []
        arrivals: HopSends = {release: request.size_gb}
        for h in range(hops):
            self._emit_hop(entries, request, path[h], path[h + 1], sends[h], arrivals)
            arrivals = {
                n + 1: v for n, v in sends[h].items() if v > VOLUME_ATOL
            }
        return entries

    def _alap_hop(
        self,
        src: int,
        dst: int,
        first: int,
        last: int,
        dues: Dict[int, float],
        headroom_first: bool,
    ) -> Optional[HopSends]:
        """Pack one hop's dues into its window, latest slots first.

        ``dues`` maps a deadline slot to the volume that must have left
        by its end.  The sweep walks slots from ``last`` down to
        ``first``; placing at slot ``n`` is capped so that, at every
        cutoff ``m <= n``, the volume parked at slots ``>= m`` never
        exceeds what is *allowed* to be that late (total minus the dues
        already binding at ``m - 1``).  Within a single descending pass
        the cutoff at ``n`` itself is the binding one, but a later
        capacity pass placing at a slot *above* volume an earlier pass
        already parked must recheck the lower cutoffs too — otherwise
        the earlier placement silently consumes lateness budget the
        later one then overdraws.  With ``headroom_first`` a free pass
        (paid-peak headroom only) runs before the paid pass (full
        residual capacity).

        Returns the slot -> volume sends, or ``None`` if the window
        cannot carry the dues.
        """
        total = sum(dues.values())
        tol = max(VOLUME_ATOL, 1e-9 * total)
        sent: HopSends = defaultdict(float)
        if total <= tol:
            return {}
        if first > last:
            return None

        def due_through(n: int) -> float:
            return sum(v for d, v in dues.items() if d <= n)

        remaining = total
        forecast = self._forecast
        if forecast is not None and forecast.active:
            # Forecast-aware preference passes run before their
            # reactive twins: park volume in forecast-quiet slots
            # first (free, then paid), and only then fall back to the
            # unreserved views — so a wrong forecast degrades
            # placement preference, never admission.  With every
            # reservation zero (cold or fully damped provider) the
            # prefixed passes place exactly what the plain ones would,
            # bit for bit.
            cap_fns = []
            if headroom_first:
                cap_fns.append(self._tracker.forecast_headroom)
                cap_fns.append(self._tracker.headroom)
            cap_fns.append(self._tracker.forecast_residual)
            cap_fns.append(self._tracker.residual)
        else:
            cap_fns = [self._tracker.residual]
            if headroom_first:
                cap_fns.insert(0, self._tracker.headroom)
        for cap_fn in cap_fns:
            if remaining <= tol:
                break
            for n in range(last, first - 1, -1):
                if remaining <= tol:
                    break
                cap = cap_fn(src, dst, n) - sent[n]
                if cap <= VOLUME_ATOL:
                    continue
                placed_at_or_after = sum(
                    v for m, v in sent.items() if m >= n
                )
                allowed = (total - due_through(n - 1)) - placed_at_or_after
                for m in range(n - 1, first - 1, -1):
                    placed_at_or_after += sent.get(m, 0.0)
                    slack = (total - due_through(m - 1)) - placed_at_or_after
                    if slack < allowed:
                        allowed = slack
                take = min(cap, allowed, remaining)
                if take > VOLUME_ATOL:
                    sent[n] += take
                    remaining -= take
        if remaining > tol:
            return None
        return {n: v for n, v in sent.items() if v > VOLUME_ATOL}

    def _marginal_cost(self, entries: List[ScheduleEntry]) -> float:
        """Bill increase if ``entries`` joined the committed + pending load."""
        load: Dict[Tuple[int, int, int], float] = defaultdict(float)
        for e in entries:
            if e.kind is ArcKind.TRANSIT:
                load[(e.src, e.dst, e.slot)] += e.volume
        peak_add: Dict[Tuple[int, int], float] = defaultdict(float)
        for (src, dst, slot), volume in load.items():
            level = (
                volume
                + self._state.committed_volume(src, dst, slot)
                + self._tracker.pending(src, dst, slot)
            )
            over = level - self._state.charged_volume(src, dst)
            if over > peak_add[(src, dst)]:
                peak_add[(src, dst)] = over
        return sum(
            self._state.topology.link(src, dst).price * over
            for (src, dst), over in peak_add.items()
            if over > 0.0
        )

    def _emit_hop(
        self,
        entries: List[ScheduleEntry],
        request: TransferRequest,
        src: int,
        dst: int,
        sent: HopSends,
        arrivals: HopSends,
    ) -> None:
        """Transit entries for one hop plus holdovers while data waits.

        ``arrivals`` maps the slot at which volume becomes available at
        the hop's tail node; volume that arrives before it departs is
        parked there with explicit holdover entries, one per waiting
        slot, so the schedule's flow-conservation audit balances.
        """
        rid = request.request_id
        if not sent:
            return
        last_action = max(sent)
        cursor = min(list(arrivals) + [min(sent)])
        buffered = 0.0
        for n in range(cursor, last_action + 1):
            buffered += arrivals.get(n, 0.0)
            volume = sent.get(n, 0.0)
            if volume > VOLUME_ATOL:
                entries.append(ScheduleEntry(rid, src, dst, n, volume))
                buffered -= volume
            if buffered > VOLUME_ATOL and n < last_action:
                entries.append(
                    ScheduleEntry(rid, src, src, n, buffered, ArcKind.HOLDOVER)
                )
