"""Hybrid scheduling: fast lane by default, LP under pressure.

Introduced in PR 4 (heuristic fast-lane scheduler).  The fast lane
admits and places requests in O(paths x window) per request but plans
one file at a time; the Postcard LP optimizes each slot's batch jointly
but costs an assembly + solve.  :class:`HybridScheduler` runs the fast
lane on every slot and **escalates** to the LP only when admission
pressure says the greedy placement is likely leaving money (or
admissions) on the table:

* a request fails the fast lane's admission test (a rejection the LP
  might still fit by repacking everyone jointly), or
* the planned batch pushes some link-slot's utilization above a
  configurable threshold (the fast lane's marginal-cost placement
  degrades exactly when links run hot).

Both lanes share one :class:`~repro.core.state.NetworkState` — one
ledger, one bill — so escalated slots see everything the fast lane
committed and vice versa.  The LP lane is a full
:class:`~repro.core.scheduler.PostcardScheduler`, so escalations reuse
the PR 3 fast path: incremental graph reuse across escalations and
warm starts threaded from the previous LP solve.

Escalations are observable: the ``hybrid.escalations`` /
``hybrid.fast_slots`` counters and the ``hybrid.escalate`` span stream
through :mod:`repro.obs`, and the simulation engine copies the tallies
onto :class:`~repro.sim.metrics.SimulationResult`.
"""

from __future__ import annotations

from typing import List

from repro.errors import SchedulingError
from repro.core.formulation import STORAGE_FULL
from repro.core.interfaces import Scheduler
from repro.core.schedule import TransferSchedule
from repro.core.scheduler import ON_INFEASIBLE_RAISE, PostcardScheduler
from repro.core.state import NetworkState
from repro.heuristic.fastlane import FastLaneScheduler
from repro.net.topology import Topology
from repro.obs import registry as obs
from repro.traffic.spec import TransferRequest


class HybridScheduler(Scheduler):
    """Fast-lane heuristic with LP escalation on admission pressure.

    Parameters
    ----------
    topology, horizon:
        As for every scheduler.
    backend:
        LP backend used by escalated slots (``"highs"`` default).
    storage:
        Storage mode for the LP lane (``"full"`` default).
    on_infeasible:
        Applied by the *LP* lane on escalated slots (``"raise"`` or
        ``"drop"``); the fast lane itself never drops — an
        inadmissible request triggers escalation instead.
    escalate_utilization:
        Escalate when the planned batch's peak link-slot utilization
        exceeds this fraction (default 0.9).  Set > 1 to escalate on
        rejections only.
    escalate_on_rejection:
        Escalate when the fast lane cannot admit some request
        (default True).  With False, fast-lane rejections are final
        and recorded as drops.
    num_candidate_paths:
        Fast-lane admission fan-out.
    incremental, warm_start:
        Forwarded to the LP lane (PR 3's fast scheduling path).
    """

    name = "hybrid"

    def __init__(
        self,
        topology: Topology,
        horizon: int,
        backend: str = "highs",
        storage: str = STORAGE_FULL,
        on_infeasible: str = ON_INFEASIBLE_RAISE,
        escalate_utilization: float = 0.9,
        escalate_on_rejection: bool = True,
        num_candidate_paths: int = 4,
        incremental: bool = True,
        warm_start: bool = True,
    ):
        if escalate_utilization <= 0.0:
            raise SchedulingError(
                f"escalate_utilization must be positive, got {escalate_utilization}"
            )
        self._lp = PostcardScheduler(
            topology,
            horizon,
            backend=backend,
            storage=storage,
            on_infeasible=on_infeasible,
            incremental=incremental,
            warm_start=warm_start,
        )
        self._fast = FastLaneScheduler(
            topology,
            horizon,
            num_candidate_paths=num_candidate_paths,
            on_infeasible="drop",
            state=self._lp.state,
        )
        self.escalate_utilization = escalate_utilization
        self.escalate_on_rejection = escalate_on_rejection
        #: Slots handed to the LP because of admission pressure.
        self.escalations = 0
        #: Slots the fast lane handled end to end.
        self.fast_slots = 0

    @property
    def state(self) -> NetworkState:
        """The single ledger both lanes plan and commit against."""
        return self._lp.state

    def adopt_state(self, state: NetworkState) -> None:
        """Re-point both lanes at a restored state (checkpoint resume).

        The shared-ledger invariant must survive the swap: the LP lane
        and the fast lane (including its tracker) end up on the same
        restored :class:`NetworkState`.
        """
        self._lp.adopt_state(state)
        self._fast.adopt_state(state)

    @property
    def fast_lane(self) -> FastLaneScheduler:
        return self._fast

    @property
    def lp_lane(self) -> PostcardScheduler:
        return self._lp

    def on_slot(self, slot: int, requests: List[TransferRequest]) -> TransferSchedule:
        """Plan with the fast lane; escalate to the LP under pressure.

        Args:
            slot: The current slot index.
            requests: The files released at ``slot``.

        Returns:
            The committed schedule, from whichever lane handled the
            slot.
        """
        if not requests:
            return TransferSchedule()
        plan = self._fast.plan_slot(slot, requests)
        rejected = bool(plan.rejected) and self.escalate_on_rejection
        pressured = plan.peak_utilization > self.escalate_utilization
        if rejected or pressured:
            self.escalations += 1
            obs.counter("hybrid.escalations")
            with obs.span(
                "hybrid.escalate",
                slot=slot,
                rejections=len(plan.rejected),
                peak_utilization=round(plan.peak_utilization, 4),
            ):
                return self._lp.on_slot(slot, requests)
        self.fast_slots += 1
        obs.counter("hybrid.fast_slots")
        with obs.span(
            "hybrid.fastpath",
            slot=slot,
            files=len(requests),
            peak_utilization=round(plan.peak_utilization, 4),
        ):
            return self._fast.commit_plan(plan)
