"""Hybrid scheduling: fast lane by default, LP under pressure.

Introduced in PR 4 (heuristic fast-lane scheduler).  The fast lane
admits and places requests in O(paths x window) per request but plans
one file at a time; the Postcard LP optimizes each slot's batch jointly
but costs an assembly + solve.  :class:`HybridScheduler` runs the fast
lane on every slot and **escalates** to the LP only when admission
pressure says the greedy placement is likely leaving money (or
admissions) on the table:

* a request fails the fast lane's admission test (a rejection the LP
  might still fit by repacking everyone jointly), or
* the planned batch pushes some link-slot's utilization above a
  configurable threshold (the fast lane's marginal-cost placement
  degrades exactly when links run hot).

Both lanes share one :class:`~repro.core.state.NetworkState` — one
ledger, one bill — so escalated slots see everything the fast lane
committed and vice versa.  The LP lane is a full
:class:`~repro.core.scheduler.PostcardScheduler`, so escalations reuse
the PR 3 fast path: incremental graph reuse across escalations and
warm starts threaded from the previous LP solve.

Escalations are observable: the ``hybrid.escalations`` /
``hybrid.fast_slots`` counters and the ``hybrid.escalate`` span stream
through :mod:`repro.obs`, and the simulation engine copies the tallies
onto :class:`~repro.sim.metrics.SimulationResult`.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

from repro.errors import SchedulingError
from repro.core.formulation import STORAGE_FULL
from repro.core.interfaces import Scheduler
from repro.core.schedule import TransferSchedule
from repro.core.scheduler import ON_INFEASIBLE_RAISE, PostcardScheduler
from repro.core.state import NetworkState
from repro.heuristic.fastlane import FastLaneScheduler
from repro.net.topology import Topology
from repro.obs import registry as obs
from repro.traffic.spec import TransferRequest


class HybridScheduler(Scheduler):
    """Fast-lane heuristic with LP escalation on admission pressure.

    Parameters
    ----------
    topology, horizon:
        As for every scheduler.
    backend:
        LP backend used by escalated slots (``"highs"`` default).
    storage:
        Storage mode for the LP lane (``"full"`` default).
    on_infeasible:
        Applied by the *LP* lane on escalated slots (``"raise"`` or
        ``"drop"``); the fast lane itself never drops — an
        inadmissible request triggers escalation instead.
    escalate_utilization:
        Escalate when the planned batch's peak link-slot utilization
        exceeds this fraction (default 0.9).  Set > 1 to escalate on
        rejections only.
    escalate_on_rejection:
        Escalate when the fast lane cannot admit some request
        (default True).  With False, fast-lane rejections are final
        and recorded as drops.
    num_candidate_paths:
        Fast-lane admission fan-out.
    incremental, warm_start:
        Forwarded to the LP lane (PR 3's fast scheduling path).
    watchdog_timeout_s:
        When positive, escalated solves run under a watchdog: the LP's
        *plan* phase (pure — no state mutation) executes on a worker
        thread, and if it has not answered within this budget the slot
        **degrades** to fast-lane-only placement so clients still get
        decisions within the tick.  0 (default) disables the watchdog
        and escalation runs inline, exactly as before.
    watchdog_backoff_slots, watchdog_backoff_max:
        Bounded-backoff re-arm: after a degrade, this many subsequent
        escalation-worthy slots skip the LP outright (doubling per
        consecutive degrade up to the max), and the LP is additionally
        skipped while an abandoned solve is still running — its thread
        shares the warm-start/graph-cache scratch state, so a new solve
        must not race it.  A successful escalation resets the backoff.
    escalate_hook:
        Called at the start of every escalated solve; the service's
        chaos harness injects stalls here.  ``None`` in production.
    """

    name = "hybrid"

    def __init__(
        self,
        topology: Topology,
        horizon: int,
        backend: str = "highs",
        storage: str = STORAGE_FULL,
        on_infeasible: str = ON_INFEASIBLE_RAISE,
        escalate_utilization: float = 0.9,
        escalate_on_rejection: bool = True,
        num_candidate_paths: int = 4,
        incremental: bool = True,
        warm_start: bool = True,
        watchdog_timeout_s: float = 0.0,
        watchdog_backoff_slots: int = 2,
        watchdog_backoff_max: int = 16,
        escalate_hook: Optional[Callable[[], None]] = None,
    ):
        if escalate_utilization <= 0.0:
            raise SchedulingError(
                f"escalate_utilization must be positive, got {escalate_utilization}"
            )
        if watchdog_timeout_s < 0.0:
            raise SchedulingError(
                f"watchdog_timeout_s must be non-negative, got {watchdog_timeout_s}"
            )
        if watchdog_backoff_slots < 1 or watchdog_backoff_max < watchdog_backoff_slots:
            raise SchedulingError(
                "need 1 <= watchdog_backoff_slots <= watchdog_backoff_max, "
                f"got {watchdog_backoff_slots}/{watchdog_backoff_max}"
            )
        self._lp = PostcardScheduler(
            topology,
            horizon,
            backend=backend,
            storage=storage,
            on_infeasible=on_infeasible,
            incremental=incremental,
            warm_start=warm_start,
        )
        self._fast = FastLaneScheduler(
            topology,
            horizon,
            num_candidate_paths=num_candidate_paths,
            on_infeasible="drop",
            state=self._lp.state,
        )
        self.escalate_utilization = escalate_utilization
        self.escalate_on_rejection = escalate_on_rejection
        self.watchdog_timeout_s = watchdog_timeout_s
        self.watchdog_backoff_slots = watchdog_backoff_slots
        self.watchdog_backoff_max = watchdog_backoff_max
        self._escalate_hook = escalate_hook or (lambda: None)
        #: Slots handed to the LP because of admission pressure.
        self.escalations = 0
        #: Slots the fast lane handled end to end.
        self.fast_slots = 0
        #: Escalation-worthy slots the watchdog degraded (LP timed out).
        self.degraded = 0
        #: Escalation-worthy slots forced fast-lane by backoff/zombie.
        self.lp_skipped = 0
        self._backoff_remaining = 0
        self._backoff_next = watchdog_backoff_slots
        #: An abandoned (timed-out) solve still running; while alive,
        #: the LP lane is poisoned — its warm-start and graph-cache
        #: scratch state may be mid-mutation on that thread.
        self._zombie: Optional[threading.Thread] = None
        #: Optional :class:`~repro.forecast.provider.ForecastProvider`
        #: driving proactive placement in both lanes; ``None`` (the
        #: default) is the purely reactive scheduler, bit for bit.
        self.forecast = None

    @property
    def state(self) -> NetworkState:
        """The single ledger both lanes plan and commit against."""
        return self._lp.state

    def adopt_state(self, state: NetworkState) -> None:
        """Re-point both lanes at a restored state (checkpoint resume).

        The shared-ledger invariant must survive the swap: the LP lane
        and the fast lane (including its tracker) end up on the same
        restored :class:`NetworkState`.
        """
        self._lp.adopt_state(state)
        self._fast.adopt_state(state)
        if self.forecast is not None:
            # Predictor state (learned seasonals, accuracy windows)
            # survives the swap; only the capacity cache and link set
            # are refreshed from the restored topology.
            self.forecast.bind(state)

    @property
    def fast_lane(self) -> FastLaneScheduler:
        return self._fast

    @property
    def lp_lane(self) -> PostcardScheduler:
        return self._lp

    def attach_forecast(self, provider) -> None:
        """Drive both lanes from ``provider``'s predictions.

        The fast lane gains the forecast-aware ALAP passes (reserved
        cells are tried last among otherwise-equal slots) and the LP
        lane adds predicted background volume to its charge rows.
        Admission is untouched in both lanes: the plain residual pass
        still runs, and LP capacity rows never see a reservation.
        """
        self.forecast = provider
        self._fast.attach_forecast(provider)
        self._lp.forecast = provider
        provider.bind(self.state)

    def on_slot(self, slot: int, requests: List[TransferRequest]) -> TransferSchedule:
        """Plan with the fast lane; escalate to the LP under pressure.

        Args:
            slot: The current slot index.
            requests: The files released at ``slot``.

        Returns:
            The committed schedule, from whichever lane handled the
            slot.
        """
        forecast = self.forecast
        if forecast is not None:
            forecast.begin_slot(slot)
        schedule = self._dispatch(slot, requests)
        if forecast is not None:
            # Observe *after* commit so the slot's own placements are
            # part of the actual the predictors train on.  Empty-request
            # slots still observe: links may carry volume deferred from
            # earlier slots, and skipping them would desync seasonals.
            forecast.note_placements(schedule.entries)
            forecast.observe_slot(slot, requests, self.state)
        return schedule

    def _dispatch(self, slot: int, requests: List[TransferRequest]) -> TransferSchedule:
        """Route one slot through the fast lane or the LP."""
        if not requests:
            return TransferSchedule()
        plan = self._fast.plan_slot(slot, requests)
        rejected = bool(plan.rejected) and self.escalate_on_rejection
        pressured = plan.peak_utilization > self.escalate_utilization
        if rejected or pressured:
            return self._escalate(slot, requests, plan)
        self.fast_slots += 1
        obs.counter("hybrid.fast_slots")
        with obs.span(
            "hybrid.fastpath",
            slot=slot,
            files=len(requests),
            peak_utilization=round(plan.peak_utilization, 4),
        ):
            return self._fast.commit_plan(plan)

    def replay_slot(
        self, slot: int, requests: List[TransferRequest], lane: str
    ) -> TransferSchedule:
        """Re-run one slot on the lane the WAL commit record names.

        Crash recovery must reproduce *placements*, not re-decide them:
        a degraded slot was placed by the fast lane even though it was
        escalation-worthy, and replaying it through the pressure test
        would route it to the LP and diverge the ledger.  Forcing the
        recorded lane keeps replay deterministic under any watchdog
        history.  The forecast lifecycle mirrors :meth:`on_slot` so a
        provider attached before replay retrains to the same state it
        held when the WAL was written.
        """
        forecast = self.forecast
        if forecast is not None:
            forecast.begin_slot(slot)
        schedule = self._replay_dispatch(slot, requests, lane)
        if forecast is not None:
            forecast.note_placements(schedule.entries)
            forecast.observe_slot(slot, requests, self.state)
        return schedule

    def _replay_dispatch(
        self, slot: int, requests: List[TransferRequest], lane: str
    ) -> TransferSchedule:
        if not requests:
            return TransferSchedule()
        if lane == "lp":
            self.escalations += 1
            return self._lp.on_slot(slot, requests)
        plan = self._fast.plan_slot(slot, requests)
        if lane == "degraded":
            self.degraded += 1
        else:
            self.fast_slots += 1
        return self._fast.commit_plan(plan)

    # -- escalation --------------------------------------------------------

    def _escalate(self, slot, requests, plan) -> TransferSchedule:
        """Hand an escalation-worthy slot to the LP — watchdog allowing."""
        watchdog = self.watchdog_timeout_s > 0
        if watchdog:
            zombie = self._zombie is not None and self._zombie.is_alive()
            if not zombie:
                self._zombie = None
            if self._backoff_remaining > 0 or zombie:
                if self._backoff_remaining > 0:
                    self._backoff_remaining -= 1
                self.lp_skipped += 1
                obs.counter("hybrid.lp_skipped", zombie=zombie)
                return self._commit_degraded(slot, plan, reason="backoff")

        self.escalations += 1
        obs.counter("hybrid.escalations")
        with obs.span(
            "hybrid.escalate",
            slot=slot,
            rejections=len(plan.rejected),
            peak_utilization=round(plan.peak_utilization, 4),
        ):
            if not watchdog:
                self._escalate_hook()
                return self._lp.on_slot(slot, requests)

            outcome = {}

            def solve() -> None:
                try:
                    self._escalate_hook()
                    outcome["plan"] = self._lp.plan_slot(slot, requests)
                except BaseException as exc:  # delivered to the caller
                    outcome["error"] = exc

            worker = threading.Thread(
                target=solve, name=f"lp-escalate-{slot}", daemon=True
            )
            worker.start()
            worker.join(self.watchdog_timeout_s)
            if worker.is_alive():
                # Abandon the solve: it has touched no ledger state and
                # its eventual result is discarded.  Poison the LP lane
                # until the thread is reaped, arm the backoff window.
                self._zombie = worker
                self.degraded += 1
                self._backoff_remaining = self._backoff_next
                self._backoff_next = min(
                    self._backoff_next * 2, self.watchdog_backoff_max
                )
                obs.counter("service.degraded", slot=slot)
                return self._commit_degraded(slot, plan, reason="timeout")
            if "error" in outcome:
                raise outcome["error"]
            self._backoff_next = self.watchdog_backoff_slots
            return self._lp.commit_plan(outcome["plan"])

    def _commit_degraded(self, slot, plan, reason: str) -> TransferSchedule:
        """Finish an escalation-worthy slot fast-lane-only.

        The fast plan already exists (it is what flagged the pressure);
        committing it keeps every admissible request's deadline
        guarantee, and the requests the fast lane could not admit are
        recorded as rejections — the price of degrading, paid visibly
        (``service.degraded`` / the ``degraded_slots`` SLO) instead of
        by missing every deadline in a stalled slot.
        """
        with obs.span(
            "hybrid.degraded",
            slot=slot,
            reason=reason,
            rejections=len(plan.rejected),
            peak_utilization=round(plan.peak_utilization, 4),
        ):
            return self._fast.commit_plan(plan)
