"""Cached candidate paths for the fast-lane admission test.

Introduced in PR 4 (heuristic fast-lane scheduler).  The LP considers
every path implicitly through the time-expanded graph; the fast lane
instead examines a handful of *candidate* simple paths per
(source, destination) pair, cheapest-first by per-GB price.  Because
the topology is fixed for a scheduler's lifetime, the candidate lists
are computed once per pair and cached — after warm-up, admission does
no graph search at all, which is what makes per-request admission
O(paths x window) instead of an LP solve.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

import networkx as nx

from repro.errors import SchedulingError
from repro.net.topology import Topology


class CandidatePathIndex:
    """K-cheapest-simple-path lists per (src, dst), computed lazily.

    Parameters
    ----------
    topology:
        The inter-datacenter network; prices weight the path search.
    max_paths:
        Candidates returned per query.  Internally ``2 * max_paths``
        paths are cached so deadline filtering (long paths cannot meet
        short deadlines) still leaves choices.
    """

    def __init__(self, topology: Topology, max_paths: int = 4):
        if max_paths < 1:
            raise SchedulingError("need at least one candidate path")
        self.topology = topology
        self.max_paths = max_paths
        self._graph = topology.to_networkx()
        self._cache: Dict[Tuple[int, int], List[List[int]]] = {}

    def candidates(self, src: int, dst: int, max_hops: int) -> List[List[int]]:
        """Up to ``max_paths`` cheapest paths with at most ``max_hops`` hops.

        Returns node-id lists (``[src, ..., dst]``), cheapest first.
        An unreachable pair returns an empty list (and caches that).
        """
        paths = self._cache.get((src, dst))
        if paths is None:
            try:
                generator = nx.shortest_simple_paths(
                    self._graph, src, dst, weight="price"
                )
                paths = list(itertools.islice(generator, self.max_paths * 2))
            except nx.NetworkXNoPath:
                paths = []
            self._cache[(src, dst)] = paths
        usable = [p for p in paths if len(p) - 1 <= max_hops]
        return usable[: self.max_paths]

    def __len__(self) -> int:
        """Number of (src, dst) pairs already indexed."""
        return len(self._cache)
