"""Cached candidate paths for the fast-lane admission test.

Introduced in PR 4 (heuristic fast-lane scheduler).  The LP considers
every path implicitly through the time-expanded graph; the fast lane
instead examines a handful of *candidate* simple paths per
(source, destination) pair, cheapest-first by per-GB price.  Because
the topology is fixed for a scheduler's lifetime, the candidate lists
are computed once per pair and cached — after warm-up, admission does
no graph search at all, which is what makes per-request admission
O(paths x window) instead of an LP solve.

With a :class:`repro.net.schedule.LinkSchedule` in play the picture is
time-varying: a path that is cheapest on paper is useless if one of
its hops never lights up inside the request's window.  ``candidates``
therefore accepts the schedule plus the request's slot window, drops
paths with a fully-dark hop, prefers paths whose hops are up
throughout the window, and — when the static list runs short — runs a
window-specific search over the subgraph of links with at least one
up-slot.  Window-specific results are cached under the schedule's
**epoch**, so a reopened link is re-discovered by the very next query
after the mutation without rebuilding the static index.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.errors import SchedulingError
from repro.net.schedule import LinkSchedule
from repro.net.topology import Topology

#: Window-cache entries kept before wholesale pruning; epoch churn
#: retires entries naturally, this only bounds pathological workloads.
_WINDOW_CACHE_LIMIT = 4096


class CandidatePathIndex:
    """K-cheapest-simple-path lists per (src, dst), computed lazily.

    Parameters
    ----------
    topology:
        The inter-datacenter network; prices weight the path search.
    max_paths:
        Candidates returned per query.  Internally ``2 * max_paths``
        paths are cached so deadline filtering (long paths cannot meet
        short deadlines) still leaves choices.
    """

    def __init__(self, topology: Topology, max_paths: int = 4):
        if max_paths < 1:
            raise SchedulingError("need at least one candidate path")
        self.topology = topology
        self.max_paths = max_paths
        self._graph = topology.to_networkx()
        self._cache: Dict[Tuple[int, int], List[List[int]]] = {}
        #: (src, dst, schedule epoch, first, last) -> window-feasible
        #: paths.  Keyed by epoch so any schedule mutation — a link
        #: reopening included — invalidates by key miss, not by rebuild.
        self._window_cache: Dict[Tuple[int, int, int, int, int], List[List[int]]] = {}

    def candidates(
        self,
        src: int,
        dst: int,
        max_hops: int,
        schedule: Optional[LinkSchedule] = None,
        window: Optional[Tuple[int, int]] = None,
    ) -> List[List[int]]:
        """Up to ``max_paths`` cheapest paths with at most ``max_hops`` hops.

        Returns node-id lists (``[src, ..., dst]``), cheapest first.
        An unreachable pair returns an empty list (and caches that).

        With ``schedule`` and ``window`` (half-open ``(first, last)``
        slot range) the result is window-aware: paths containing a hop
        with no up-slot inside the window are dropped, survivors are
        re-ranked so fully-lit paths come before ones that must thread
        dark gaps, and a window-specific search backfills if the static
        cheapest list was decimated.
        """
        base = self._base_paths(src, dst)
        if schedule is None or window is None or not len(schedule):
            usable = [p for p in base if len(p) - 1 <= max_hops]
            return usable[: self.max_paths]

        first, last = window
        usable = [
            path
            for path in base
            if len(path) - 1 <= max_hops
            and self._window_feasible(path, schedule, first, last)
        ]
        if len(usable) < self.max_paths:
            for path in self._window_paths(src, dst, schedule, first, last):
                if len(path) - 1 <= max_hops and path not in usable:
                    usable.append(path)
        # Fully-lit paths first; among equals the cheapest-first order
        # of the underlying searches is preserved (sort is stable).
        usable.sort(
            key=lambda path: sum(
                1
                for a, b in zip(path, path[1:])
                if not schedule.fully_up_in_range(a, b, first, last)
            )
        )
        return usable[: self.max_paths]

    # -- internals -------------------------------------------------------

    def _base_paths(self, src: int, dst: int) -> List[List[int]]:
        paths = self._cache.get((src, dst))
        if paths is None:
            try:
                generator = nx.shortest_simple_paths(
                    self._graph, src, dst, weight="price"
                )
                paths = list(itertools.islice(generator, self.max_paths * 2))
            except nx.NetworkXNoPath:
                paths = []
            self._cache[(src, dst)] = paths
        return paths

    @staticmethod
    def _window_feasible(
        path: List[int], schedule: LinkSchedule, first: int, last: int
    ) -> bool:
        """Every hop has at least one up-slot inside the window."""
        return all(
            schedule.up_in_range(a, b, first, last)
            for a, b in zip(path, path[1:])
        )

    def _window_paths(
        self, src: int, dst: int, schedule: LinkSchedule, first: int, last: int
    ) -> List[List[int]]:
        """Cheapest paths over the links with an up-slot in the window."""
        key = (src, dst, schedule.epoch, first, last)
        paths = self._window_cache.get(key)
        if paths is None:
            if len(self._window_cache) >= _WINDOW_CACHE_LIMIT:
                self._window_cache.clear()
            live = self._graph.edge_subgraph(
                (a, b)
                for a, b in self._graph.edges
                if schedule.up_in_range(a, b, first, last)
            )
            try:
                generator = nx.shortest_simple_paths(
                    live, src, dst, weight="price"
                )
                paths = list(itertools.islice(generator, self.max_paths * 2))
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                paths = []
            self._window_cache[key] = paths
        return paths

    def __len__(self) -> int:
        """Number of (src, dst) pairs already indexed."""
        return len(self._cache)
