"""Per-slot link utilization accounting for the fast lane.

Introduced in PR 4 (heuristic fast-lane scheduler).  The fast lane
never solves an LP, so it needs a cheap, always-current answer to three
questions about any ``(link, slot)`` cell: how much residual capacity
is left, how much of it is *free* (under the already-paid charged
volume ``X_ij(t-1)``), and how utilized the cell would be if the
current batch's tentative placements were committed.

:class:`UtilizationTracker` layers a dict of *pending* volumes — this
batch's not-yet-committed placements — over a
:class:`~repro.core.state.NetworkState`, so every query is O(1) and the
whole admission test stays O(paths x window) per request.  The pending
layer also powers the hybrid scheduler's escalation trigger: its
:meth:`peak_utilization` is the admission-pressure signal compared
against the escalation threshold.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Tuple

from repro.core.state import NetworkState

LinkSlot = Tuple[int, int, int]  # (src, dst, slot)


class UtilizationTracker:
    """Residual/headroom/utilization queries over state + pending load.

    Parameters
    ----------
    state:
        The scheduler's :class:`~repro.core.state.NetworkState`; the
        tracker reads committed volumes, charged peaks, and (fault-
        aware) residual capacities from it and never mutates it.
    """

    def __init__(self, state: NetworkState):
        self._state = state
        #: (src, dst, slot) -> tentative volume planned but not yet
        #: committed to the ledger by the current batch.
        self._pending: Dict[LinkSlot, float] = defaultdict(float)
        #: Optional ``(src, dst, slot) -> GB`` callback reserving
        #: forecast-predicted background load on future cells; set by
        #: :meth:`FastLaneScheduler.attach_forecast`.  ``None`` keeps
        #: every query purely reactive.
        self.reservation = None

    # -- the pending layer -------------------------------------------------

    def reset(self) -> None:
        """Forget all tentative placements (start of a new batch)."""
        self._pending.clear()

    def add(self, src: int, dst: int, slot: int, volume: float) -> None:
        """Record a tentative placement of ``volume`` GB on a cell."""
        if volume > 0.0:
            self._pending[(src, dst, slot)] += volume

    def pending(self, src: int, dst: int, slot: int) -> float:
        """Tentative (uncommitted) volume currently planned on a cell."""
        return self._pending.get((src, dst, slot), 0.0)

    # -- capacity queries --------------------------------------------------

    def residual(self, src: int, dst: int, slot: int) -> float:
        """Capacity left on a cell after committed *and* pending load."""
        return max(
            0.0,
            self._state.residual_capacity(src, dst, slot)
            - self.pending(src, dst, slot),
        )

    def headroom(self, src: int, dst: int, slot: int) -> float:
        """Free-of-charge volume the cell can still carry.

        Traffic up to the link's charged peak ``X_ij(t-1)`` is already
        paid for; what remains of that allowance — after committed and
        pending volume — is capped by the residual capacity.
        """
        paid = self._state.charged_volume(src, dst) - (
            self._state.committed_volume(src, dst, slot)
            + self.pending(src, dst, slot)
        )
        return max(0.0, min(paid, self.residual(src, dst, slot)))

    def forecast_residual(self, src: int, dst: int, slot: int) -> float:
        """Residual capacity minus the forecast reservation on a cell.

        The forecast-aware ALAP pass uses this instead of
        :meth:`residual` so paid lifts prefer slots the predictors mark
        quiet; the plain :meth:`residual` pass still runs last, so the
        reservation shapes placement but never admission.
        """
        residual = self.residual(src, dst, slot)
        if self.reservation is None or residual <= 0.0:
            return residual
        return max(0.0, residual - self.reservation(src, dst, slot))

    def forecast_headroom(self, src: int, dst: int, slot: int) -> float:
        """Paid headroom minus the forecast reservation on a cell."""
        headroom = self.headroom(src, dst, slot)
        if self.reservation is None or headroom <= 0.0:
            return headroom
        return max(0.0, headroom - self.reservation(src, dst, slot))

    def utilization(self, src: int, dst: int, slot: int) -> float:
        """(committed + pending) / raw link capacity for one cell."""
        capacity = self._state.topology.link(src, dst).capacity
        if capacity <= 0.0:
            return 1.0
        used = self._state.committed_volume(src, dst, slot) + self.pending(
            src, dst, slot
        )
        return used / capacity

    def peak_utilization(self) -> float:
        """Highest utilization over the cells this batch touches.

        This is the hybrid mode's admission-pressure signal: it looks
        only at link-slots with pending volume, so an empty batch
        reports 0.0 and a batch squeezing some cell near its capacity
        reports close to 1.0 no matter how idle the rest of the network
        is.
        """
        if not self._pending:
            return 0.0
        return max(
            self.utilization(src, dst, slot)
            for (src, dst, slot) in self._pending
        )
