"""A small linear-programming modeling toolkit.

The environment of this reproduction ships no algebraic modeling layer
(no PuLP, no cvxpy), so this package provides one: variables, linear
expressions, constraints, and an epigraph helper for ``max`` terms, all
compiled to a sparse standard form and handed to a solver backend.

Two backends are provided:

* ``"highs"`` — scipy's :func:`scipy.optimize.linprog` with the HiGHS
  solver (the default; fast and robust),
* ``"simplex"`` — a pure-Python dense two-phase simplex implementation,
  used to cross-validate HiGHS on small instances and in property tests.

Example
-------
>>> from repro.lp import Model
>>> m = Model("diet")
>>> x = m.add_variable("x", lb=0.0)
>>> y = m.add_variable("y", lb=0.0)
>>> m.add_constraint(x + 2 * y >= 4, name="protein")
>>> m.add_constraint(3 * x + y >= 6, name="iron")
>>> m.minimize(2 * x + 3 * y)
>>> sol = m.solve()
>>> round(sol.objective, 6)
6.8
"""

from repro.lp.expr import LinExpr, Variable
from repro.lp.constraint import Constraint, Sense
from repro.lp.model import Model
from repro.lp.result import Solution, SolveStatus
from repro.lp.compile import CompiledProblem, compile_mode, compile_model
from repro.lp.warm import WarmStart

__all__ = [
    "LinExpr",
    "Variable",
    "Constraint",
    "Sense",
    "Model",
    "Solution",
    "SolveStatus",
    "CompiledProblem",
    "compile_mode",
    "compile_model",
    "WarmStart",
]
