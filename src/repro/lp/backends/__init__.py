"""Solver backends for the LP toolkit."""

from __future__ import annotations

from typing import Dict, Type

from repro.errors import SolverError
from repro.lp.backends.base import Backend
from repro.lp.backends.highs import HighsBackend
from repro.lp.backends.interior_point import InteriorPointBackend
from repro.lp.backends.resilient import ResilientBackend
from repro.lp.backends.simplex import SimplexBackend

_BACKENDS: Dict[str, Type[Backend]] = {
    "highs": HighsBackend,
    "simplex": SimplexBackend,
    "interior_point": InteriorPointBackend,
    # Retry + fallback chain over the three real solvers; see
    # repro.lp.backends.resilient.
    "resilient": ResilientBackend,
}


def get_backend(name: str) -> Backend:
    """Look up a backend by name (``"highs"`` or ``"simplex"``)."""
    try:
        cls = _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise SolverError(f"unknown LP backend {name!r}; available: {known}") from None
    return cls()


def register_backend(name: str, cls: Type[Backend]) -> None:
    """Register a custom backend class under ``name``."""
    _BACKENDS[name] = cls


__all__ = [
    "Backend",
    "HighsBackend",
    "SimplexBackend",
    "InteriorPointBackend",
    "ResilientBackend",
    "get_backend",
    "register_backend",
]
