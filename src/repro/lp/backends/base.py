"""Backend interface shared by all LP solvers."""

from __future__ import annotations

import abc

from repro.lp.model import Model
from repro.lp.result import Solution


class Backend(abc.ABC):
    """A solver capable of optimizing a compiled linear program."""

    name: str = "abstract"

    #: True when this backend actually *uses* a ``warm=`` hint (a
    #: :class:`~repro.lp.warm.WarmStart`) to seed the solve.  Every
    #: backend must silently accept the keyword either way, so callers
    #: can thread warm data through a fallback chain without probing.
    supports_warm_start: bool = False

    @abc.abstractmethod
    def solve(self, model: Model, **options) -> Solution:
        """Solve ``model`` and return a :class:`Solution`.

        Implementations must not raise on infeasible/unbounded problems;
        they report it through :attr:`Solution.status` and let the model
        layer turn it into typed exceptions.

        ``options`` may carry ``warm=``, a
        :class:`~repro.lp.warm.WarmStart` from a previous related
        solve.  Backends with :attr:`supports_warm_start` seed their
        iterates from it; all others pop and ignore it.  A warm hint
        must never change *which* optimum is reported beyond solver
        tolerance — it is a speed hint, not a semantic input.

        A raised :class:`~repro.errors.SolverError` (or a returned
        :attr:`SolveStatus.ERROR`) is treated as *transient* by the
        :class:`~repro.lp.backends.resilient.ResilientBackend` wrapper,
        which retries it with backoff and eventually falls back to the
        next solver in its chain.
        """
