"""Backend interface shared by all LP solvers."""

from __future__ import annotations

import abc

from repro.lp.model import Model
from repro.lp.result import Solution


class Backend(abc.ABC):
    """A solver capable of optimizing a compiled linear program."""

    name: str = "abstract"

    @abc.abstractmethod
    def solve(self, model: Model, **options) -> Solution:
        """Solve ``model`` and return a :class:`Solution`.

        Implementations must not raise on infeasible/unbounded problems;
        they report it through :attr:`Solution.status` and let the model
        layer turn it into typed exceptions.

        A raised :class:`~repro.errors.SolverError` (or a returned
        :attr:`SolveStatus.ERROR`) is treated as *transient* by the
        :class:`~repro.lp.backends.resilient.ResilientBackend` wrapper,
        which retries it with backoff and eventually falls back to the
        next solver in its chain.
        """
