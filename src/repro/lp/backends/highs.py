"""HiGHS backend via :func:`scipy.optimize.linprog` (the default)."""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.lp.backends.base import Backend
from repro.lp.compile import compile_model
from repro.lp.model import Model
from repro.lp.result import Solution, SolveStatus
from repro.obs import registry as obs

# scipy's linprog status codes.
_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ERROR,  # iteration limit
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


class HighsBackend(Backend):
    """Solve through scipy's HiGHS interface.

    Handles problems with hundreds of thousands of variables; this is
    the backend used for all paper-scale experiments.
    """

    name = "highs"

    #: scipy's HiGHS bindings expose no basis/solution injection, so a
    #: ``warm=`` hint is accepted but unused — warm and cold solves are
    #: bit-identical through this backend (the fast scheduling path
    #: relies on exactly that).
    supports_warm_start = False

    def solve(self, model: Model, **options) -> Solution:
        options.pop("warm", None)
        # The span covers the backend's whole job — lowering the model
        # to matrices *and* optimizing — so lp.build + lp.solve account
        # for the full per-slot scheduling cost.
        with obs.span("lp.solve", backend=self.name) as sp:
            problem = compile_model(model)
            n = problem.num_variables

            if n == 0:
                # Degenerate but legal: an empty model is trivially optimal.
                return Solution(
                    SolveStatus.OPTIMAL,
                    np.zeros(0),
                    problem.c0,
                    model._id,
                    solver=self.name,
                )

            # Method auto-selection: HiGHS's default (dual simplex)
            # crawls on large degenerate time-expanded instances where
            # its interior-point code flies (~13x on a paper-scale
            # maxT=8 slot), so big problems default to IPM unless
            # overridden.
            method = options.pop("method", None)
            if method is None:
                method = "highs-ipm" if n > 20000 else "highs"
            attrs = getattr(sp, "attrs", None)
            if attrs is not None:
                attrs["method"] = method

            result = linprog(
                problem.c,
                A_ub=problem.a_ub if problem.num_inequalities else None,
                b_ub=problem.b_ub if problem.num_inequalities else None,
                A_eq=problem.a_eq if problem.num_equalities else None,
                b_eq=problem.b_eq if problem.num_equalities else None,
                bounds=problem.bounds,
                method=method,
                options=options or None,
            )

        status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
        x = np.asarray(result.x, dtype=float) if result.x is not None else np.zeros(n)
        objective = float(result.fun) + problem.c0 if result.fun is not None else float("nan")
        if problem.maximize and status is SolveStatus.OPTIMAL:
            objective = -float(result.fun) + problem.c0
        iterations = int(getattr(result, "nit", 0) or 0)
        obs.counter("lp.highs.iterations", iterations)

        duals = None
        if status is SolveStatus.OPTIMAL:
            duals = self._extract_duals(model, problem, result)

        return Solution(
            status, x, objective, model._id,
            solver=self.name, iterations=iterations, duals=duals,
        )

    @staticmethod
    def _extract_duals(model, problem, result):
        """Map HiGHS marginals back to model-level shadow prices.

        GE constraints were negated into LE rows at compile time, so
        their model-level dual flips sign; for a maximization the
        compiled costs were negated, flipping every dual.
        """
        ineq = getattr(result, "ineqlin", None)
        eq = getattr(result, "eqlin", None)
        if problem.row_map and (
            (problem.num_inequalities and ineq is None)
            or (problem.num_equalities and eq is None)
        ):
            return None  # solver variant without marginals
        duals = {}
        sign_global = -1.0 if problem.maximize else 1.0
        for constraint, (kind, row, sign) in zip(model.constraints, problem.row_map):
            marginal = (
                float(ineq.marginals[row]) if kind == "ub" else float(eq.marginals[row])
            )
            duals[id(constraint)] = sign_global * sign * marginal
        return duals
