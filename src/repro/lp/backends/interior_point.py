"""A primal-dual interior-point LP solver.

Sec. V of the paper notes the Postcard problem "can be solved with
classic algorithms such as subgradient projection methods and
interior-point methods"; this backend implements the latter from
scratch — a standard primal-dual path-following method with a Mehrotra
predictor-corrector step — so the reproduction demonstrates the exact
solver family the authors had in mind, cross-validated against both
HiGHS and the simplex backend.

Like the simplex backend it is dense and intended for small-to-medium
problems.  The problem is first lowered to the canonical equality form
``min c'y  s.t.  A y = b, y >= 0`` (reusing the simplex backend's
canonicalizer), then iterated:

    r_p = A y - b            (primal residual)
    r_d = A' lam + s - c     (dual residual)
    mu  = y's / n            (duality measure)

Each step solves the normal equations ``(A D A') dlam = rhs`` with
``D = diag(y / s)``, takes a damped step preserving ``y, s > 0``, and
stops when all residuals and ``mu`` are tiny.  Infeasible or unbounded
instances do not converge; they are reported as such via a certificate
heuristic (diverging iterates with shrinking mu => unbounded; stalling
primal residual => infeasible), falling back to ``ERROR`` when the
evidence is ambiguous.
"""

from __future__ import annotations

import numpy as np

from repro.lp.backends.base import Backend
from repro.lp.backends.simplex import _canonicalize
from repro.lp.compile import CompiledProblem, compile_model
from repro.lp.model import Model
from repro.lp.result import Solution, SolveStatus
from repro.obs import registry as obs

_TOL = 1e-8


class InteriorPointBackend(Backend):
    """Dense primal-dual path-following with predictor-corrector.

    Accepts a ``warm=`` :class:`~repro.lp.warm.WarmStart`: the hint's
    variable values (matched by name) become the initial primal iterate,
    floored into the strictly positive orthant with slacks set to their
    row residuals.  On consecutive online slots — where most variables
    keep their previous optimal values — this typically cuts the
    iteration count; a misleading hint never costs correctness — a
    warm-started run that fails to reach optimality is transparently
    retried cold (counter ``lp.ipm.warm_retries``) before its status is
    reported.
    """

    name = "interior_point"

    supports_warm_start = True

    #: Floor applied to warm-start components: large enough to stay
    #: safely interior (tiny positive starts make the first Newton
    #: systems nearly singular), small enough to keep the hint's shape.
    _WARM_FLOOR = 0.1

    def solve(self, model: Model, **options) -> Solution:
        warm = options.pop("warm", None)
        max_iter = int(options.pop("max_iter", 200))
        # Span covers lowering + optimizing (see the HiGHS backend).
        with obs.span("lp.solve", backend=self.name, warm=warm is not None):
            problem = compile_model(model)

            if problem.num_variables == 0:
                return Solution(
                    SolveStatus.OPTIMAL, np.zeros(0), problem.c0, model._id,
                    solver=self.name,
                )

            x0 = warm.initial_point(model) if warm is not None else None
            solution = self._solve_compiled(problem, model._id, max_iter, x0=x0)
            if x0 is not None and solution.status is not SolveStatus.OPTIMAL:
                # A poor hint can park the first iterates in a region
                # where the Newton systems are near-singular and the
                # run stalls or is misclassified.  The warm start's
                # contract is "never worse than cold", so any warm
                # non-optimal outcome is retried from scratch before
                # being believed.
                obs.counter("lp.ipm.warm_retries")
                solution = self._solve_compiled(
                    problem, model._id, max_iter, x0=None
                )
        obs.counter("lp.ipm.iterations", solution.iterations)
        if warm is not None:
            obs.counter("lp.ipm.warm_solves")
        return solution

    def _solve_compiled(
        self,
        problem: CompiledProblem,
        model_id: int,
        max_iter: int,
        x0: "np.ndarray" = None,
    ) -> Solution:
        canon = _canonicalize(problem)
        a, b, c = canon.a, canon.b, canon.c
        m, n = a.shape

        if m == 0:
            # Only bounds: optimum at zero unless a negative cost makes
            # it unbounded above in some coordinate.
            if np.any(c < -_TOL):
                return Solution(
                    SolveStatus.UNBOUNDED, np.zeros(problem.num_variables),
                    float("nan"), model_id, solver=self.name,
                )
            x = canon.recover(np.zeros(n))
            shift = canon.c0 - problem.c0
            obj = (-shift if problem.maximize else shift) + problem.c0
            return Solution(SolveStatus.OPTIMAL, x, obj, model_id, solver=self.name)

        y0 = canon.embed(x0, self._WARM_FLOOR) if x0 is not None else None
        with np.errstate(all="ignore"):
            status, y, iterations = self._path_follow(a, b, c, max_iter, y0=y0)
        if status is not SolveStatus.OPTIMAL:
            return Solution(
                status, np.zeros(problem.num_variables), float("nan"),
                model_id, solver=self.name, iterations=iterations,
            )

        x = canon.recover(y)
        canonical_value = float(c @ y)
        shift = canon.c0 - problem.c0
        if problem.maximize:
            objective = -(canonical_value + shift) + problem.c0
        else:
            objective = canonical_value + shift + problem.c0
        return Solution(
            SolveStatus.OPTIMAL, x, objective, model_id,
            solver=self.name, iterations=iterations,
        )

    @staticmethod
    def _path_follow(a, b, c, max_iter, y0=None):
        """Core iteration on min c'y, Ay=b, y>=0.  Returns
        (status, y, iterations).  ``y0`` optionally seeds the primal
        iterate (strictly positive; see :meth:`_Canonical.embed`)."""
        m, n = a.shape
        scale = max(1.0, float(np.abs(b).max(initial=0.0)),
                    float(np.abs(c).max(initial=0.0)))

        y = np.ones(n) if y0 is None else np.asarray(y0, dtype=float)
        s = np.ones(n)
        lam = np.zeros(m)
        at = a.T

        def solve_normal(d, rhs):
            """(A D A') x = rhs with Tikhonov fallback for rank loss."""
            ada = (a * d) @ at
            try:
                return np.linalg.solve(ada + 1e-12 * np.eye(m), rhs)
            except np.linalg.LinAlgError:
                return np.linalg.lstsq(ada, rhs, rcond=None)[0]

        for iteration in range(1, max_iter + 1):
            r_p = a @ y - b
            r_d = at @ lam + s - c
            mu = float(y @ s) / n

            if not (
                np.isfinite(mu)
                and np.isfinite(r_p).all()
                and np.isfinite(r_d).all()
            ):
                # Numerics have collapsed: the iterates ran off along a
                # certificate direction we failed to classify earlier.
                return SolveStatus.ERROR, y, iteration

            if (
                np.abs(r_p).max(initial=0.0) < _TOL * scale
                and np.abs(r_d).max(initial=0.0) < _TOL * scale
                and mu < _TOL * scale
            ):
                return SolveStatus.OPTIMAL, y, iteration

            # Divergence heuristics.  A primal ray (y exploding while
            # residuals stay controlled and the objective plunges)
            # signals unboundedness; a stalled primal residual with
            # exploding duals signals infeasibility.
            if np.abs(y).max() > 1e13:
                return SolveStatus.UNBOUNDED, y, iteration
            if np.abs(lam).max() > 1e13:
                return SolveStatus.INFEASIBLE, y, iteration

            d = y / s

            # Predictor (affine scaling) direction.  Derivation: from
            # the KKT Newton system with
            #   ds = -r_d - A' dlam,  dy = -(y s + y ds)/s  (sigma = 0)
            # => A D A' dlam = -r_p - A D r_d + A y.
            rhs_aff = -r_p - a @ (d * r_d) + a @ y
            dlam = solve_normal(d, rhs_aff)
            ds = -r_d - at @ dlam
            dy = -(y * s + y * ds) / s

            alpha_p = _step(y, dy)
            alpha_d = _step(s, ds)
            mu_aff = float((y + alpha_p * dy) @ (s + alpha_d * ds)) / n
            sigma = (mu_aff / mu) ** 3 if mu > 0 else 0.1

            # Corrector: re-solve with the centering + second-order term.
            comp = y * s + dy * ds - sigma * mu
            rhs = -r_p - a @ (d * r_d) + a @ (comp / s)
            dlam = solve_normal(d, rhs)
            ds = -r_d - at @ dlam
            dy = -(comp + y * ds) / s

            alpha_p = 0.99 * _step(y, dy)
            alpha_d = 0.99 * _step(s, ds)
            y = y + alpha_p * dy
            s = s + alpha_d * ds
            lam = lam + alpha_d * dlam

        return SolveStatus.ERROR, y, max_iter


def _step(v: np.ndarray, dv: np.ndarray) -> float:
    """Largest alpha in (0, 1] with v + alpha dv >= 0."""
    negative = dv < 0
    if not np.any(negative):
        return 1.0
    return min(1.0, float(np.min(-v[negative] / dv[negative])))
