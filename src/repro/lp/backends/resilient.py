"""A solver wrapper that retries transient failures and falls back
across backends.

Production schedulers cannot afford to abort a whole run because one
LP solve hiccuped (a numerical blow-up, a flaky native library, an
``ERROR`` status).  :class:`ResilientBackend` wraps an ordered chain of
real backends: each is retried with bounded exponential backoff, and
when a backend is exhausted the chain falls through to the next —
``highs`` → ``simplex`` → ``interior_point`` by default.

Genuine *answers* are never second-guessed: an ``OPTIMAL``,
``INFEASIBLE`` or ``UNBOUNDED`` solution returns immediately (the model
layer turns the latter two into typed exceptions); only raised
:class:`SolverError`\\ s and failure statuses count as transient.

Degradation is observable through :mod:`repro.obs` counters —
``solver.retries`` and ``solver.fallbacks`` — so a run that silently
limped along on the fallback simplex shows up in any ``--profile`` or
``--obs-jsonl`` report.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from repro.errors import InfeasibleError, SolverError, UnboundedError
from repro.lp.backends.base import Backend
from repro.lp.model import Model
from repro.lp.result import Solution, SolveStatus
from repro.obs import registry as obs

#: Statuses that are real answers — return them, never retry.
_CONCLUSIVE = (
    SolveStatus.OPTIMAL,
    SolveStatus.INFEASIBLE,
    SolveStatus.UNBOUNDED,
)

DEFAULT_CHAIN = ("highs", "simplex", "interior_point")


class ResilientBackend(Backend):
    """Retry-with-backoff over an ordered chain of solver backends.

    Parameters
    ----------
    chain:
        Backend names tried in order (default
        ``("highs", "simplex", "interior_point")``).
    max_attempts:
        Solve attempts per backend before falling through (>= 1).
    backoff_base / backoff_max:
        Sleep ``min(backoff_max, backoff_base * 2**attempt)`` seconds
        between retries of the same backend.  Fallback to the *next*
        backend is immediate — it is a different code path, not the
        same transient fault.
    sleep:
        Injection point for tests (defaults to :func:`time.sleep`).
    factory:
        Backend resolver, ``name -> Backend`` (defaults to
        :func:`repro.lp.backends.get_backend`); lets tests splice in
        deliberately flaky solvers.
    """

    name = "resilient"

    #: A ``warm=`` hint is forwarded verbatim to every chain member
    #: (each decides for itself whether to use it), so warm data
    #: survives retries and fallbacks.
    supports_warm_start = True

    def __init__(
        self,
        chain: Sequence[str] = DEFAULT_CHAIN,
        max_attempts: int = 2,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
        sleep: Callable[[float], None] = time.sleep,
        factory: Optional[Callable[[str], Backend]] = None,
    ):
        if not chain:
            raise SolverError("resilient backend needs a non-empty chain")
        if max_attempts < 1:
            raise SolverError(f"max_attempts must be >= 1, got {max_attempts}")
        self.chain = tuple(chain)
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._sleep = sleep
        self._factory = factory
        #: Lifetime tallies, mirrored to obs counters as they happen.
        self.retries = 0
        self.fallbacks = 0

    def _resolve(self, name: str) -> Backend:
        if self._factory is not None:
            return self._factory(name)
        from repro.lp.backends import get_backend

        return get_backend(name)

    def solve(self, model: Model, **options) -> Solution:
        last_error: Optional[Exception] = None
        for position, backend_name in enumerate(self.chain):
            if position > 0:
                self.fallbacks += 1
                obs.counter("solver.fallbacks", **{"to": backend_name})
            solver = self._resolve(backend_name)
            for attempt in range(self.max_attempts):
                if attempt > 0:
                    self.retries += 1
                    obs.counter("solver.retries", backend=backend_name)
                    self._sleep(
                        min(self.backoff_max, self.backoff_base * 2 ** (attempt - 1))
                    )
                try:
                    solution = solver.solve(model, **options)
                except (InfeasibleError, UnboundedError):
                    # A conclusive answer leaked out as an exception:
                    # propagate, retrying cannot change mathematics.
                    raise
                except SolverError as exc:
                    last_error = exc
                    continue
                if solution.status in _CONCLUSIVE:
                    return solution
                last_error = SolverError(
                    f"backend {backend_name!r} returned status "
                    f"{solution.status.value!r} on model {model.name!r}"
                )
        raise SolverError(
            f"all backends in chain {self.chain} failed on model "
            f"{model.name!r} after {self.max_attempts} attempt(s) each"
        ) from last_error
