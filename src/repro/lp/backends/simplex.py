"""A pure-Python two-phase simplex solver.

This backend exists for two reasons: it cross-validates the HiGHS
backend in property-based tests without relying on a single
implementation, and it keeps the library functional on platforms where
scipy's HiGHS bindings are unavailable.  It is a dense tableau
implementation with Bland's anti-cycling rule, so it is only intended
for small problems (up to a few hundred variables).

The compiled problem (inequalities, equalities, variable bounds) is
first rewritten into the canonical form::

    minimize  c @ y   subject to  A @ y = b,  y >= 0

by shifting finite lower bounds, reflecting variables that only have an
upper bound, splitting free variables into positive and negative parts,
and adding slack variables for every inequality row (including bound
rows for doubly-bounded variables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.lp.backends.base import Backend
from repro.lp.compile import CompiledProblem, compile_model
from repro.lp.model import Model
from repro.lp.result import Solution, SolveStatus
from repro.obs import registry as obs

_TOL = 1e-9


@dataclass
class _ColumnMap:
    """How an original variable maps into canonical columns.

    ``kind`` is one of:

    * ``"shift"``  — x = lo + y[col]
    * ``"reflect"``— x = hi - y[col]
    * ``"free"``   — x = y[col] - y[col2]
    """

    kind: str
    col: int
    col2: int = -1
    offset: float = 0.0


class _Canonical:
    """Equality-form LP with nonnegative variables."""

    def __init__(self, a: np.ndarray, b: np.ndarray, c: np.ndarray, c0: float,
                 column_map: List[_ColumnMap], num_original: int,
                 num_core: int = 0):
        self.a = a
        self.b = b
        self.c = c
        self.c0 = c0
        self.column_map = column_map
        self.num_original = num_original
        #: Columns representing original variables; the remaining
        #: ``a.shape[1] - num_core`` columns are row slacks, where slack
        #: column ``num_core + r`` belongs to inequality row ``r``.
        self.num_core = num_core

    def embed(self, x0: np.ndarray, floor: float) -> np.ndarray:
        """Map original-variable values to a strictly positive canonical
        point (warm-start seed for the interior-point backend).

        Core columns take the (floored) transformed hint; slack columns
        take their row's residual at that point, floored likewise, so a
        near-feasible hint starts with near-zero primal residual.
        """
        n_total = self.a.shape[1]
        y = np.empty(n_total)
        for i, cmap in enumerate(self.column_map):
            if cmap.kind == "shift":
                y[cmap.col] = x0[i] - cmap.offset
            elif cmap.kind == "reflect":
                y[cmap.col] = cmap.offset - x0[i]
            else:  # free
                y[cmap.col] = max(x0[i], 0.0)
                y[cmap.col2] = max(-x0[i], 0.0)
        core = np.maximum(y[: self.num_core], floor)
        y[: self.num_core] = core
        if n_total > self.num_core:
            resid = self.b - self.a[:, : self.num_core] @ core
            for col in range(self.num_core, n_total):
                y[col] = max(resid[col - self.num_core], floor)
        return y

    def recover(self, y: np.ndarray) -> np.ndarray:
        """Map a canonical solution back to original variable values."""
        x = np.zeros(self.num_original)
        for i, cmap in enumerate(self.column_map):
            if cmap.kind == "shift":
                x[i] = cmap.offset + y[cmap.col]
            elif cmap.kind == "reflect":
                x[i] = cmap.offset - y[cmap.col]
            else:  # free
                x[i] = y[cmap.col] - y[cmap.col2]
        return x


def _canonicalize(problem: CompiledProblem) -> _Canonical:
    """Rewrite a compiled problem into equality form with y >= 0."""
    n = problem.num_variables
    c_orig = problem.c.copy()

    column_map: List[_ColumnMap] = []
    extra_bound_rows: List[Tuple[int, float]] = []  # (canonical col, ub value)
    num_cols = 0
    c0_extra = 0.0

    # Decide the canonical representation of each variable.
    cols_c: List[float] = []
    for i, (lo, hi) in enumerate(problem.bounds):
        if lo == float("-inf") and hi == float("inf"):
            column_map.append(_ColumnMap("free", num_cols, num_cols + 1))
            cols_c.extend([c_orig[i], -c_orig[i]])
            num_cols += 2
        elif lo == float("-inf"):
            # x = hi - y, y >= 0
            column_map.append(_ColumnMap("reflect", num_cols, offset=hi))
            cols_c.append(-c_orig[i])
            c0_extra += c_orig[i] * hi
            num_cols += 1
        else:
            # x = lo + y, y >= 0 (and y <= hi - lo when hi finite)
            column_map.append(_ColumnMap("shift", num_cols, offset=lo))
            cols_c.append(c_orig[i])
            c0_extra += c_orig[i] * lo
            if hi != float("inf"):
                extra_bound_rows.append((num_cols, hi - lo))
            num_cols += 1

    a_ub = problem.a_ub.toarray() if problem.num_inequalities else np.zeros((0, n))
    a_eq = problem.a_eq.toarray() if problem.num_equalities else np.zeros((0, n))
    b_ub = problem.b_ub.copy()
    b_eq = problem.b_eq.copy()

    def transform_rows(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Substitute the canonical representation into constraint rows."""
        m = a.shape[0]
        out = np.zeros((m, num_cols))
        b_out = b.copy()
        for i, cmap in enumerate(column_map):
            col_vals = a[:, i]
            if cmap.kind == "shift":
                out[:, cmap.col] += col_vals
                b_out -= col_vals * cmap.offset
            elif cmap.kind == "reflect":
                out[:, cmap.col] -= col_vals
                b_out -= col_vals * cmap.offset
            else:
                out[:, cmap.col] += col_vals
                out[:, cmap.col2] -= col_vals
        return out, b_out

    a_ub_c, b_ub_c = transform_rows(a_ub, b_ub)
    a_eq_c, b_eq_c = transform_rows(a_eq, b_eq)

    # Bound rows y_col <= ub become inequality rows.
    if extra_bound_rows:
        rows = np.zeros((len(extra_bound_rows), num_cols))
        vals = np.zeros(len(extra_bound_rows))
        for r, (col, ub) in enumerate(extra_bound_rows):
            rows[r, col] = 1.0
            vals[r] = ub
        a_ub_c = np.vstack([a_ub_c, rows])
        b_ub_c = np.concatenate([b_ub_c, vals])

    # Slack variables turn inequalities into equalities.
    m_ub = a_ub_c.shape[0]
    m_eq = a_eq_c.shape[0]
    total_cols = num_cols + m_ub
    a = np.zeros((m_ub + m_eq, total_cols))
    b = np.zeros(m_ub + m_eq)
    if m_ub:
        a[:m_ub, :num_cols] = a_ub_c
        a[:m_ub, num_cols:] = np.eye(m_ub)
        b[:m_ub] = b_ub_c
    if m_eq:
        a[m_ub:, :num_cols] = a_eq_c
        b[m_ub:] = b_eq_c

    c = np.zeros(total_cols)
    c[:num_cols] = np.asarray(cols_c)

    return _Canonical(a, b, c, problem.c0 + c0_extra, column_map, n,
                      num_core=num_cols)


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Gauss-Jordan pivot on (row, col) of the simplex tableau."""
    tableau[row] /= tableau[row, col]
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > 1e-14:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _simplex_iterate(
    tableau: np.ndarray,
    basis: np.ndarray,
    num_cols: int,
    max_iter: int,
) -> Tuple[str, int]:
    """Run simplex iterations with Bland's rule on the last (cost) row.

    Returns ("optimal" | "unbounded" | "iteration_limit", iterations).
    The tableau layout is ``[A | b]`` rows followed by the reduced-cost
    row ``[c_reduced | -objective]``.
    """
    m = tableau.shape[0] - 1
    iterations = 0
    while iterations < max_iter:
        cost_row = tableau[-1, :num_cols]
        # Bland: smallest index with negative reduced cost.
        entering = -1
        for j in range(num_cols):
            if cost_row[j] < -_TOL:
                entering = j
                break
        if entering == -1:
            return "optimal", iterations

        # Ratio test (Bland tie-break on basis index).
        best_ratio = float("inf")
        leaving = -1
        for r in range(m):
            coef = tableau[r, entering]
            if coef > _TOL:
                ratio = tableau[r, -1] / coef
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (leaving == -1 or basis[r] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = r
        if leaving == -1:
            return "unbounded", iterations

        _pivot(tableau, basis, leaving, entering)
        iterations += 1
    return "iteration_limit", iterations


class SimplexBackend(Backend):
    """Two-phase dense simplex (educational / verification backend)."""

    name = "simplex"

    #: A ``warm=`` hint is accepted but unused: injecting a starting
    #: basis into the two-phase tableau is out of scope for a
    #: verification backend, and ignoring the hint keeps warm and cold
    #: solves bit-identical here.
    supports_warm_start = False

    def solve(self, model: Model, **options) -> Solution:
        options.pop("warm", None)
        max_iter = int(options.pop("max_iter", 20000))
        # Span covers lowering + optimizing (see the HiGHS backend).
        with obs.span("lp.solve", backend=self.name):
            problem = compile_model(model)

            if problem.num_variables == 0:
                return Solution(
                    SolveStatus.OPTIMAL, np.zeros(0), problem.c0, model._id,
                    solver=self.name,
                )

            solution = self._solve_compiled(problem, model._id, max_iter)
        obs.counter("lp.simplex.pivots", solution.iterations)
        return solution

    def _solve_compiled(
        self, problem: CompiledProblem, model_id: int, max_iter: int
    ) -> Solution:
        canon = _canonicalize(problem)
        a, b, c = canon.a.copy(), canon.b.copy(), canon.c.copy()
        m, n = a.shape

        if m == 0:
            # No constraints: optimum sits at the (shifted) origin unless
            # some cost coefficient is negative, in which case unbounded.
            if np.any(c < -_TOL):
                return Solution(
                    SolveStatus.UNBOUNDED, np.zeros(problem.num_variables),
                    float("-inf"), model_id, solver=self.name,
                )
            x = canon.recover(np.zeros(n))
            shift_terms = canon.c0 - problem.c0
            obj = (-shift_terms if problem.maximize else shift_terms) + problem.c0
            return Solution(SolveStatus.OPTIMAL, x, obj, model_id, solver=self.name)

        # Make b nonnegative.
        for r in range(m):
            if b[r] < 0:
                a[r] *= -1
                b[r] *= -1

        # ---- Phase 1: minimize the sum of artificial variables. ----
        tableau = np.zeros((m + 1, n + m + 1))
        tableau[:m, :n] = a
        tableau[:m, n : n + m] = np.eye(m)
        tableau[:m, -1] = b
        basis = np.arange(n, n + m)
        # Phase-1 cost: sum of artificials, expressed over the basis.
        tableau[-1, n : n + m] = 1.0
        for r in range(m):
            tableau[-1] -= tableau[r]

        status, it1 = _simplex_iterate(tableau, basis, n + m, max_iter)
        if status == "iteration_limit":
            return Solution(
                SolveStatus.ERROR, np.zeros(problem.num_variables), float("nan"),
                model_id, solver=self.name, iterations=it1,
            )
        phase1_obj = -tableau[-1, -1]
        if phase1_obj > 1e-7:
            return Solution(
                SolveStatus.INFEASIBLE, np.zeros(problem.num_variables), float("nan"),
                model_id, solver=self.name, iterations=it1,
            )

        # Drive any lingering artificial variables out of the basis.
        for r in range(m):
            if basis[r] >= n:
                pivot_col = -1
                for j in range(n):
                    if abs(tableau[r, j]) > _TOL:
                        pivot_col = j
                        break
                if pivot_col >= 0:
                    _pivot(tableau, basis, r, pivot_col)
                # Otherwise the row is redundant (all-zero over real
                # columns); the artificial stays basic at value zero,
                # which is harmless.

        # ---- Phase 2: original objective over the feasible tableau. ----
        # Artificial columns cannot re-enter: _simplex_iterate is given
        # num_cols=n, so the entering rule never looks at them.
        tableau[-1, :] = 0.0
        tableau[-1, :n] = c
        for r in range(m):
            if basis[r] < n and abs(tableau[-1, basis[r]]) > 0:
                tableau[-1] -= tableau[-1, basis[r]] * tableau[r]

        status, it2 = _simplex_iterate(tableau, basis, n, max_iter)
        if status == "iteration_limit":
            return Solution(
                SolveStatus.ERROR, np.zeros(problem.num_variables), float("nan"),
                model_id, solver=self.name, iterations=it1 + it2,
            )
        if status == "unbounded":
            return Solution(
                SolveStatus.UNBOUNDED, np.zeros(problem.num_variables), float("nan"),
                model_id, solver=self.name, iterations=it1 + it2,
            )

        y = np.zeros(n + m)
        for r in range(m):
            y[basis[r]] = tableau[r, -1]
        x = canon.recover(y[:n])

        # canon.c0 = problem.c0 + (shift terms in the possibly-negated c).
        # For minimize the objective is direct; for maximize, compile
        # negated the cost vector, so the true objective is the negation
        # of the canonical value with the *original* constant restored.
        canonical_value = float(c @ y[:n])
        shift_terms = canon.c0 - problem.c0
        if problem.maximize:
            objective = -(canonical_value + shift_terms) + problem.c0
        else:
            objective = canonical_value + shift_terms + problem.c0

        return Solution(
            SolveStatus.OPTIMAL, x, objective, model_id,
            solver=self.name, iterations=it1 + it2,
        )
