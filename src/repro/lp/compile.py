"""Compile a Model to sparse standard form.

The compiled form matches what :func:`scipy.optimize.linprog` expects:

    minimize    c @ x + c0
    subject to  A_ub @ x <= b_ub
                A_eq @ x == b_eq
                bounds[i][0] <= x[i] <= bounds[i][1]

Maximization is handled by negating ``c`` and flipping the sign of the
reported objective, so backends only ever minimize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy import sparse

from repro.lp.constraint import Sense
from repro.lp.model import Model
from repro.obs import registry as obs


@dataclass
class CompiledProblem:
    """Sparse standard-form LP data extracted from a :class:`Model`."""

    c: np.ndarray
    c0: float
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    bounds: List[Tuple[float, float]]
    maximize: bool
    #: One entry per model constraint, in order: ("ub"|"eq", row, sign).
    #: ``sign`` is -1 for GE constraints (negated into LE rows), so a
    #: model-level dual is ``sign * marginal`` of the compiled row.
    row_map: List[Tuple[str, int, float]] = None

    @property
    def num_variables(self) -> int:
        return self.c.shape[0]

    @property
    def num_inequalities(self) -> int:
        return self.a_ub.shape[0]

    @property
    def num_equalities(self) -> int:
        return self.a_eq.shape[0]


def compile_model(model: Model) -> CompiledProblem:
    """Lower a :class:`Model` into :class:`CompiledProblem` matrices.

    ``GE`` constraints are negated into ``LE`` rows; constraint constants
    move to the right-hand side.
    """
    with obs.span("lp.compile", model=model.name):
        problem = _compile(model)
    obs.counter("lp.cols", problem.num_variables)
    obs.counter("lp.rows", problem.num_inequalities + problem.num_equalities)
    obs.counter("lp.nonzeros", int(problem.a_ub.nnz + problem.a_eq.nnz))
    return problem


def _compile(model: Model) -> CompiledProblem:
    n = model.num_variables

    c = np.zeros(n)
    for idx, coef in model.objective.coeffs.items():
        c[idx] = coef
    c0 = model.objective.constant
    if not model.sense_minimize:
        c = -c

    ub_rows: List[int] = []
    ub_cols: List[int] = []
    ub_data: List[float] = []
    b_ub: List[float] = []
    eq_rows: List[int] = []
    eq_cols: List[int] = []
    eq_data: List[float] = []
    b_eq: List[float] = []

    row_map: List[Tuple[str, int, float]] = []
    for con in model.constraints:
        expr = con.expr
        if con.sense is Sense.EQ:
            row = len(b_eq)
            for idx, coef in expr.coeffs.items():
                if coef != 0.0:
                    eq_rows.append(row)
                    eq_cols.append(idx)
                    eq_data.append(coef)
            b_eq.append(-expr.constant)
            row_map.append(("eq", row, 1.0))
        else:
            flip = -1.0 if con.sense is Sense.GE else 1.0
            row = len(b_ub)
            for idx, coef in expr.coeffs.items():
                if coef != 0.0:
                    ub_rows.append(row)
                    ub_cols.append(idx)
                    ub_data.append(flip * coef)
            b_ub.append(flip * -expr.constant)
            row_map.append(("ub", row, flip))

    a_ub = sparse.csr_matrix(
        (ub_data, (ub_rows, ub_cols)), shape=(len(b_ub), n), dtype=float
    )
    a_eq = sparse.csr_matrix(
        (eq_data, (eq_rows, eq_cols)), shape=(len(b_eq), n), dtype=float
    )

    bounds = [(var.lb, var.ub) for var in model.variables]

    return CompiledProblem(
        c=c,
        c0=c0,
        a_ub=a_ub,
        b_ub=np.asarray(b_ub, dtype=float),
        a_eq=a_eq,
        b_eq=np.asarray(b_eq, dtype=float),
        bounds=bounds,
        maximize=not model.sense_minimize,
        row_map=row_map,
    )
