"""Compile a Model to sparse standard form.

The compiled form matches what :func:`scipy.optimize.linprog` expects:

    minimize    c @ x + c0
    subject to  A_ub @ x <= b_ub
                A_eq @ x == b_eq
                bounds[i][0] <= x[i] <= bounds[i][1]

Maximization is handled by negating ``c`` and flipping the sign of the
reported objective, so backends only ever minimize.

Two lowering paths produce the same matrices:

* ``"vectorized"`` (the default) accumulates every constraint's
  coefficient arrays into flat COO buffers with C-speed ``list.extend``
  calls, expands row indices with :func:`numpy.repeat`, and applies GE
  sign flips as one vectorized multiply.  This is the fast path used in
  production.
* ``"legacy"`` is the original per-constraint / per-coefficient Python
  loop, kept as the executable reference that the equivalence suite
  (``tests/test_compile_equivalence.py``) checks the fast path against.

Both paths perform float-identical operations (``flip * coef`` and
``flip * -constant`` in the same order), so the compiled problems are
bit-for-bit interchangeable, not merely close.  Select the reference
path with the :func:`compile_mode` context manager.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.errors import ModelError
from repro.lp.constraint import Sense
from repro.lp.model import Model
from repro.obs import registry as obs

#: Valid lowering modes; module default is the vectorized fast path.
COMPILE_MODES = ("vectorized", "legacy")
_compile_mode = "vectorized"

def _bounds_array(variables) -> np.ndarray:
    """Variable bounds as an ``(n, 2)`` float array.

    ``linprog`` accepts this shape directly and its input cleaning then
    reduces to a memcpy, where a list of per-variable tuples would cost
    a Python-level conversion pass on every solve.
    """
    n = len(variables)
    bounds = np.empty((n, 2), dtype=float)
    bounds[:, 0] = np.fromiter((v.lb for v in variables), dtype=float, count=n)
    bounds[:, 1] = np.fromiter((v.ub for v in variables), dtype=float, count=n)
    return bounds


@contextmanager
def compile_mode(mode: str) -> Iterator[None]:
    """Temporarily select the lowering path (``"vectorized"``/``"legacy"``).

    Used by the equivalence tests and the fast-path benchmark to force
    the reference implementation; everything else should leave the
    default alone.
    """
    global _compile_mode
    if mode not in COMPILE_MODES:
        raise ModelError(
            f"unknown compile mode {mode!r}; available: {', '.join(COMPILE_MODES)}"
        )
    previous = _compile_mode
    _compile_mode = mode
    try:
        yield
    finally:
        _compile_mode = previous


def current_compile_mode() -> str:
    """The lowering path :func:`compile_model` currently uses."""
    return _compile_mode


@dataclass
class CompiledProblem:
    """Sparse standard-form LP data extracted from a :class:`Model`."""

    c: np.ndarray
    c0: float
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    #: Per-variable (lb, ub): an ``(n, 2)`` array from the vectorized
    #: lowering, a list of tuples from the legacy one.  ``linprog``
    #: accepts both; the array form skips a Python-level conversion
    #: pass inside scipy on every solve.
    bounds: "np.ndarray | List[Tuple[float, float]]"
    maximize: bool
    #: One entry per model constraint, in order: ("ub"|"eq", row, sign).
    #: ``sign`` is -1 for GE constraints (negated into LE rows), so a
    #: model-level dual is ``sign * marginal`` of the compiled row.
    #: Defaults to an empty list so an un-populated problem degrades to
    #: "no dual information" instead of crashing dual extraction.
    row_map: List[Tuple[str, int, float]] = field(default_factory=list)

    @property
    def num_variables(self) -> int:
        return self.c.shape[0]

    @property
    def num_inequalities(self) -> int:
        return self.a_ub.shape[0]

    @property
    def num_equalities(self) -> int:
        return self.a_eq.shape[0]


def compile_model(model: Model, mode: Optional[str] = None) -> CompiledProblem:
    """Lower a :class:`Model` into :class:`CompiledProblem` matrices.

    ``GE`` constraints are negated into ``LE`` rows; constraint constants
    move to the right-hand side.  ``mode`` overrides the module-wide
    lowering path (see :func:`compile_mode`).
    """
    mode = mode or _compile_mode
    if mode not in COMPILE_MODES:
        raise ModelError(
            f"unknown compile mode {mode!r}; available: {', '.join(COMPILE_MODES)}"
        )
    with obs.span("lp.compile", model=model.name, mode=mode):
        if mode == "vectorized":
            problem = _compile_vectorized(model)
        else:
            problem = _compile_legacy(model)
    obs.counter("lp.cols", problem.num_variables)
    obs.counter("lp.rows", problem.num_inequalities + problem.num_equalities)
    obs.counter("lp.nonzeros", int(problem.a_ub.nnz + problem.a_eq.nnz))
    return problem


def _objective_vector(model: Model) -> Tuple[np.ndarray, float]:
    c = np.zeros(model.num_variables)
    for idx, coef in model.objective.coeffs.items():
        c[idx] = coef
    if not model.sense_minimize:
        c = -c
    return c, model.objective.constant


def _compile_vectorized(model: Model) -> CompiledProblem:
    """COO assembly from pre-accumulated flat buffers.

    One Python-level iteration per constraint; per-coefficient work is
    ``dict.keys()``/``dict.values()`` handed to ``list.extend`` (all C),
    then row expansion, sign flips and zero filtering run as numpy
    array operations.
    """
    n = model.num_variables
    c, c0 = _objective_vector(model)

    ub_cols: List[int] = []
    ub_vals: List[float] = []
    ub_counts: List[int] = []
    ub_flips: List[float] = []
    b_ub: List[float] = []
    eq_cols: List[int] = []
    eq_vals: List[float] = []
    eq_counts: List[int] = []
    b_eq: List[float] = []

    row_map: List[Tuple[str, int, float]] = []
    for con in model.constraints:
        expr = con.expr
        coeffs = expr.coeffs
        if con.sense is Sense.EQ:
            row_map.append(("eq", len(b_eq), 1.0))
            eq_cols.extend(coeffs.keys())
            eq_vals.extend(coeffs.values())
            eq_counts.append(len(coeffs))
            b_eq.append(-expr.constant)
        else:
            flip = -1.0 if con.sense is Sense.GE else 1.0
            row_map.append(("ub", len(b_ub), flip))
            ub_cols.extend(coeffs.keys())
            ub_vals.extend(coeffs.values())
            ub_counts.append(len(coeffs))
            ub_flips.append(flip)
            b_ub.append(flip * -expr.constant)

    a_ub = _coo_from_buffers(ub_cols, ub_vals, ub_counts, ub_flips, len(b_ub), n)
    a_eq = _coo_from_buffers(eq_cols, eq_vals, eq_counts, None, len(b_eq), n)

    bounds = _bounds_array(model.variables)

    return CompiledProblem(
        c=c,
        c0=c0,
        a_ub=a_ub,
        b_ub=np.asarray(b_ub, dtype=float),
        a_eq=a_eq,
        b_eq=np.asarray(b_eq, dtype=float),
        bounds=bounds,
        maximize=not model.sense_minimize,
        row_map=row_map,
    )


def _coo_from_buffers(
    cols: List[int],
    vals: List[float],
    counts: List[int],
    flips: Optional[List[float]],
    num_rows: int,
    num_cols: int,
) -> sparse.csr_matrix:
    """CSR matrix from per-constraint flattened coefficient buffers.

    ``counts[i]`` entries of ``cols``/``vals`` belong to row ``i``;
    ``flips`` optionally scales each row's entries (the GE negation).
    Explicit zeros are dropped, matching the legacy per-coefficient
    ``coef != 0.0`` filter (a flipped zero is still zero).
    """
    counts_arr = np.asarray(counts, dtype=np.intp)
    cols_arr = np.asarray(cols, dtype=np.intp)
    data = np.asarray(vals, dtype=float)
    if flips is not None and len(flips):
        data = data * np.repeat(np.asarray(flips, dtype=float), counts_arr)
    keep = data != 0.0
    if keep.all():
        # The buffers are already row-contiguous, so the CSR index
        # pointer is just the running total of per-row counts — no COO
        # row expansion, no lexsort.  ``sum_duplicates()`` canonicalizes
        # (sorted indices, merged duplicates), yielding the exact matrix
        # the COO round-trip would.
        indptr = np.empty(num_rows + 1, dtype=np.intp)
        indptr[0] = 0
        np.cumsum(counts_arr, out=indptr[1:])
        matrix = sparse.csr_matrix(
            (data, cols_arr, indptr), shape=(num_rows, num_cols), dtype=float
        )
        matrix.sum_duplicates()
        return matrix
    # Explicit zeros present: filtering invalidates the per-row counts,
    # so fall back to the COO round-trip.
    rows = np.repeat(np.arange(num_rows, dtype=np.intp), counts_arr)
    rows = rows[keep]
    cols_arr = cols_arr[keep]
    data = data[keep]
    return sparse.csr_matrix(
        (data, (rows, cols_arr)), shape=(num_rows, num_cols), dtype=float
    )


def _compile_legacy(model: Model) -> CompiledProblem:
    """The original per-constraint loop, kept as executable reference."""
    n = model.num_variables
    c, c0 = _objective_vector(model)

    ub_rows: List[int] = []
    ub_cols: List[int] = []
    ub_data: List[float] = []
    b_ub: List[float] = []
    eq_rows: List[int] = []
    eq_cols: List[int] = []
    eq_data: List[float] = []
    b_eq: List[float] = []

    row_map: List[Tuple[str, int, float]] = []
    for con in model.constraints:
        expr = con.expr
        if con.sense is Sense.EQ:
            row = len(b_eq)
            for idx, coef in expr.coeffs.items():
                if coef != 0.0:
                    eq_rows.append(row)
                    eq_cols.append(idx)
                    eq_data.append(coef)
            b_eq.append(-expr.constant)
            row_map.append(("eq", row, 1.0))
        else:
            flip = -1.0 if con.sense is Sense.GE else 1.0
            row = len(b_ub)
            for idx, coef in expr.coeffs.items():
                if coef != 0.0:
                    ub_rows.append(row)
                    ub_cols.append(idx)
                    ub_data.append(flip * coef)
            b_ub.append(flip * -expr.constant)
            row_map.append(("ub", row, flip))

    a_ub = sparse.csr_matrix(
        (ub_data, (ub_rows, ub_cols)), shape=(len(b_ub), n), dtype=float
    )
    a_eq = sparse.csr_matrix(
        (eq_data, (eq_rows, eq_cols)), shape=(len(b_eq), n), dtype=float
    )

    bounds = [(var.lb, var.ub) for var in model.variables]

    return CompiledProblem(
        c=c,
        c0=c0,
        a_ub=a_ub,
        b_ub=np.asarray(b_ub, dtype=float),
        a_eq=a_eq,
        b_eq=np.asarray(b_eq, dtype=float),
        bounds=bounds,
        maximize=not model.sense_minimize,
        row_map=row_map,
    )
