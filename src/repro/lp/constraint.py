"""Linear constraints produced by comparing expressions."""

from __future__ import annotations

import enum

from repro.lp.expr import LinExpr


class Sense(enum.Enum):
    """Direction of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Constraint:
    """A linear constraint in normalized form ``expr (sense) 0``.

    ``expr`` holds all variable terms and the constant moved to the left
    side, so the constraint reads ``expr.coeffs . x + expr.constant <= 0``
    (or ``>=``/``==``).  Constraints are created by comparison operators
    on :class:`~repro.lp.expr.LinExpr` / :class:`~repro.lp.expr.Variable`
    and registered with :meth:`repro.lp.Model.add_constraint`.
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: Sense, name: str = ""):
        self.expr = expr
        self.sense = sense
        self.name = name

    @property
    def rhs(self) -> float:
        """Right-hand side when the constant is moved back to the right."""
        return -self.expr.constant

    def __bool__(self) -> bool:
        # Guards against `if x == y:` silently truthy-testing a Constraint.
        raise TypeError(
            "a Constraint has no truth value; pass it to Model.add_constraint()"
        )

    def __repr__(self) -> str:
        return f"Constraint({self.expr!r} {self.sense.value} 0, name={self.name!r})"
