"""Linear expressions over model variables.

A :class:`Variable` is a handle created by :meth:`repro.lp.Model.add_variable`.
Arithmetic on variables produces :class:`LinExpr` objects — sparse maps
from variable index to coefficient plus a constant term.  Comparison
operators (``<=``, ``>=``, ``==``) produce constraints.
"""

from __future__ import annotations

import numbers
from typing import Dict, Iterable, Mapping, Tuple, Union

from repro.errors import ModelError

Scalar = Union[int, float]
ExprLike = Union["Variable", "LinExpr", Scalar]


class Variable:
    """A decision variable belonging to one :class:`~repro.lp.Model`.

    Variables compare by identity; their :attr:`index` is the column in
    the compiled problem.  Do not instantiate directly — use
    :meth:`Model.add_variable`.
    """

    __slots__ = ("name", "index", "lb", "ub", "_model_id")

    def __init__(self, name: str, index: int, lb: float, ub: float, model_id: int):
        self.name = name
        self.index = index
        self.lb = lb
        self.ub = ub
        self._model_id = model_id

    def as_expr(self) -> "LinExpr":
        """This variable as a one-term linear expression."""
        return LinExpr({self.index: 1.0}, 0.0, self._model_id)

    # -- arithmetic ---------------------------------------------------

    def __add__(self, other: ExprLike) -> "LinExpr":
        return self.as_expr() + other

    def __radd__(self, other: ExprLike) -> "LinExpr":
        return self.as_expr() + other

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self.as_expr() - other

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return (-self.as_expr()) + other

    def __mul__(self, other: Scalar) -> "LinExpr":
        return self.as_expr() * other

    def __rmul__(self, other: Scalar) -> "LinExpr":
        return self.as_expr() * other

    def __truediv__(self, other: Scalar) -> "LinExpr":
        return self.as_expr() / other

    def __neg__(self) -> "LinExpr":
        return -self.as_expr()

    def __pos__(self) -> "LinExpr":
        return self.as_expr()

    # -- comparisons build constraints --------------------------------

    def __le__(self, other: ExprLike):
        return self.as_expr() <= other

    def __ge__(self, other: ExprLike):
        return self.as_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr)) or isinstance(other, numbers.Real):
            return self.as_expr() == other
        return NotImplemented

    def __hash__(self):
        return id(self)

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, index={self.index})"


class LinExpr:
    """A sparse affine expression ``sum(coef[i] * x_i) + constant``."""

    __slots__ = ("coeffs", "constant", "_model_id")

    def __init__(
        self,
        coeffs: Mapping[int, float] = (),
        constant: float = 0.0,
        model_id: int = -1,
    ):
        self.coeffs: Dict[int, float] = dict(coeffs)
        self.constant = float(constant)
        self._model_id = model_id

    # -- construction helpers -----------------------------------------

    @staticmethod
    def from_terms(terms: Iterable[Tuple[Scalar, "Variable"]], constant: float = 0.0) -> "LinExpr":
        """Build an expression from ``(coefficient, variable)`` pairs.

        Much faster than repeated ``+`` when summing thousands of terms.
        """
        coeffs: Dict[int, float] = {}
        model_id = -1
        for coef, var in terms:
            if model_id == -1:
                model_id = var._model_id
            elif var._model_id != model_id:
                raise ModelError("cannot mix variables from different models")
            coeffs[var.index] = coeffs.get(var.index, 0.0) + float(coef)
        return LinExpr(coeffs, constant, model_id)

    @staticmethod
    def sum(items: Iterable[ExprLike]) -> "LinExpr":
        """Sum variables/expressions/scalars efficiently."""
        coeffs: Dict[int, float] = {}
        constant = 0.0
        model_id = -1
        for item in items:
            if isinstance(item, Variable):
                if model_id == -1:
                    model_id = item._model_id
                elif item._model_id != model_id:
                    raise ModelError("cannot mix variables from different models")
                coeffs[item.index] = coeffs.get(item.index, 0.0) + 1.0
            elif isinstance(item, LinExpr):
                if item._model_id != -1:
                    if model_id == -1:
                        model_id = item._model_id
                    elif item._model_id != model_id:
                        raise ModelError("cannot mix expressions from different models")
                for idx, coef in item.coeffs.items():
                    coeffs[idx] = coeffs.get(idx, 0.0) + coef
                constant += item.constant
            elif isinstance(item, numbers.Real):
                constant += float(item)
            else:
                raise TypeError(f"cannot sum object of type {type(item).__name__}")
        return LinExpr(coeffs, constant, model_id)

    def _merge_model_id(self, other_id: int) -> int:
        if self._model_id == -1:
            return other_id
        if other_id == -1:
            return self._model_id
        if self._model_id != other_id:
            raise ModelError("cannot mix expressions from different models")
        return self._model_id

    def _coerce(self, other: ExprLike) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return other.as_expr()
        if isinstance(other, numbers.Real):
            return LinExpr({}, float(other), -1)
        raise TypeError(f"cannot combine LinExpr with {type(other).__name__}")

    # -- arithmetic ----------------------------------------------------

    def __add__(self, other: ExprLike) -> "LinExpr":
        other = self._coerce(other)
        model_id = self._merge_model_id(other._model_id)
        coeffs = dict(self.coeffs)
        for idx, coef in other.coeffs.items():
            coeffs[idx] = coeffs.get(idx, 0.0) + coef
        return LinExpr(coeffs, self.constant + other.constant, model_id)

    def __radd__(self, other: ExprLike) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self.__add__(-self._coerce(other))

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return (-self).__add__(other)

    def __neg__(self) -> "LinExpr":
        return LinExpr(
            {idx: -coef for idx, coef in self.coeffs.items()},
            -self.constant,
            self._model_id,
        )

    def __pos__(self) -> "LinExpr":
        return self

    def __mul__(self, other: Scalar) -> "LinExpr":
        if not isinstance(other, numbers.Real):
            raise TypeError("LinExpr can only be multiplied by a scalar")
        scale = float(other)
        return LinExpr(
            {idx: coef * scale for idx, coef in self.coeffs.items()},
            self.constant * scale,
            self._model_id,
        )

    def __rmul__(self, other: Scalar) -> "LinExpr":
        return self.__mul__(other)

    def __truediv__(self, other: Scalar) -> "LinExpr":
        if not isinstance(other, numbers.Real):
            raise TypeError("LinExpr can only be divided by a scalar")
        return self.__mul__(1.0 / float(other))

    # -- comparisons ----------------------------------------------------

    def __le__(self, other: ExprLike):
        from repro.lp.constraint import Constraint, Sense

        return Constraint(self - self._coerce(other), Sense.LE)

    def __ge__(self, other: ExprLike):
        from repro.lp.constraint import Constraint, Sense

        return Constraint(self - self._coerce(other), Sense.GE)

    def __eq__(self, other):  # type: ignore[override]
        from repro.lp.constraint import Constraint, Sense

        if isinstance(other, (Variable, LinExpr)) or isinstance(other, numbers.Real):
            return Constraint(self - self._coerce(other), Sense.EQ)
        return NotImplemented

    def __hash__(self):
        return id(self)

    # -- utilities -------------------------------------------------------

    def is_constant(self) -> bool:
        """True when the expression references no variable."""
        return all(coef == 0.0 for coef in self.coeffs.values())

    def __repr__(self) -> str:
        terms = " + ".join(f"{coef:g}*x{idx}" for idx, coef in sorted(self.coeffs.items()))
        if not terms:
            return f"LinExpr({self.constant:g})"
        if self.constant:
            return f"LinExpr({terms} + {self.constant:g})"
        return f"LinExpr({terms})"
