"""The Model: a container for variables, constraints and the objective."""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Union

from repro.errors import InfeasibleError, ModelError, SolverError, UnboundedError
from repro.lp.constraint import Constraint, Sense
from repro.lp.expr import ExprLike, LinExpr, Variable
from repro.lp.result import Solution, SolveStatus

_model_counter = itertools.count()


class Model:
    """A linear program under construction.

    Build a model by adding variables and constraints, set the objective
    with :meth:`minimize` or :meth:`maximize`, then call :meth:`solve`.

    The :meth:`add_max_epigraph` helper implements the standard epigraph
    transform used by the Postcard objective: it introduces an auxiliary
    variable ``z`` with ``z >= e`` for every expression ``e``, so that
    minimizing a positively-weighted sum of such ``z`` values minimizes
    the pointwise maximum.
    """

    def __init__(self, name: str = "model"):
        self.name = name
        self._id = next(_model_counter)
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self.objective: LinExpr = LinExpr({}, 0.0, self._id)
        self.sense_minimize: bool = True
        self._solution: Optional[Solution] = None

    # -- construction ---------------------------------------------------

    def add_variable(
        self,
        name: str = "",
        lb: float = 0.0,
        ub: Optional[float] = None,
    ) -> Variable:
        """Create a new decision variable with bounds ``[lb, ub]``.

        ``ub=None`` means unbounded above; ``lb=None`` means unbounded
        below.  Defaults to the LP-friendly ``x >= 0``.
        """
        index = len(self.variables)
        lo = float("-inf") if lb is None else float(lb)
        hi = float("inf") if ub is None else float(ub)
        if lo > hi:
            raise ModelError(f"variable {name or index} has empty domain [{lo}, {hi}]")
        var = Variable(name or f"x{index}", index, lo, hi, self._id)
        self.variables.append(var)
        self._solution = None
        return var

    def add_variables(
        self, count: int, prefix: str = "x", lb: float = 0.0, ub: Optional[float] = None
    ) -> List[Variable]:
        """Create ``count`` variables named ``{prefix}[0..count)``."""
        return [self.add_variable(f"{prefix}[{i}]", lb=lb, ub=ub) for i in range(count)]

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built with ``<=``, ``>=`` or ``==``."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add_constraint expects a comparison of expressions, "
                f"got {type(constraint).__name__}"
            )
        if constraint.expr._model_id not in (-1, self._id):
            raise ModelError("constraint references variables from a different model")
        if constraint.expr.is_constant():
            # A constant constraint is either trivially true (drop it) or
            # a modeling bug (raise early rather than let the solver
            # report a confusing infeasibility).
            value, sense = constraint.expr.constant, constraint.sense
            ok = (
                (sense is Sense.LE and value <= 1e-12)
                or (sense is Sense.GE and value >= -1e-12)
                or (sense is Sense.EQ and abs(value) <= 1e-12)
            )
            if not ok:
                raise ModelError(
                    f"constraint {name or constraint.name!r} is constant and false: "
                    f"{value:g} {sense.value} 0"
                )
            return constraint
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        self._solution = None
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint], prefix: str = "") -> None:
        """Register many constraints, optionally naming them by index."""
        for i, con in enumerate(constraints):
            self.add_constraint(con, name=f"{prefix}[{i}]" if prefix else "")

    def add_max_epigraph(
        self, exprs: Sequence[ExprLike], name: str = "zmax", lb: Optional[float] = None
    ) -> Variable:
        """Return a variable ``z`` constrained to ``z >= e`` for each expr.

        When ``z`` appears with positive weight in a minimization
        objective, at the optimum ``z`` equals ``max(exprs)`` (or ``lb``
        if that is larger), which is exactly the charged-volume semantics
        of the 100-th percentile scheme.
        """
        if not exprs:
            raise ModelError("add_max_epigraph needs at least one expression")
        z = self.add_variable(name, lb=None)
        for i, expr in enumerate(exprs):
            self.add_constraint(z >= expr, name=f"{name}_ge[{i}]")
        if lb is not None:
            self.add_constraint(z >= lb, name=f"{name}_lb")
        return z

    # -- objective --------------------------------------------------------

    def minimize(self, expr: ExprLike) -> None:
        """Set a minimization objective."""
        self._set_objective(expr, minimize=True)

    def maximize(self, expr: ExprLike) -> None:
        """Set a maximization objective."""
        self._set_objective(expr, minimize=False)

    def _set_objective(self, expr: ExprLike, minimize: bool) -> None:
        if isinstance(expr, Variable):
            expr = expr.as_expr()
        elif isinstance(expr, (int, float)):
            expr = LinExpr({}, float(expr), self._id)
        if not isinstance(expr, LinExpr):
            raise ModelError(f"objective must be linear, got {type(expr).__name__}")
        if expr._model_id not in (-1, self._id):
            raise ModelError("objective references variables from a different model")
        self.objective = expr
        self.sense_minimize = minimize
        self._solution = None

    # -- solving ------------------------------------------------------------

    def solve(self, backend: str = "highs", warm=None, **options) -> Solution:
        """Solve and return a :class:`Solution`.

        ``warm`` optionally carries a :class:`~repro.lp.warm.WarmStart`
        from a previous related solve; backends that support it seed
        their iterates from the hint, the rest ignore it (see
        :mod:`repro.lp.warm`).

        Raises :class:`InfeasibleError` / :class:`UnboundedError` /
        :class:`SolverError` on failure, so callers can rely on the
        returned solution being optimal.
        """
        from repro.lp.backends import get_backend

        solver = get_backend(backend)
        if warm is not None:
            options["warm"] = warm
        solution = solver.solve(self, **options)
        if solution.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(f"model {self.name!r} is infeasible")
        if solution.status is SolveStatus.UNBOUNDED:
            raise UnboundedError(f"model {self.name!r} is unbounded")
        if solution.status is not SolveStatus.OPTIMAL:
            raise SolverError(f"backend {backend!r} failed on model {self.name!r}")
        self._solution = solution
        return solution

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_variables}, "
            f"cons={self.num_constraints})"
        )
