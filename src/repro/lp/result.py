"""Solve results: status codes and the Solution accessor."""

from __future__ import annotations

import enum
from typing import Union

import numpy as np

from repro.errors import ModelError
from repro.lp.expr import LinExpr, Variable


class SolveStatus(enum.Enum):
    """Outcome of a solver run."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


class Solution:
    """A solved model's variable assignment.

    Index with a :class:`Variable` or a :class:`LinExpr` via
    :meth:`value`, or read :attr:`objective` for the optimal objective
    value (including any constant term in the objective expression).
    """

    def __init__(
        self,
        status: SolveStatus,
        x: np.ndarray,
        objective: float,
        model_id: int,
        solver: str = "",
        iterations: int = 0,
        duals: "dict | None" = None,
    ):
        self.status = status
        self.x = x
        self.objective = objective
        self.solver = solver
        self.iterations = iterations
        self._model_id = model_id
        #: Maps id(constraint) -> dual value (d objective / d rhs), or
        #: None when the backend does not report duals.
        self._duals = duals

    def value(self, item: Union[Variable, LinExpr, float, int]) -> float:
        """Evaluate a variable or linear expression at the optimum."""
        if isinstance(item, (int, float)):
            return float(item)
        if isinstance(item, Variable):
            self._check_model(item._model_id)
            return float(self.x[item.index])
        if isinstance(item, LinExpr):
            if item._model_id != -1:
                self._check_model(item._model_id)
            total = item.constant
            for idx, coef in item.coeffs.items():
                total += coef * self.x[idx]
            return float(total)
        raise TypeError(f"cannot evaluate object of type {type(item).__name__}")

    @property
    def has_duals(self) -> bool:
        return self._duals is not None

    def dual(self, constraint) -> float:
        """Shadow price of a constraint: d(objective) / d(rhs).

        Only the HiGHS backend reports duals; the pure simplex backend
        raises :class:`ModelError` here.  Sign convention follows the
        constraint as written: relaxing ``expr <= b`` by one unit
        changes a minimization objective by ``dual`` (<= 0), and
        tightening ``expr >= b`` likewise.
        """
        if self._duals is None:
            raise ModelError(
                f"backend {self.solver!r} does not report dual values"
            )
        try:
            return self._duals[id(constraint)]
        except KeyError:
            raise ModelError(
                "unknown constraint (was it added to this model before solving?)"
            ) from None

    def _check_model(self, model_id: int) -> None:
        if model_id != self._model_id:
            raise ModelError("this Solution belongs to a different Model")

    def __repr__(self) -> str:
        return (
            f"Solution(status={self.status.value}, objective={self.objective:.6g}, "
            f"solver={self.solver!r})"
        )
