"""Warm-start data threaded between consecutive solves.

The online Postcard controller solves a *sequence* of closely related
LPs: every slot's model shares the charged-volume variables ``X[i,j]``
with the previous slot's (same names, monotonically growing optimal
values), while the per-file flow variables are new each time.  A
:class:`WarmStart` captures one solve's variable values **by name** so
the next model — with different variable indices and shapes — can be
seeded from them.

How much a backend can do with the hint varies:

* ``interior_point`` uses it as the initial primal iterate (projected
  into the positive orthant), which typically cuts iterations on
  consecutive slots.
* ``highs`` (scipy's HiGHS bindings) exposes no basis- or
  solution-injection API, so the hint is accepted and deliberately
  ignored — warm and cold solves are bit-identical there, which is what
  lets the fast scheduling path guarantee unchanged results.
* ``simplex`` (the dense educational tableau) likewise ignores the
  hint; injecting a starting basis into a two-phase tableau is out of
  scope for a verification backend.

Backends advertise their behavior via
:attr:`~repro.lp.backends.base.Backend.supports_warm_start`.

History: introduced in PR 3 (fast-path scheduling).  PR 4's hybrid
scheduler inherits it for free: escalated slots run the same
:class:`~repro.core.scheduler.PostcardScheduler`, so consecutive
escalations warm-start from each other even with fast-lane slots in
between.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.lp.model import Model
from repro.lp.result import Solution


@dataclass
class WarmStart:
    """Variable values of a previous solve, keyed by variable name.

    ``objective`` and ``solver`` record where the hint came from (for
    reports and debugging); neither affects the seeded solve.
    """

    values: Dict[str, float] = field(default_factory=dict)
    objective: Optional[float] = None
    solver: Optional[str] = None

    @classmethod
    def from_solution(cls, model: Model, solution: Solution) -> "WarmStart":
        """Capture every variable's optimal value from a solved model."""
        x = solution.x
        return cls(
            values={var.name: float(x[var.index]) for var in model.variables},
            objective=solution.objective,
            solver=solution.solver,
        )

    def __len__(self) -> int:
        return len(self.values)

    def initial_point(self, model: Model) -> np.ndarray:
        """A bounds-feasible initial point for ``model``'s variables.

        Variables whose name matches a recorded value start there
        (clipped into their bounds); unknown variables start at the
        projection of zero onto their bounds — the same neutral default
        a cold start would effectively use.
        """
        x0 = np.empty(model.num_variables)
        get = self.values.get
        for i, var in enumerate(model.variables):
            value = get(var.name, 0.0)
            if value < var.lb:
                value = var.lb
            elif value > var.ub:
                value = var.ub
            x0[i] = value
        return x0
