"""Combinatorial network-flow algorithms.

The flow-based baseline of Sec. II-B decomposes into a maximum
concurrent flow problem and a minimum-cost multicommodity flow problem.
The multicommodity versions are solved as LPs (see
:mod:`repro.flowbased`), but their single-commodity building blocks are
implemented here combinatorially — Dinic's max-flow and successive
shortest paths with Johnson potentials for min-cost flow — and
cross-checked against networkx in the test suite.
"""

from repro.mcmf.graph import FlowNetwork
from repro.mcmf.maxflow import dinic_max_flow
from repro.mcmf.mincost import min_cost_flow
from repro.mcmf.concurrent import max_concurrent_flow

__all__ = [
    "FlowNetwork",
    "dinic_max_flow",
    "min_cost_flow",
    "max_concurrent_flow",
]
