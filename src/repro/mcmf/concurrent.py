"""Maximum concurrent flow.

Given commodities ``(source_k, sink_k, demand_k)`` on a shared
capacitated graph, find the largest ``lambda`` such that
``lambda * demand_k`` of every commodity can be routed simultaneously.
This is the first sub-problem of the paper's flow-based decomposition
(Sec. II-B): route as much traffic as possible inside the already-paid
headroom before spending money on new peaks.

Solved as an LP on the shared graph — the natural formulation, and at
the scale of inter-datacenter overlays it is instant.  A single
commodity degenerates to max-flow, which the tests cross-check against
Dinic.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

from repro.errors import TopologyError
from repro.lp import LinExpr, Model

Edge = Tuple[int, int, float]  # (src, dst, capacity)
Commodity = Tuple[int, int, float]  # (source, sink, demand)


def max_concurrent_flow(
    num_nodes: int,
    edges: Sequence[Edge],
    commodities: Sequence[Commodity],
    cap_lambda: float = float("inf"),
    backend: str = "highs",
) -> Tuple[float, List[Dict[Tuple[int, int], float]]]:
    """Maximize the common served fraction ``lambda``.

    Returns ``(lambda, flows)`` where ``flows[k]`` maps edge keys to the
    flow carried for commodity ``k``.  ``cap_lambda`` bounds the
    fraction (the flow-based baseline caps it at 1: there is no point
    routing more than each file's desired rate).
    """
    if not commodities:
        raise TopologyError("need at least one commodity")
    for src, dst, demand in commodities:
        if not (0 <= src < num_nodes and 0 <= dst < num_nodes):
            raise TopologyError(f"commodity ({src},{dst}) out of range")
        if src == dst:
            raise TopologyError("commodity source equals sink")
        if demand <= 0:
            raise TopologyError(f"commodity demand must be positive, got {demand}")

    model = Model("max_concurrent_flow")
    lam = model.add_variable(
        "lambda", lb=0.0, ub=None if cap_lambda == float("inf") else cap_lambda
    )

    # Per-commodity flow variables on every edge.
    edge_vars = []
    for k in range(len(commodities)):
        per_edge = {}
        for e, (src, dst, cap) in enumerate(edges):
            if cap < 0:
                raise TopologyError(f"edge ({src},{dst}) has negative capacity")
            per_edge[e] = model.add_variable(f"f[{k},{src},{dst},{e}]")
        edge_vars.append(per_edge)

    # Shared capacity.
    for e, (src, dst, cap) in enumerate(edges):
        if cap != float("inf"):
            model.add_constraint(
                LinExpr.sum(edge_vars[k][e] for k in range(len(commodities))) <= cap,
                name=f"cap[{e}]",
            )

    # Conservation with demand scaled by lambda.
    for k, (source, sink, demand) in enumerate(commodities):
        balance = defaultdict(list)
        for e, (src, dst, _cap) in enumerate(edges):
            balance[src].append((1.0, edge_vars[k][e]))
            balance[dst].append((-1.0, edge_vars[k][e]))
        for node in range(num_nodes):
            net = LinExpr.from_terms(balance.get(node, []))
            if node == source:
                model.add_constraint(net - demand * lam == 0.0, name=f"src[{k}]")
            elif node == sink:
                model.add_constraint(net + demand * lam == 0.0, name=f"snk[{k}]")
            else:
                model.add_constraint(net == 0.0, name=f"cons[{k},{node}]")

    model.maximize(lam)
    solution = model.solve(backend=backend)

    lam_value = solution.value(lam)
    flows: List[Dict[Tuple[int, int], float]] = []
    for k in range(len(commodities)):
        per_key: Dict[Tuple[int, int], float] = defaultdict(float)
        for e, (src, dst, _cap) in enumerate(edges):
            value = solution.value(edge_vars[k][e])
            if value > 1e-9:
                per_key[(src, dst)] += value
        flows.append(dict(per_key))
    return lam_value, flows
