"""A residual flow network shared by the max-flow and min-cost solvers."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import TopologyError


class _Edge:
    """One directed edge and its residual twin (linked by index)."""

    __slots__ = ("src", "dst", "capacity", "cost", "flow", "twin")

    def __init__(self, src: int, dst: int, capacity: float, cost: float):
        self.src = src
        self.dst = dst
        self.capacity = capacity
        self.cost = cost
        self.flow = 0.0
        self.twin: Optional["_Edge"] = None

    @property
    def residual(self) -> float:
        return self.capacity - self.flow

    def push(self, amount: float) -> None:
        self.flow += amount
        assert self.twin is not None
        self.twin.flow -= amount


class FlowNetwork:
    """Adjacency-list flow network over integer node ids.

    Edges are added with :meth:`add_edge`; each automatically gets a
    zero-capacity reverse edge carrying negative cost, forming the
    residual graph both solvers need.
    """

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise TopologyError("flow network needs at least one node")
        self.num_nodes = num_nodes
        self.adj: List[List[_Edge]] = [[] for _ in range(num_nodes)]
        self._forward_edges: List[_Edge] = []

    def add_edge(self, src: int, dst: int, capacity: float, cost: float = 0.0) -> int:
        """Add a directed edge; returns its index among forward edges."""
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise TopologyError(f"edge ({src},{dst}) out of range")
        if capacity < 0:
            raise TopologyError(f"edge ({src},{dst}) has negative capacity")
        fwd = _Edge(src, dst, capacity, cost)
        rev = _Edge(dst, src, 0.0, -cost)
        fwd.twin, rev.twin = rev, fwd
        self.adj[src].append(fwd)
        self.adj[dst].append(rev)
        self._forward_edges.append(fwd)
        return len(self._forward_edges) - 1

    def edge_flow(self, index: int) -> float:
        """Current flow on the ``index``-th forward edge."""
        return self._forward_edges[index].flow

    def edge_flows(self) -> List[Tuple[int, int, float]]:
        """(src, dst, flow) for every forward edge with positive flow."""
        return [
            (e.src, e.dst, e.flow) for e in self._forward_edges if e.flow > 1e-12
        ]

    def reset_flows(self) -> None:
        for edge in self._forward_edges:
            edge.flow = 0.0
            edge.twin.flow = 0.0

    def total_cost(self) -> float:
        """Sum of cost * flow over forward edges."""
        return sum(e.cost * e.flow for e in self._forward_edges)

    @staticmethod
    def from_edges(
        num_nodes: int, edges: Iterable[Tuple[int, int, float, float]]
    ) -> "FlowNetwork":
        """Build from (src, dst, capacity, cost) tuples."""
        network = FlowNetwork(num_nodes)
        for src, dst, capacity, cost in edges:
            network.add_edge(src, dst, capacity, cost)
        return network
