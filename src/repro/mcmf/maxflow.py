"""Dinic's maximum-flow algorithm on a :class:`FlowNetwork`."""

from __future__ import annotations

from collections import deque
from typing import List

from repro.errors import TopologyError
from repro.mcmf.graph import FlowNetwork

_EPS = 1e-12


def _bfs_levels(network: FlowNetwork, source: int, sink: int) -> List[int]:
    """Level graph for the current residual network (-1 = unreachable)."""
    levels = [-1] * network.num_nodes
    levels[source] = 0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for edge in network.adj[node]:
            if edge.residual > _EPS and levels[edge.dst] == -1:
                levels[edge.dst] = levels[node] + 1
                queue.append(edge.dst)
    return levels


def _dfs_push(
    network: FlowNetwork,
    node: int,
    sink: int,
    limit: float,
    levels: List[int],
    next_edge: List[int],
) -> float:
    """Push up to ``limit`` along level-increasing residual edges."""
    if node == sink:
        return limit
    while next_edge[node] < len(network.adj[node]):
        edge = network.adj[node][next_edge[node]]
        if edge.residual > _EPS and levels[edge.dst] == levels[node] + 1:
            pushed = _dfs_push(
                network, edge.dst, sink, min(limit, edge.residual), levels, next_edge
            )
            if pushed > _EPS:
                edge.push(pushed)
                return pushed
        next_edge[node] += 1
    return 0.0


def dinic_max_flow(network: FlowNetwork, source: int, sink: int) -> float:
    """Maximize flow from ``source`` to ``sink``; returns its value.

    Flows accumulate on the network's edges (inspect via
    :meth:`FlowNetwork.edge_flows`).  Runs in O(V^2 E); on the small
    overlay graphs of this reproduction it is effectively instant.
    """
    if source == sink:
        raise TopologyError("source and sink must differ")
    if not (0 <= source < network.num_nodes and 0 <= sink < network.num_nodes):
        raise TopologyError("source or sink out of range")

    total = 0.0
    while True:
        levels = _bfs_levels(network, source, sink)
        if levels[sink] == -1:
            return total
        next_edge = [0] * network.num_nodes
        while True:
            pushed = _dfs_push(
                network, source, sink, float("inf"), levels, next_edge
            )
            if pushed <= _EPS:
                break
            total += pushed
