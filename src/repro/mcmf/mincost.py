"""Minimum-cost flow via successive shortest paths with potentials.

The classic primal algorithm: repeatedly send flow along the cheapest
residual source→sink path.  Johnson potentials keep reduced costs
non-negative so Dijkstra applies after an initial Bellman-Ford pass
(needed because residual twins carry negative costs, and callers may
supply negative-cost edges outright).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.errors import SolverError, TopologyError
from repro.mcmf.graph import FlowNetwork, _Edge

_EPS = 1e-12


def _bellman_ford(network: FlowNetwork, source: int) -> List[float]:
    """Shortest residual distances allowing negative costs."""
    dist = [float("inf")] * network.num_nodes
    dist[source] = 0.0
    for iteration in range(network.num_nodes):
        changed = False
        for node in range(network.num_nodes):
            if dist[node] == float("inf"):
                continue
            for edge in network.adj[node]:
                if edge.residual > _EPS and dist[node] + edge.cost < dist[edge.dst] - _EPS:
                    dist[edge.dst] = dist[node] + edge.cost
                    changed = True
        if not changed:
            return dist
    raise SolverError("negative-cost cycle in flow network")


def _dijkstra(
    network: FlowNetwork, source: int, potentials: List[float]
) -> Tuple[List[float], List[Optional[_Edge]]]:
    """Shortest residual paths under reduced costs; returns (dist, parent)."""
    dist = [float("inf")] * network.num_nodes
    parent: List[Optional[_Edge]] = [None] * network.num_nodes
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist[node] + _EPS:
            continue
        for edge in network.adj[node]:
            if edge.residual <= _EPS:
                continue
            reduced = edge.cost + potentials[node] - potentials[edge.dst]
            # Tiny negatives from float error are clamped; anything
            # larger means the potentials are stale (a bug).
            if reduced < -1e-7:
                raise SolverError(f"negative reduced cost {reduced}")
            reduced = max(reduced, 0.0)
            nd = d + reduced
            if nd < dist[edge.dst] - _EPS:
                dist[edge.dst] = nd
                parent[edge.dst] = edge
                heapq.heappush(heap, (nd, edge.dst))
    return dist, parent


def min_cost_flow(
    network: FlowNetwork,
    source: int,
    sink: int,
    amount: float,
) -> float:
    """Send ``amount`` units source→sink at minimum total cost.

    Returns that cost.  Raises :class:`SolverError` if the network
    cannot carry the requested amount.  Flows accumulate on the
    network's edges.
    """
    if source == sink:
        raise TopologyError("source and sink must differ")
    if amount < 0:
        raise TopologyError(f"amount must be non-negative, got {amount}")
    if amount == 0:
        return 0.0

    potentials = _bellman_ford(network, source)
    remaining = amount
    total_cost = 0.0

    while remaining > _EPS:
        dist, parent = _dijkstra(network, source, potentials)
        if dist[sink] == float("inf"):
            raise SolverError(
                f"network cannot carry {amount:g} units; "
                f"{remaining:g} units unroutable"
            )
        # Bottleneck along the path.
        bottleneck = remaining
        node = sink
        while node != source:
            edge = parent[node]
            assert edge is not None
            bottleneck = min(bottleneck, edge.residual)
            node = edge.src
        # Push and account actual (not reduced) cost.
        node = sink
        while node != source:
            edge = parent[node]
            assert edge is not None
            edge.push(bottleneck)
            total_cost += edge.cost * bottleneck
            node = edge.src
        remaining -= bottleneck
        # Johnson update keeps reduced costs non-negative next round.
        # Unreachable nodes take the sink's distance (the standard
        # clamp): they only matter once residual changes reconnect
        # them, and the clamp keeps all touched reduced costs valid.
        for i in range(network.num_nodes):
            potentials[i] += min(dist[i], dist[sink])

    return total_cost
