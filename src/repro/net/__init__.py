"""The inter-datacenter network substrate.

Models the paper's setting: a set of geographically distributed
datacenters operated by one cloud provider, inter-connected by directed
overlay links leased from ISPs.  Each link carries a per-unit price
(``a_ij``) and a per-slot capacity; capacities may vary over time once
transfers are committed (see :mod:`repro.core.state`), and links may be
limited to scheduled availability windows (see :mod:`repro.net.schedule`).
"""

from repro.net.topology import Datacenter, Link, Topology
from repro.net.schedule import AvailabilityWindow, LinkSchedule
from repro.net.generators import (
    complete_topology,
    fig1_topology,
    fig3_topology,
    line_topology,
    paper_topology,
    ring_topology,
    star_topology,
    two_region_topology,
)

__all__ = [
    "AvailabilityWindow",
    "Datacenter",
    "Link",
    "LinkSchedule",
    "Topology",
    "complete_topology",
    "fig1_topology",
    "fig3_topology",
    "line_topology",
    "paper_topology",
    "ring_topology",
    "star_topology",
    "two_region_topology",
]
