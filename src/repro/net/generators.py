"""Topology generators.

``paper_topology`` reproduces the evaluation setup of Sec. VII: a
complete directed graph over 20 datacenters with per-link prices drawn
uniformly from [1, 10] and a uniform per-slot capacity.  The other
generators provide the motivating examples (Fig. 1, Fig. 3) and common
shapes used in tests and ablations.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import TopologyError
from repro.net.topology import Datacenter, Link, Topology

PriceFn = Callable[[int, int], float]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def complete_topology(
    num_datacenters: int,
    capacity: float,
    price_low: float = 1.0,
    price_high: float = 10.0,
    seed: Optional[int] = None,
    symmetric_prices: bool = False,
) -> Topology:
    """A complete directed graph with uniform-random per-link prices.

    ``symmetric_prices=True`` makes a_ij == a_ji (useful for ablations;
    the paper draws each direction independently).
    """
    if num_datacenters < 2:
        raise TopologyError("complete topology needs at least 2 datacenters")
    if price_low < 0 or price_high < price_low:
        raise TopologyError("invalid price range")
    rng = _rng(seed)
    datacenters = [Datacenter(i) for i in range(num_datacenters)]
    links = []
    for i in range(num_datacenters):
        for j in range(num_datacenters):
            if i == j:
                continue
            if symmetric_prices and j < i:
                price = next(
                    l.price for l in links if l.src == j and l.dst == i
                )
            else:
                price = float(rng.uniform(price_low, price_high))
            links.append(Link(i, j, price=price, capacity=capacity))
    return Topology(datacenters, links)


def paper_topology(
    capacity: float,
    num_datacenters: int = 20,
    seed: Optional[int] = None,
) -> Topology:
    """The Sec. VII evaluation network: 20 DCs, complete, a ~ U[1, 10].

    ``capacity`` is either 100 (the "sufficient" settings of Figs. 4-5)
    or 30 (the "limited" settings of Figs. 6-7), in GB/slot.
    """
    return complete_topology(
        num_datacenters=num_datacenters,
        capacity=capacity,
        price_low=1.0,
        price_high=10.0,
        seed=seed,
    )


def fig1_topology(capacity: float = float("inf")) -> Topology:
    """The Fig. 1 motivating example: three datacenters.

    Prices: D2->D3 costs 10, D2->D1 costs 1, D1->D3 costs 3 per MB
    (we keep the numbers; the unit is irrelevant).  Links are symmetric
    in price.  Datacenter ids are 1-based to match the figure.
    """
    datacenters = [Datacenter(1), Datacenter(2), Datacenter(3)]
    prices = {(2, 3): 10.0, (3, 2): 10.0, (1, 2): 1.0, (2, 1): 1.0, (1, 3): 3.0, (3, 1): 3.0}
    links = [Link(s, d, price=p, capacity=capacity) for (s, d), p in prices.items()]
    return Topology(datacenters, links)


def fig3_topology(capacity: float = 5.0) -> Topology:
    """The Fig. 3 worked example: four datacenters, capacity 5 per slot.

    The figure's per-link prices are not legible in the paper text, so
    they are reconstructed (symmetric) to make every number quoted in
    the text hold exactly:

    * a_12 = 1, a_14 = 6, a_24 = 11, a_23 = 4, a_34 = 6, a_13 = 4.

    With File 1 = (2 -> 4, F=8, T=4) and File 2 = (1 -> 4, F=10, T=2):

    * naive direct transfer at the desired rates costs
      2*a_24 + 5*a_14 = 52 per slot,
    * the flow-based optimum routes File 2 on {1->4} and File 1 on
      {2->3->4} for 5*a_14 + 2*(a_23 + a_34) = 50 per slot,
    * the Postcard optimum stores File 1 at DC 1 and rides the
      already-paid link {1->4} after File 2 completes, for
      5*a_14 + (8/3)*a_12 = 98/3 = 32.67 per slot.
    """
    datacenters = [Datacenter(i) for i in (1, 2, 3, 4)]
    base = {(1, 2): 1.0, (1, 4): 6.0, (2, 4): 11.0, (2, 3): 4.0, (3, 4): 6.0, (1, 3): 4.0}
    links = []
    for (s, d), p in base.items():
        links.append(Link(s, d, price=p, capacity=capacity))
        links.append(Link(d, s, price=p, capacity=capacity))
    return Topology(datacenters, links)


def line_topology(
    num_datacenters: int,
    capacity: float,
    price: float = 1.0,
    bidirectional: bool = True,
) -> Topology:
    """A path D0 - D1 - ... - Dn-1 with uniform prices."""
    if num_datacenters < 2:
        raise TopologyError("line topology needs at least 2 datacenters")
    datacenters = [Datacenter(i) for i in range(num_datacenters)]
    links = []
    for i in range(num_datacenters - 1):
        links.append(Link(i, i + 1, price=price, capacity=capacity))
        if bidirectional:
            links.append(Link(i + 1, i, price=price, capacity=capacity))
    return Topology(datacenters, links)


def ring_topology(num_datacenters: int, capacity: float, price: float = 1.0) -> Topology:
    """A bidirectional ring with uniform prices."""
    if num_datacenters < 3:
        raise TopologyError("ring topology needs at least 3 datacenters")
    datacenters = [Datacenter(i) for i in range(num_datacenters)]
    links = []
    for i in range(num_datacenters):
        j = (i + 1) % num_datacenters
        links.append(Link(i, j, price=price, capacity=capacity))
        links.append(Link(j, i, price=price, capacity=capacity))
    return Topology(datacenters, links)


def star_topology(
    num_leaves: int,
    capacity: float,
    spoke_price: float = 1.0,
) -> Topology:
    """A hub (id 0) with ``num_leaves`` spokes; all traffic relays via 0."""
    if num_leaves < 2:
        raise TopologyError("star topology needs at least 2 leaves")
    datacenters = [Datacenter(0, name="hub")] + [
        Datacenter(i) for i in range(1, num_leaves + 1)
    ]
    links = []
    for i in range(1, num_leaves + 1):
        links.append(Link(0, i, price=spoke_price, capacity=capacity))
        links.append(Link(i, 0, price=spoke_price, capacity=capacity))
    return Topology(datacenters, links)


def two_region_topology(
    per_region: int,
    capacity: float,
    intra_price: float = 1.0,
    inter_price: float = 8.0,
    seed: Optional[int] = None,
) -> Topology:
    """Two complete regions joined by expensive transcontinental links.

    Mirrors the paper's observation that domestic traffic is much
    cheaper than global traffic: intra-region links cost
    ``intra_price`` per GB, inter-region links ``inter_price``.
    Every ordered pair is connected (the graph stays complete).
    """
    if per_region < 1:
        raise TopologyError("each region needs at least 1 datacenter")
    rng = _rng(seed)
    total = 2 * per_region
    datacenters = [
        Datacenter(i, region="east" if i < per_region else "west") for i in range(total)
    ]
    links = []
    for i in range(total):
        for j in range(total):
            if i == j:
                continue
            same = (i < per_region) == (j < per_region)
            base = intra_price if same else inter_price
            jitter = float(rng.uniform(0.9, 1.1))
            links.append(Link(i, j, price=base * jitter, capacity=capacity))
    return Topology(datacenters, links)


def custom_topology(
    num_datacenters: int,
    price_fn: PriceFn,
    capacity: float,
    pairs: Optional[Sequence] = None,
) -> Topology:
    """Build a topology from an explicit price function.

    ``pairs`` restricts which ordered pairs get a link (default: all).
    """
    datacenters = [Datacenter(i) for i in range(num_datacenters)]
    if pairs is None:
        pairs = [
            (i, j)
            for i in range(num_datacenters)
            for j in range(num_datacenters)
            if i != j
        ]
    links = [Link(s, d, price=float(price_fn(s, d)), capacity=capacity) for s, d in pairs]
    return Topology(datacenters, links)
