"""A realistic global-cloud topology preset.

Eight regions loosely modeled on where the big providers actually put
metal, with per-GB prices derived from a distance- and market-based
formula rather than uniform randomness:

* base price grows with great-circle distance (longer haul, more
  transit providers to pay),
* an intra-continent discount models backbone/peering economics,
* a small deterministic market factor keeps prices asymmetric
  (bandwidth out of some markets costs more than into them).

The formula is synthetic but ordered like published transit pricing:
domestic < transatlantic < transpacific, matching the paper's
observation that "domestic traffic is substantially cheaper than
traffic to global destinations".
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.net.schedule import AvailabilityWindow, LinkSchedule
from repro.net.topology import Datacenter, Link, LinkKey, Topology


@dataclass(frozen=True)
class Region:
    """A named cloud region with coordinates and a market factor."""

    name: str
    continent: str
    lat: float
    lon: float
    #: Egress price multiplier for this market (1.0 = cheap market).
    market_factor: float


#: Eight stylized regions (coordinates approximate).
GLOBAL_REGIONS: List[Region] = [
    Region("us-east", "na", 39.0, -77.5, 1.00),
    Region("us-west", "na", 45.6, -121.2, 1.00),
    Region("eu-west", "eu", 53.3, -6.3, 1.05),
    Region("eu-central", "eu", 50.1, 8.7, 1.05),
    Region("ap-southeast", "ap", 1.35, 103.8, 1.35),
    Region("ap-northeast", "ap", 35.7, 139.7, 1.30),
    Region("sa-east", "sa", -23.5, -46.6, 1.50),
    Region("ap-south", "ap", 19.1, 72.9, 1.25),
]

_EARTH_RADIUS_KM = 6371.0


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two coordinates, in km."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    )
    return 2.0 * _EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def link_price(src: Region, dst: Region) -> float:
    """Synthetic $/GB price of the overlay link src -> dst.

    price = (0.8 + distance/4000km) * market(src), with a 35%
    same-continent discount.  Ranges roughly 0.5 (intra-NA) to 7
    (SA <-> AP), a spread comparable to the paper's U[1, 10].
    """
    distance = haversine_km(src.lat, src.lon, dst.lat, dst.lon)
    base = 0.8 + distance / 4000.0
    if src.continent == dst.continent:
        base *= 0.65
    return round(base * src.market_factor, 4)


def global_cloud_topology(
    capacity: float = 100.0,
    regions: List[Region] = None,
) -> Topology:
    """A complete directed overlay over :data:`GLOBAL_REGIONS`.

    Deterministic (no RNG): suitable for examples and docs where
    reproducible prices matter.
    """
    regions = list(regions) if regions is not None else list(GLOBAL_REGIONS)
    datacenters = [
        Datacenter(i, name=region.name, region=region.continent)
        for i, region in enumerate(regions)
    ]
    links = []
    for i, src in enumerate(regions):
        for j, dst in enumerate(regions):
            if i == j:
                continue
            links.append(Link(i, j, price=link_price(src, dst), capacity=capacity))
    return Topology(datacenters, links)


def price_matrix(regions: List[Region] = None) -> Dict[Tuple[str, str], float]:
    """All pairwise prices by region name (for docs and tests)."""
    regions = list(regions) if regions is not None else list(GLOBAL_REGIONS)
    return {
        (src.name, dst.name): link_price(src, dst)
        for src in regions
        for dst in regions
        if src.name != dst.name
    }


# ---------------------------------------------------------------------------
# Link-schedule presets: time-varying availability over a static overlay.
# ---------------------------------------------------------------------------


def leo_pass_schedule(
    topology: Topology,
    num_slots: int,
    fraction: float = 0.5,
    period: int = 8,
    pass_length: int = 3,
    seed: int = 0,
) -> LinkSchedule:
    """Periodic satellite-pass windows over a random subset of links.

    Models a constellation relaying between ground stations: a seeded
    ``fraction`` of the overlay links ride the constellation and are up
    only while a satellite is overhead — every ``period`` slots for
    ``pass_length`` slots, with a per-link orbital phase offset spread
    deterministically across the period.  The remaining links are
    terrestrial and stay always-on.

    Deterministic for a given (topology, arguments, seed).
    """
    if not 0.0 < fraction <= 1.0:
        raise TopologyError(f"fraction must be in (0, 1], got {fraction}")
    if not 0 < pass_length <= period:
        raise TopologyError(
            f"need 0 < pass_length <= period, got {pass_length} / {period}"
        )
    if num_slots < 1:
        raise TopologyError(f"num_slots must be >= 1, got {num_slots}")
    rng = random.Random(seed)
    keys = sorted((link.src, link.dst) for link in topology.links)
    count = max(1, round(fraction * len(keys)))
    satellite = rng.sample(keys, count)
    schedule = LinkSchedule()
    for rank, (src, dst) in enumerate(sorted(satellite)):
        schedule.schedule_link(src, dst)
        phase = (rank * max(1, period // max(1, count)) + rng.randrange(period)) % period
        for start in range(phase, num_slots, period):
            end = min(start + pass_length, num_slots)
            if end > start:
                schedule.add_window(AvailabilityWindow(src, dst, start, end))
    return schedule


def ground_station_downlink_schedule(
    topology: Topology,
    num_slots: int,
    station_dcs: Sequence[int],
    period: int = 6,
    window_length: int = 2,
) -> LinkSchedule:
    """Appointment-style downlink windows at chosen ground stations.

    Every link touching a DC in ``station_dcs`` (either direction) is
    only reachable during that station's periodic downlink appointment:
    ``window_length`` slots every ``period`` slots, with the stations'
    appointments staggered round-robin so no two stations downlink in
    the same sub-slot pattern.  Links between non-station DCs stay
    always-on.  Deterministic (no RNG).
    """
    if not station_dcs:
        raise TopologyError("need at least one station datacenter")
    if not 0 < window_length <= period:
        raise TopologyError(
            f"need 0 < window_length <= period, got {window_length} / {period}"
        )
    if num_slots < 1:
        raise TopologyError(f"num_slots must be >= 1, got {num_slots}")
    stations = sorted(set(station_dcs))
    known = {dc.id for dc in topology.datacenters}
    missing = [dc for dc in stations if dc not in known]
    if missing:
        raise TopologyError(f"station DCs not in topology: {missing}")
    phase_of = {dc: i * window_length % period for i, dc in enumerate(stations)}
    schedule = LinkSchedule()
    for link in topology.links:
        station = next(
            (dc for dc in stations if dc in (link.src, link.dst)), None
        )
        if station is None:
            continue
        schedule.schedule_link(link.src, link.dst)
        for start in range(phase_of[station], num_slots, period):
            end = min(start + window_length, num_slots)
            if end > start:
                schedule.add_window(
                    AvailabilityWindow(link.src, link.dst, start, end)
                )
    return schedule


def maintenance_schedule(
    topology: Topology,
    num_slots: int,
    outages: Iterable[Tuple[LinkKey, int, int]],
    repeat_every: Optional[int] = None,
) -> LinkSchedule:
    """Planned-maintenance windows: availability is the complement.

    ``outages`` lists ``((src, dst), start_slot, end_slot)`` spans during
    which the named link is *down* for maintenance; the schedule makes
    that link available everywhere else in ``[0, num_slots)``.  With
    ``repeat_every`` the outage pattern recurs (e.g. a nightly patch
    window every 24 slots).  Links without outages stay always-on.
    """
    if num_slots < 1:
        raise TopologyError(f"num_slots must be >= 1, got {num_slots}")
    if repeat_every is not None and repeat_every < 1:
        raise TopologyError(f"repeat_every must be >= 1, got {repeat_every}")
    down: Dict[LinkKey, List[Tuple[int, int]]] = {}
    for (src, dst), start, end in outages:
        if not topology.has_link(src, dst):
            raise TopologyError(f"maintenance on unknown link ({src},{dst})")
        if start < 0 or end <= start:
            raise TopologyError(
                f"maintenance on ({src},{dst}) has empty span [{start}, {end})"
            )
        spans = down.setdefault((src, dst), [])
        if repeat_every is None:
            spans.append((start, end))
        else:
            for base in range(0, num_slots, repeat_every):
                spans.append((base + start, base + end))
    schedule = LinkSchedule()
    for (src, dst), spans in sorted(down.items()):
        schedule.schedule_link(src, dst)
        cursor = 0
        for start, end in sorted(spans):
            if start > cursor:
                schedule.add_window(
                    AvailabilityWindow(src, dst, cursor, min(start, num_slots))
                )
            cursor = max(cursor, end)
            if cursor >= num_slots:
                break
        if cursor < num_slots:
            schedule.add_window(AvailabilityWindow(src, dst, cursor, num_slots))
    return schedule
