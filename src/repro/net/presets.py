"""A realistic global-cloud topology preset.

Eight regions loosely modeled on where the big providers actually put
metal, with per-GB prices derived from a distance- and market-based
formula rather than uniform randomness:

* base price grows with great-circle distance (longer haul, more
  transit providers to pay),
* an intra-continent discount models backbone/peering economics,
* a small deterministic market factor keeps prices asymmetric
  (bandwidth out of some markets costs more than into them).

The formula is synthetic but ordered like published transit pricing:
domestic < transatlantic < transpacific, matching the paper's
observation that "domestic traffic is substantially cheaper than
traffic to global destinations".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.net.topology import Datacenter, Link, Topology


@dataclass(frozen=True)
class Region:
    """A named cloud region with coordinates and a market factor."""

    name: str
    continent: str
    lat: float
    lon: float
    #: Egress price multiplier for this market (1.0 = cheap market).
    market_factor: float


#: Eight stylized regions (coordinates approximate).
GLOBAL_REGIONS: List[Region] = [
    Region("us-east", "na", 39.0, -77.5, 1.00),
    Region("us-west", "na", 45.6, -121.2, 1.00),
    Region("eu-west", "eu", 53.3, -6.3, 1.05),
    Region("eu-central", "eu", 50.1, 8.7, 1.05),
    Region("ap-southeast", "ap", 1.35, 103.8, 1.35),
    Region("ap-northeast", "ap", 35.7, 139.7, 1.30),
    Region("sa-east", "sa", -23.5, -46.6, 1.50),
    Region("ap-south", "ap", 19.1, 72.9, 1.25),
]

_EARTH_RADIUS_KM = 6371.0


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two coordinates, in km."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    )
    return 2.0 * _EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def link_price(src: Region, dst: Region) -> float:
    """Synthetic $/GB price of the overlay link src -> dst.

    price = (0.8 + distance/4000km) * market(src), with a 35%
    same-continent discount.  Ranges roughly 0.5 (intra-NA) to 7
    (SA <-> AP), a spread comparable to the paper's U[1, 10].
    """
    distance = haversine_km(src.lat, src.lon, dst.lat, dst.lon)
    base = 0.8 + distance / 4000.0
    if src.continent == dst.continent:
        base *= 0.65
    return round(base * src.market_factor, 4)


def global_cloud_topology(
    capacity: float = 100.0,
    regions: List[Region] = None,
) -> Topology:
    """A complete directed overlay over :data:`GLOBAL_REGIONS`.

    Deterministic (no RNG): suitable for examples and docs where
    reproducible prices matter.
    """
    regions = list(regions) if regions is not None else list(GLOBAL_REGIONS)
    datacenters = [
        Datacenter(i, name=region.name, region=region.continent)
        for i, region in enumerate(regions)
    ]
    links = []
    for i, src in enumerate(regions):
        for j, dst in enumerate(regions):
            if i == j:
                continue
            links.append(Link(i, j, price=link_price(src, dst), capacity=capacity))
    return Topology(datacenters, links)


def price_matrix(regions: List[Region] = None) -> Dict[Tuple[str, str], float]:
    """All pairwise prices by region name (for docs and tests)."""
    regions = list(regions) if regions is not None else list(GLOBAL_REGIONS)
    return {
        (src.name, dst.name): link_price(src, dst)
        for src in regions
        for dst in regions
        if src.name != dst.name
    }
