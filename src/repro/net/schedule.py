"""Per-link availability windows: time-varying topologies.

Postcard's time-expanded graph prices every ``(link, slot)`` cell
independently, which makes it the natural home for links that only
exist during *scheduled* windows — LEO ground-station passes, periodic
downlink appointments, planned maintenance, data-mule shuttles.  A
:class:`LinkSchedule` overlays the static :class:`~repro.net.topology.
Topology` with per-link **availability windows** (half-open slot
ranges): a link that appears in the schedule carries traffic only
during its windows; outside them its per-slot capacity is zero.  Links
the schedule never mentions stay always-on, so a schedule composes
with any existing topology without rewriting it.

The schedule is consulted at one choke point —
:meth:`NetworkState.residual_capacity <repro.core.state.NetworkState.
residual_capacity>` reports zero on a dark cell — so every scheduler
in the library (LP, flow-based, fast lane, hybrid, baselines)
transparently routes *and time-shifts* around dark windows, commits
fail loudly on any attempt to use one, and the simulation engine's
post-run audit re-checks the ledger against the windows.

Windows are **mutable** (a pass gets extended, an emergency
maintenance lands): every mutation bumps a global :attr:`epoch` and
the affected link's :meth:`link_epoch`, which is what lets the
incremental machinery — :class:`~repro.timeexp.cache.GraphCache` arc
reuse and the fast lane's :class:`~repro.heuristic.paths.
CandidatePathIndex` — invalidate only what actually changed instead of
rebuilding from scratch (see ``scripts/bench_schedule.py``).

Semantics of the half-open window ``[start_slot, end_slot)``: the link
can carry data during slots ``start_slot .. end_slot - 1``; data must
have *left* the link's tail by the window's last slot.  Overlapping or
adjacent windows on one link are merged on insertion, so
:meth:`windows_for` is always sorted and disjoint.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import TopologyError
from repro.net.topology import LinkKey

PathLike = Union[str, Path]

#: One merged availability span, as stored per link: (start, end).
Span = Tuple[int, int]


@dataclass(frozen=True)
class AvailabilityWindow:
    """One link up for slots ``[start_slot, end_slot)``.

    The mirror image of :class:`repro.sim.faults.Outage` (a link *down*
    for a span): schedules whitelist slots, outages blacklist them.
    """

    src: int
    dst: int
    start_slot: int
    end_slot: int

    def __post_init__(self):
        if self.src == self.dst:
            raise TopologyError(
                f"window on self-loop ({self.src},{self.dst})"
            )
        if self.start_slot < 0 or self.end_slot <= self.start_slot:
            raise TopologyError(
                f"window on ({self.src},{self.dst}) has empty span "
                f"[{self.start_slot}, {self.end_slot})"
            )

    @property
    def key(self) -> LinkKey:
        return (self.src, self.dst)

    def covers(self, slot: int) -> bool:
        return self.start_slot <= slot < self.end_slot

    @property
    def slots(self) -> range:
        return range(self.start_slot, self.end_slot)


class LinkSchedule:
    """Availability windows per overlay link, with change epochs.

    A link **not** in the schedule is always up (the static-topology
    default).  A link *in* the schedule is up exactly during its
    windows — including the degenerate "scheduled but windowless" case
    (:meth:`schedule_link` with no windows yet, or every window
    removed), which models a circuit that exists on paper but has no
    booked pass: always dark until a window is added.

    Queries are O(log W) in the link's window count via bisect over
    the merged spans; mutations are O(W) (re-merge one link's list).
    """

    def __init__(self, windows: Iterable[AvailabilityWindow] = ()):
        #: link key -> merged, sorted, disjoint (start, end) spans.
        #: Presence of a key — even with an empty list — means the
        #: link is *scheduled* (dark outside its spans).
        self._spans: Dict[LinkKey, List[Span]] = {}
        #: Monotone counter bumped by every mutation; cache keys
        #: derived from schedule state must include it.
        self.epoch: int = 0
        self._link_epochs: Dict[LinkKey, int] = {}
        for window in windows:
            self.add_window(window)

    # -- mutation ---------------------------------------------------------

    def _touch(self, key: LinkKey) -> None:
        self.epoch += 1
        self._link_epochs[key] = self.epoch

    def schedule_link(self, src: int, dst: int) -> None:
        """Put a link under schedule control (dark until windowed)."""
        key = (src, dst)
        if key not in self._spans:
            self._spans[key] = []
            self._touch(key)

    def add_window(self, window: AvailabilityWindow) -> None:
        """Add one availability span, merging overlaps and adjacency."""
        spans = self._spans.setdefault(window.key, [])
        spans.append((window.start_slot, window.end_slot))
        self._spans[window.key] = _merge(spans)
        self._touch(window.key)

    def set_windows(self, src: int, dst: int, spans: Iterable[Span]) -> None:
        """Replace one link's spans wholesale (schedule-churn path)."""
        merged = _merge(
            [(AvailabilityWindow(src, dst, s, e).start_slot, e) for s, e in spans]
        )
        self._spans[(src, dst)] = merged
        self._touch((src, dst))

    def clear_link(self, src: int, dst: int) -> None:
        """Forget a link entirely — it reverts to always-on."""
        if self._spans.pop((src, dst), None) is not None:
            self._touch((src, dst))

    # -- queries ----------------------------------------------------------

    def is_scheduled(self, src: int, dst: int) -> bool:
        """Is this link under schedule control at all?"""
        return (src, dst) in self._spans

    def is_up(self, src: int, dst: int, slot: int) -> bool:
        """Can the link carry traffic during ``slot``?"""
        spans = self._spans.get((src, dst))
        if spans is None:
            return True
        i = bisect_right(spans, (slot, float("inf")))
        return i > 0 and spans[i - 1][1] > slot

    def up_in_range(self, src: int, dst: int, start: int, end: int) -> bool:
        """Any up-slot inside the half-open range ``[start, end)``?"""
        spans = self._spans.get((src, dst))
        if spans is None:
            return True
        if end <= start:
            return False
        i = bisect_right(spans, (start, float("inf")))
        if i > 0 and spans[i - 1][1] > start:
            return True
        return i < len(spans) and spans[i][0] < end

    def fully_up_in_range(self, src: int, dst: int, start: int, end: int) -> bool:
        """Is the link up throughout the half-open range ``[start, end)``?"""
        spans = self._spans.get((src, dst))
        if spans is None or end <= start:
            return True
        i = bisect_right(spans, (start, float("inf")))
        return i > 0 and spans[i - 1][1] >= end

    def next_up_slot(self, src: int, dst: int, slot: int) -> Optional[int]:
        """The first up-slot at or after ``slot``, or None (never again)."""
        spans = self._spans.get((src, dst))
        if spans is None:
            return slot
        i = bisect_right(spans, (slot, float("inf")))
        if i > 0 and spans[i - 1][1] > slot:
            return slot
        return spans[i][0] if i < len(spans) else None

    def link_epoch(self, src: int, dst: int) -> int:
        """Epoch of the last mutation touching this link (0 = never)."""
        return self._link_epochs.get((src, dst), 0)

    def windows_for(self, src: int, dst: int) -> List[AvailabilityWindow]:
        """The merged windows of one link, sorted (empty if unscheduled)."""
        return [
            AvailabilityWindow(src, dst, s, e)
            for s, e in self._spans.get((src, dst), [])
        ]

    def scheduled_links(self) -> List[LinkKey]:
        """All links under schedule control, sorted."""
        return sorted(self._spans)

    @property
    def num_windows(self) -> int:
        return sum(len(spans) for spans in self._spans.values())

    def __iter__(self) -> Iterator[AvailabilityWindow]:
        for (src, dst) in sorted(self._spans):
            yield from self.windows_for(src, dst)

    def __len__(self) -> int:
        """Number of scheduled links (not windows)."""
        return len(self._spans)

    def coverage(self, num_slots: int) -> float:
        """Mean up-fraction of the scheduled links over ``[0, num_slots)``.

        1.0 means the schedule never darkens anything in the span
        (or nothing is scheduled); 0.0 means scheduled links are dark
        throughout.  Unscheduled links do not dilute the figure.
        """
        if num_slots < 1:
            raise TopologyError(f"num_slots must be >= 1, got {num_slots}")
        if not self._spans:
            return 1.0
        total = 0.0
        for spans in self._spans.values():
            up = sum(
                max(0, min(end, num_slots) - max(start, 0))
                for start, end in spans
            )
            total += up / num_slots
        return total / len(self._spans)

    def describe(self, num_slots: Optional[int] = None) -> str:
        """One human line: links, windows, and optional coverage."""
        text = (
            f"link-schedule: {len(self._spans)} links windowed, "
            f"{self.num_windows} windows"
        )
        if num_slots:
            text += f", coverage {self.coverage(num_slots):.0%} over {num_slots} slots"
        return text

    # -- persistence -------------------------------------------------------

    def to_payload(self) -> dict:
        """A JSON-ready dict (windowless scheduled links included)."""
        return {
            "windows": [
                {
                    "src": w.src,
                    "dst": w.dst,
                    "start_slot": w.start_slot,
                    "end_slot": w.end_slot,
                }
                for w in self
            ],
            "scheduled_links": [
                [src, dst]
                for (src, dst) in self.scheduled_links()
                if not self._spans[(src, dst)]
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LinkSchedule":
        if not isinstance(payload, dict) or "windows" not in payload:
            raise TopologyError(
                "link-schedule payload needs a 'windows' list"
            )
        schedule = cls(
            AvailabilityWindow(
                int(w["src"]), int(w["dst"]),
                int(w["start_slot"]), int(w["end_slot"]),
            )
            for w in payload["windows"]
        )
        for src, dst in payload.get("scheduled_links", []):
            schedule.schedule_link(int(src), int(dst))
        return schedule

    def to_file(self, path: PathLike) -> None:
        Path(path).write_text(json.dumps(self.to_payload(), indent=1) + "\n")

    @classmethod
    def from_file(cls, path: PathLike) -> "LinkSchedule":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise TopologyError(f"cannot load link schedule {path}: {exc}") from exc
        return cls.from_payload(payload)

    def __repr__(self) -> str:
        return (
            f"LinkSchedule(links={len(self._spans)}, "
            f"windows={self.num_windows}, epoch={self.epoch})"
        )


def _merge(spans: List[Span]) -> List[Span]:
    """Sort and merge overlapping or adjacent half-open spans."""
    merged: List[Span] = []
    for start, end in sorted(spans):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged
