"""Datacenters, overlay links, and the Topology container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from repro.errors import TopologyError

NodeId = int
LinkKey = Tuple[NodeId, NodeId]


@dataclass(frozen=True)
class Datacenter:
    """One datacenter (a node of the overlay graph).

    ``region`` is a free-form label used by workload generators (e.g. to
    bias sources toward one continent in the diurnal workload).
    """

    id: NodeId
    name: str = ""
    region: str = ""

    def __post_init__(self):
        if self.id < 0:
            raise TopologyError(f"datacenter id must be non-negative, got {self.id}")
        if not self.name:
            object.__setattr__(self, "name", f"DC{self.id}")


@dataclass(frozen=True)
class Link:
    """A directed overlay link between two datacenters.

    Attributes
    ----------
    src, dst:
        Endpoint datacenter ids (``src != dst``).
    price:
        Cost per traffic unit (the paper's ``a_ij``), in $/GB.
    capacity:
        Volume the link can carry in one time slot (the paper's
        ``c_ij * t_bar``), in GB/slot.  ``float("inf")`` models the
        paper's "sufficiently large" links of the Fig. 1 example.
    """

    src: NodeId
    dst: NodeId
    price: float
    capacity: float

    def __post_init__(self):
        if self.src == self.dst:
            raise TopologyError(f"self-loop link at datacenter {self.src}")
        if self.price < 0:
            raise TopologyError(f"link ({self.src},{self.dst}) has negative price")
        if self.capacity <= 0:
            raise TopologyError(f"link ({self.src},{self.dst}) has non-positive capacity")

    @property
    def key(self) -> LinkKey:
        return (self.src, self.dst)


class Topology:
    """An inter-datacenter overlay network.

    The paper models a complete directed graph, but the container
    supports arbitrary directed topologies so the motivating examples
    (Fig. 1, Fig. 3) and ablations can use sparse graphs.
    """

    def __init__(self, datacenters: Iterable[Datacenter], links: Iterable[Link]):
        self.datacenters: List[Datacenter] = list(datacenters)
        if not self.datacenters:
            raise TopologyError("a topology needs at least one datacenter")
        ids = [dc.id for dc in self.datacenters]
        if len(set(ids)) != len(ids):
            raise TopologyError("duplicate datacenter ids")
        self._by_id: Dict[NodeId, Datacenter] = {dc.id: dc for dc in self.datacenters}

        self.links: List[Link] = []
        self._link_map: Dict[LinkKey, Link] = {}
        self._out: Dict[NodeId, List[Link]] = {dc.id: [] for dc in self.datacenters}
        self._in: Dict[NodeId, List[Link]] = {dc.id: [] for dc in self.datacenters}
        for link in links:
            self.add_link(link)

    # -- construction ---------------------------------------------------

    def add_link(self, link: Link) -> None:
        """Add one directed link; endpoints must exist and be unique."""
        if link.src not in self._by_id or link.dst not in self._by_id:
            raise TopologyError(
                f"link ({link.src},{link.dst}) references unknown datacenter"
            )
        if link.key in self._link_map:
            raise TopologyError(f"duplicate link ({link.src},{link.dst})")
        self.links.append(link)
        self._link_map[link.key] = link
        self._out[link.src].append(link)
        self._in[link.dst].append(link)

    # -- queries -----------------------------------------------------------

    @property
    def num_datacenters(self) -> int:
        return len(self.datacenters)

    @property
    def num_links(self) -> int:
        return len(self.links)

    def datacenter(self, node_id: NodeId) -> Datacenter:
        try:
            return self._by_id[node_id]
        except KeyError:
            raise TopologyError(f"no datacenter with id {node_id}") from None

    def has_link(self, src: NodeId, dst: NodeId) -> bool:
        return (src, dst) in self._link_map

    def link(self, src: NodeId, dst: NodeId) -> Link:
        try:
            return self._link_map[(src, dst)]
        except KeyError:
            raise TopologyError(f"no link ({src},{dst})") from None

    def out_links(self, node_id: NodeId) -> List[Link]:
        """Links leaving ``node_id`` (validates the id)."""
        self.datacenter(node_id)
        return list(self._out[node_id])

    def in_links(self, node_id: NodeId) -> List[Link]:
        """Links entering ``node_id`` (validates the id)."""
        self.datacenter(node_id)
        return list(self._in[node_id])

    def node_ids(self) -> List[NodeId]:
        return [dc.id for dc in self.datacenters]

    def __iter__(self) -> Iterator[Link]:
        return iter(self.links)

    def __contains__(self, key: LinkKey) -> bool:
        return key in self._link_map

    # -- derived views -------------------------------------------------------

    def is_complete(self) -> bool:
        """True when every ordered datacenter pair has a link."""
        n = self.num_datacenters
        return self.num_links == n * (n - 1)

    def is_strongly_connected(self) -> bool:
        """True when every datacenter can reach every other one."""
        if self.num_datacenters == 1:
            return True
        return nx.is_strongly_connected(self.to_networkx())

    def to_networkx(self) -> "nx.DiGraph":
        """Export as a networkx DiGraph with price/capacity attributes."""
        graph = nx.DiGraph()
        for dc in self.datacenters:
            graph.add_node(dc.id, name=dc.name, region=dc.region)
        for link in self.links:
            graph.add_edge(link.src, link.dst, price=link.price, capacity=link.capacity)
        return graph

    def cheapest_path_price(self, src: NodeId, dst: NodeId) -> Optional[float]:
        """Total per-GB price of the cheapest src→dst path, or None.

        Useful as a lower bound: no strategy can move a gigabyte from
        ``src`` to ``dst`` for less than this (storage is free).
        """
        self.datacenter(src)
        self.datacenter(dst)
        graph = self.to_networkx()
        try:
            return float(nx.shortest_path_length(graph, src, dst, weight="price"))
        except nx.NetworkXNoPath:
            return None

    def __repr__(self) -> str:
        return f"Topology(datacenters={self.num_datacenters}, links={self.num_links})"
