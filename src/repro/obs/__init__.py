"""Observability: tracing spans, counters/gauges, and run reports.

This package is the measurement substrate for the whole stack.  The
scheduler, LP layer, time-expanded graph builder and simulation engine
are permanently instrumented with hierarchical timing *spans* and
*counters*; with no sink attached the instrumentation is near-free, so
it costs nothing in production paths and lights up on demand:

>>> from repro import obs
>>> with obs.collecting() as collector:
...     _ = run_some_workload()          # doctest: +SKIP
>>> print(obs.render_report(collector))  # doctest: +SKIP

Three sinks ship with the library: :class:`Collector` (in-memory
aggregation), :class:`JsonlSink` (one JSON event per line, the
machine-readable artifact), and the plain-text renderer
:func:`render_report`.  The CLI exposes the same machinery as
``python -m repro simulate --profile`` / ``--obs-jsonl PATH`` and
``python -m repro report events.jsonl``.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import Histogram, MetricsSnapshot, rollup_snapshots
from repro.obs.prom import render_prometheus, validate_prometheus
from repro.obs.registry import (
    Registry,
    Span,
    counter,
    gauge,
    get_registry,
    set_registry,
    span,
    timed_span,
    trace,
)
from repro.obs.report import render_events_report, render_report
from repro.obs.sinks import (
    Collector,
    CounterStat,
    GaugeStat,
    JsonlSink,
    SpanStat,
    load_events,
)
from repro.obs.slo import SloMonitor, SloThresholds

__all__ = [
    "Registry",
    "Span",
    "get_registry",
    "set_registry",
    "span",
    "timed_span",
    "counter",
    "gauge",
    "trace",
    "Collector",
    "SpanStat",
    "CounterStat",
    "GaugeStat",
    "JsonlSink",
    "Histogram",
    "MetricsSnapshot",
    "SloMonitor",
    "SloThresholds",
    "load_events",
    "render_prometheus",
    "validate_prometheus",
    "render_report",
    "render_events_report",
    "rollup_snapshots",
    "collecting",
]


@contextmanager
def collecting(
    registry: Optional[Registry] = None, keep_events: bool = False
) -> Iterator[Collector]:
    """Attach a fresh :class:`Collector` for the duration of a block.

    >>> from repro import obs
    >>> with obs.collecting() as c:
    ...     with obs.span("stage"):
    ...         pass
    >>> c.spans["stage"].count
    1
    """
    registry = registry or get_registry()
    collector = Collector(keep_events=keep_events)
    registry.add_sink(collector)
    try:
        yield collector
    finally:
        registry.remove_sink(collector)
