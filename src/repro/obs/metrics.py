"""Streaming metrics: fixed-bucket histograms and a live snapshot sink.

Everything in :mod:`repro.obs.sinks` is batch-oriented — a
:class:`~repro.obs.sinks.Collector` is read *after* a run, a
:class:`~repro.obs.sinks.JsonlSink` is rendered after the file closes.
A live daemon needs the opposite: current-value state that can be
queried at any instant without stopping the run.  Two pieces provide
it:

* :class:`Histogram` — fixed log-spaced buckets sized for latencies
  (microseconds to minutes), mergeable across instances with identical
  bounds, with p50/p90/p99 estimation by rank interpolation inside the
  bucket.  O(#buckets) memory however many values are observed.
* :class:`MetricsSnapshot` — a sink that *folds* events into state:
  counter sums, gauge last/min/max, and a histogram per span name
  (span durations) and per seconds-valued gauge.  :meth:`snapshot`
  returns a JSON-safe view of everything at that instant and never
  mutates the fold, so repeated queries are idempotent.

The daemon attaches a :class:`MetricsSnapshot` to the default registry
and serves :meth:`snapshot` through the ``metrics`` protocol op;
:mod:`repro.obs.prom` renders the same dict as Prometheus text.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ObservabilityError


def _log_bounds(lo: float, hi: float, per_decade: int) -> List[float]:
    """Log-spaced bucket upper bounds covering ``[lo, hi]``."""
    count = int(math.ceil(per_decade * math.log10(hi / lo))) + 1
    ratio = 10.0 ** (1.0 / per_decade)
    return [lo * ratio**i for i in range(count)]


#: Default latency bounds: 10 µs .. ~178 s, 4 buckets per decade
#: (ratio ~1.78x, so a quantile estimate is within one bucket ratio of
#: the true value).
DEFAULT_LATENCY_BOUNDS = _log_bounds(1e-5, 200.0, 4)


class Histogram:
    """Fixed-bucket histogram with quantile estimation.

    ``bounds`` are the inclusive upper edges of the finite buckets, in
    strictly increasing order; one implicit overflow bucket catches
    everything above the last bound.  Exact ``count``/``sum``/``min``/
    ``max`` are tracked alongside, so means are exact and quantile
    estimates are clamped into the observed range.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Optional[Sequence[float]] = None):
        self.bounds: List[float] = list(
            DEFAULT_LATENCY_BOUNDS if bounds is None else bounds
        )
        if not self.bounds or any(
            b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])
        ):
            raise ObservabilityError(
                "histogram bounds must be non-empty and strictly increasing"
            )
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording -------------------------------------------------------

    def observe(self, value: float) -> None:
        """Fold one sample in (negative values clamp into bucket 0)."""
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.counts[self._bucket_index(value)] += 1

    def _bucket_index(self, value: float) -> int:
        bounds = self.bounds
        lo, hi = 0, len(bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram's buckets in; bounds must match."""
        if other.bounds != self.bounds:
            raise ObservabilityError(
                "cannot merge histograms with different bucket bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} buckets)"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    # -- queries ---------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` quantile (``q`` in [0, 1]).

        The estimate interpolates the rank linearly inside the bucket
        holding it, so the error is bounded by one bucket's width (one
        ratio step for the default log bounds), and is clamped into the
        exact observed ``[min, max]`` range.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                lower = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                fraction = (rank - seen) / bucket_count
                estimate = lower + (upper - lower) * max(0.0, min(1.0, fraction))
                return max(self.min, min(self.max, estimate))
            seen += bucket_count
        return self.max

    def percentiles(self) -> Dict[str, float]:
        """The standard reporting set: p50/p90/p99 plus mean/min/max."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    # -- (de)serialization ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe encoding (sparse: only non-empty buckets)."""
        return {
            "bounds": self.bounds,
            "buckets": {
                str(i): c for i, c in enumerate(self.counts) if c
            },
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Histogram":
        hist = cls(payload["bounds"])
        for index, count in payload.get("buckets", {}).items():
            hist.counts[int(index)] = int(count)
        hist.count = int(payload.get("count", 0))
        hist.sum = float(payload.get("sum", 0.0))
        if hist.count:
            hist.min = float(payload["min"])
            hist.max = float(payload["max"])
        return hist

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, mean={self.mean:.6f})"


class MetricsSnapshot:
    """A sink folding events into queryable current-value state.

    * counters -> running sums (plus increment counts);
    * gauges -> last/min/max/count, and a :class:`Histogram` as well
      when the gauge name ends in ``_s`` (a seconds-valued sample —
      e.g. per-request ``service.decision_s``);
    * spans -> a :class:`Histogram` of durations per span name, plus
      an error tally.

    :meth:`snapshot` is a pure read — calling it twice without new
    events returns equal dicts (snapshot idempotence), and it never
    resets the fold.
    """

    def __init__(self, histogram_bounds: Optional[Sequence[float]] = None):
        self._bounds = list(
            DEFAULT_LATENCY_BOUNDS if histogram_bounds is None else histogram_bounds
        )
        self.counters: Dict[str, Dict[str, float]] = {}
        self.gauges: Dict[str, Dict[str, float]] = {}
        self.span_histograms: Dict[str, Histogram] = {}
        self.span_errors: Dict[str, int] = {}
        self.gauge_histograms: Dict[str, Histogram] = {}
        self.num_events = 0

    # -- the sink interface ----------------------------------------------

    def emit(self, event: Dict[str, Any]) -> None:
        self.num_events += 1
        kind = event.get("type")
        name = event.get("name", "?")
        if kind == "span":
            hist = self.span_histograms.get(name)
            if hist is None:
                hist = self.span_histograms[name] = Histogram(self._bounds)
            hist.observe(float(event.get("dur", 0.0)))
            if event.get("error"):
                self.span_errors[name] = self.span_errors.get(name, 0) + 1
        elif kind == "counter":
            value = float(event.get("value", 0.0))
            stat = self.counters.get(name)
            if stat is None:
                stat = self.counters[name] = {"total": 0.0, "count": 0}
            stat["total"] += value
            stat["count"] += 1
        elif kind == "gauge":
            value = float(event.get("value", 0.0))
            stat = self.gauges.get(name)
            if stat is None:
                stat = self.gauges[name] = {
                    "last": value, "min": value, "max": value, "count": 0,
                }
            stat["last"] = value
            stat["min"] = min(stat["min"], value)
            stat["max"] = max(stat["max"], value)
            stat["count"] += 1
            if name.endswith("_s"):
                hist = self.gauge_histograms.get(name)
                if hist is None:
                    hist = self.gauge_histograms[name] = Histogram(self._bounds)
                hist.observe(value)
        elif kind == "hist":
            # Explicit distribution samples (e.g. forecast errors):
            # folded like the seconds-valued gauges, whatever the unit.
            value = float(event.get("value", 0.0))
            hist = self.gauge_histograms.get(name)
            if hist is None:
                hist = self.gauge_histograms[name] = Histogram(self._bounds)
            hist.observe(value)

    # -- queries ---------------------------------------------------------

    def counter_total(self, name: str) -> float:
        stat = self.counters.get(name)
        return stat["total"] if stat else 0.0

    def gauge_last(self, name: str) -> Optional[float]:
        stat = self.gauges.get(name)
        return stat["last"] if stat else None

    def histogram(self, name: str) -> Optional[Histogram]:
        """The histogram under ``name`` (span first, then gauge)."""
        return self.span_histograms.get(name) or self.gauge_histograms.get(name)

    def snapshot(self) -> Dict[str, Any]:
        """Everything folded so far, as one JSON-safe dict.

        Shape (also the ``metrics`` op's ``snapshot`` body)::

            {"events": N,
             "counters": {name: {"total", "count"}},
             "gauges": {name: {"last", "min", "max", "count"}},
             "histograms": {name: {"kind", "count", "mean", "min",
                                   "max", "p50", "p90", "p99",
                                   "errors"?}}}
        """
        histograms: Dict[str, Any] = {}
        for name, hist in self.span_histograms.items():
            entry = dict(hist.percentiles())
            entry["kind"] = "span"
            errors = self.span_errors.get(name, 0)
            if errors:
                entry["errors"] = errors
            histograms[name] = entry
        for name, hist in self.gauge_histograms.items():
            entry = dict(hist.percentiles())
            entry["kind"] = "gauge"
            histograms[name] = entry
        return {
            "events": self.num_events,
            "counters": {
                name: dict(stat) for name, stat in sorted(self.counters.items())
            },
            "gauges": {
                name: dict(stat) for name, stat in sorted(self.gauges.items())
            },
            "histograms": dict(sorted(histograms.items())),
        }

    def __repr__(self) -> str:
        return (
            f"MetricsSnapshot(events={self.num_events}, "
            f"counters={len(self.counters)}, gauges={len(self.gauges)}, "
            f"histograms={len(self.span_histograms) + len(self.gauge_histograms)})"
        )


def rollup_snapshots(
    snapshots: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """Fold per-shard :meth:`MetricsSnapshot.snapshot` dicts into one.

    The fleet view over whatever each shard's ``metrics`` op returned:

    * counters add (totals and increment counts);
    * gauges: ``last`` adds (the meaningful fleet read for additive
      gauges like queue depth and active connections; read
      ratio-valued gauges per shard), ``min``/``max`` take the
      fleet-wide extremes, counts add;
    * histograms: counts add and the mean is volume-weighted, but the
      per-shard snapshots carry *rendered* percentiles, not buckets —
      so each rolled-up pXX is the **worst shard's** pXX.  That is the
      conservative read a fleet SLO wants: "every shard's p99 under
      budget" gates on exactly this number.

    ``shards`` lists the inputs so a rollup is self-describing.
    """
    rolled: Dict[str, Any] = {
        "shards": sorted(snapshots),
        "events": 0,
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    for name in sorted(snapshots):
        snap = snapshots[name] or {}
        rolled["events"] += int(snap.get("events", 0))
        for cname, stat in snap.get("counters", {}).items():
            agg = rolled["counters"].setdefault(
                cname, {"total": 0.0, "count": 0}
            )
            agg["total"] += float(stat.get("total", 0.0))
            agg["count"] += int(stat.get("count", 0))
        for gname, stat in snap.get("gauges", {}).items():
            agg = rolled["gauges"].get(gname)
            if agg is None:
                rolled["gauges"][gname] = {
                    "last": float(stat.get("last", 0.0)),
                    "min": float(stat.get("min", 0.0)),
                    "max": float(stat.get("max", 0.0)),
                    "count": int(stat.get("count", 0)),
                }
            else:
                agg["last"] += float(stat.get("last", 0.0))
                agg["min"] = min(agg["min"], float(stat.get("min", 0.0)))
                agg["max"] = max(agg["max"], float(stat.get("max", 0.0)))
                agg["count"] += int(stat.get("count", 0))
        for hname, stat in snap.get("histograms", {}).items():
            count = int(stat.get("count", 0))
            agg = rolled["histograms"].get(hname)
            if agg is None:
                rolled["histograms"][hname] = dict(stat)
                continue
            prior = int(agg.get("count", 0))
            total = prior + count
            if total > 0:
                agg["mean"] = (
                    agg.get("mean", 0.0) * prior + stat.get("mean", 0.0) * count
                ) / total
            agg["count"] = total
            agg["min"] = min(agg.get("min", 0.0), stat.get("min", 0.0))
            agg["max"] = max(agg.get("max", 0.0), stat.get("max", 0.0))
            for pct in ("p50", "p90", "p99"):
                agg[pct] = max(agg.get(pct, 0.0), stat.get(pct, 0.0))
            if stat.get("errors"):
                agg["errors"] = agg.get("errors", 0) + int(stat["errors"])
    return rolled
