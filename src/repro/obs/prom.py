"""Prometheus text exposition for a :class:`MetricsSnapshot` snapshot.

:func:`render_prometheus` turns the ``metrics`` op's snapshot dict into
the Prometheus text format (version 0.0.4): counters as ``*_total``,
gauges verbatim, histograms as cumulative ``_bucket{le=...}`` series
with ``_sum``/``_count``.  Metric names are derived from event names by
replacing every non-alphanumeric character with ``_`` and prefixing
``postcard_``, so ``service.decision_s`` becomes
``postcard_service_decision_s``.

:func:`validate_prometheus` is the lint the CI smoke job runs against a
live scrape: every line must parse, every samples run must sit under
exactly one ``# TYPE`` header, and no metric family may be declared
twice — the classic exposition bugs (duplicate families, interleaved
samples, NaN-by-string) fail loudly instead of poisoning a scrape.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List

from repro.errors import ObservabilityError

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[^ ]+)$"
)

PREFIX = "postcard_"


def metric_name(event_name: str) -> str:
    """``service.decision_s`` -> ``postcard_service_decision_s``."""
    return PREFIX + _NAME_RE.sub("_", event_name)


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """One scrape body for a :meth:`MetricsSnapshot.snapshot` dict.

    Histogram entries carry only the estimated percentiles in the
    snapshot (the full bucket vector stays internal), so they are
    exposed as ``summary`` families with ``quantile`` labels plus
    ``_sum``-free ``_count`` — the shape Prometheus expects for
    client-side quantiles.
    """
    lines: List[str] = []
    seen: set = set()

    def family(name: str, kind: str) -> str:
        if name in seen:
            raise ObservabilityError(f"duplicate metric family {name}")
        seen.add(name)
        lines.append(f"# TYPE {name} {kind}")
        return name

    for event_name, stat in snapshot.get("counters", {}).items():
        name = family(metric_name(event_name) + "_total", "counter")
        lines.append(f"{name} {_fmt(stat['total'])}")
    slo = snapshot.get("slo", {})
    for event_name, stat in snapshot.get("gauges", {}).items():
        if slo and event_name.startswith("slo."):
            # The evaluated SLO section below is authoritative; the
            # folded slo.* gauge mirrors would duplicate its families.
            continue
        name = family(metric_name(event_name), "gauge")
        lines.append(f"{name} {_fmt(stat['last'])}")
    for event_name, stat in snapshot.get("histograms", {}).items():
        if not stat.get("count"):
            continue
        name = family(metric_name(event_name) + "_summary", "summary")
        for quantile, key in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99")):
            lines.append(
                f'{name}{{quantile="{quantile}"}} {_fmt(stat[key])}'
            )
        lines.append(f"{name}_sum {_fmt(stat['mean'] * stat['count'])}")
        lines.append(f"{name}_count {_fmt(stat['count'])}")
    for slo_name, state in slo.items():
        name = family(metric_name("slo." + slo_name), "gauge")
        lines.append(f"{name} {_fmt(state['value'])}")
        ok_name = family(metric_name("slo." + slo_name) + "_ok", "gauge")
        lines.append(f"{ok_name} {_fmt(1.0 if state['ok'] else 0.0)}")
    if slo:
        name = family(metric_name("slo.ok"), "gauge")
        all_ok = all(state["ok"] for state in slo.values())
        lines.append(f"{name} {_fmt(1.0 if all_ok else 0.0)}")
    return "\n".join(lines) + "\n"


def validate_prometheus(text: str) -> int:
    """Lint an exposition body; returns the number of sample lines.

    Raises :class:`~repro.errors.ObservabilityError` on: an unparseable
    line, a sample with no preceding ``# TYPE`` for its family, a
    family declared twice, or a non-numeric value.
    """
    declared: Dict[str, str] = {}
    samples = 0
    current_family = None
    for line_number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ObservabilityError(
                    f"line {line_number}: malformed TYPE header: {line!r}"
                )
            name = parts[2]
            if name in declared:
                raise ObservabilityError(
                    f"line {line_number}: duplicate metric family {name}"
                )
            declared[name] = parts[3]
            current_family = name
            continue
        if line.startswith("#"):
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise ObservabilityError(
                f"line {line_number}: unparseable sample: {line!r}"
            )
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                base = name[: -len(suffix)]
                break
        if base not in declared:
            raise ObservabilityError(
                f"line {line_number}: sample {name} has no TYPE header"
            )
        if current_family != base:
            raise ObservabilityError(
                f"line {line_number}: sample {name} interleaved outside "
                f"its family block ({base} vs {current_family})"
            )
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError as exc:
                raise ObservabilityError(
                    f"line {line_number}: non-numeric value {value!r}"
                ) from exc
        samples += 1
    if samples == 0:
        raise ObservabilityError("exposition contains no samples")
    return samples
