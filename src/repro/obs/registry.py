"""The instrumentation registry: spans, counters, gauges, and sinks.

A :class:`Registry` is a fan-out point: instrumented code emits
*events* (span completions, counter increments, gauge samples) and the
registry forwards each event to every attached sink.  With no sink
attached the fast paths collapse to a single attribute check — a
cached no-op span object is returned and counters return immediately —
so instrumentation can stay permanently compiled into the hot path.

Spans nest: the registry keeps an explicit stack, and every completed
span records its depth and its parent's name, which is what lets a
collector attribute child time to parents ("self time").  The stack is
maintained in ``__exit__``, so spans unwind correctly through
exceptions.

Everything here is stdlib-only by design; sinks that need heavier
machinery live in :mod:`repro.obs.sinks`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class _NullSpan:
    """The no-op span handed out when no sink is listening.

    A single cached instance is reused for every disabled ``span()``
    call, so the disabled path allocates nothing.
    """

    __slots__ = ()

    #: Disabled spans measure nothing.
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """A live timing span; use via ``with registry.span(name):``.

    After ``__exit__`` the wall-clock duration is available as
    :attr:`seconds`, whether or not any sink received the event (the
    simulation engine relies on this to fill ``SlotRecord`` timings
    even in un-instrumented runs).
    """

    __slots__ = ("_registry", "_emit", "name", "attrs", "seconds", "_start",
                 "depth", "parent")

    def __init__(self, registry: "Registry", name: str,
                 attrs: Dict[str, Any], emit: bool):
        self._registry = registry
        self._emit = emit
        self.name = name
        self.attrs = attrs
        self.seconds = 0.0
        self.depth = 0
        self.parent: Optional[str] = None

    def __enter__(self) -> "Span":
        stack = self._registry._stack
        self.depth = len(stack)
        self.parent = stack[-1].name if stack else None
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._start
        stack = self._registry._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # defensive: mismatched nesting
            stack.remove(self)
        if self._emit or self._registry._sinks:
            event = {
                "type": "span",
                "name": self.name,
                "dur": self.seconds,
                "depth": self.depth,
                "parent": self.parent,
                "error": exc_type is not None,
            }
            if self.attrs:
                event["attrs"] = self.attrs
            self._registry._dispatch(event)
        return False


class Registry:
    """Routes instrumentation events to attached sinks.

    Sinks are any objects with an ``emit(event: dict)`` method; see
    :mod:`repro.obs.sinks` for the provided ones.  A registry with no
    sinks is effectively free to call into.
    """

    def __init__(self) -> None:
        self._sinks: List[Any] = []
        self._stack: List[Span] = []
        #: Ambient attributes merged into every dispatched event (the
        #: trace-propagation mechanism; see :meth:`trace`).
        self._context: List[Dict[str, Any]] = []

    # -- sink management -------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when at least one sink is attached."""
        return bool(self._sinks)

    def add_sink(self, sink: Any) -> Any:
        """Attach a sink; returns it for chaining."""
        if not hasattr(sink, "emit"):
            raise TypeError(
                f"sink {type(sink).__name__} has no emit(event) method"
            )
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Any) -> None:
        """Detach a sink; missing sinks are ignored."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def _dispatch(self, event: Dict[str, Any]) -> None:
        if self._context:
            merged: Dict[str, Any] = {}
            for frame in self._context:
                merged.update(frame)
            merged.update(event.get("attrs", ()))
            event["attrs"] = merged
        for sink in self._sinks:
            sink.emit(event)

    @contextmanager
    def trace(self, **attrs: Any) -> Iterator[None]:
        """Attach ambient attrs to every event emitted in the block.

        This is how a trace id crosses layers that know nothing about
        it: the slot loop opens ``trace(trace_ids=[...])`` around the
        scheduler call, and the hybrid lane choice, LP solve, and
        ledger-charge events deep inside all carry the ids without any
        plumbing through their signatures.  Frames nest; inner frames
        win on key collisions, and an event's own attrs win over every
        frame.  With no sink attached the cost is one list append/pop.
        """
        self._context.append(attrs)
        try:
            yield
        finally:
            self._context.pop()

    # -- instrumentation primitives -------------------------------------

    def span(self, name: str, **attrs: Any) -> Any:
        """A context manager timing a named stage.

        Returns the cached no-op span when no sink is attached, so the
        disabled cost is one list truthiness check.
        """
        if not self._sinks:
            return _NULL_SPAN
        return Span(self, name, attrs, emit=True)

    def timed_span(self, name: str, **attrs: Any) -> Span:
        """Like :meth:`span`, but always measures wall time.

        The returned span's :attr:`Span.seconds` is valid after the
        ``with`` block even with no sink attached (the event is then
        simply not emitted).  Use where the caller needs the number
        itself, e.g. the simulation engine's per-slot records.
        """
        return Span(self, name, attrs, emit=False)

    def counter(self, name: str, value: float = 1.0, **attrs: Any) -> None:
        """Add ``value`` to the named counter (monotonic increments)."""
        if not self._sinks:
            return
        event: Dict[str, Any] = {"type": "counter", "name": name,
                                 "value": value}
        if attrs:
            event["attrs"] = attrs
        self._dispatch(event)

    def gauge(self, name: str, value: float, **attrs: Any) -> None:
        """Record a point-in-time sample of the named gauge."""
        if not self._sinks:
            return
        event: Dict[str, Any] = {"type": "gauge", "name": name,
                                 "value": value}
        if attrs:
            event["attrs"] = attrs
        self._dispatch(event)

    def histogram(self, name: str, value: float, **attrs: Any) -> None:
        """Record a distribution sample of the named histogram.

        Gauges report *state* (last/min/max); histogram samples report
        a *distribution* — :class:`~repro.obs.metrics.MetricsSnapshot`
        folds them into percentile estimates regardless of the unit
        (forecast errors in GB, not just latencies in seconds)."""
        if not self._sinks:
            return
        event: Dict[str, Any] = {"type": "hist", "name": name,
                                 "value": value}
        if attrs:
            event["attrs"] = attrs
        self._dispatch(event)


#: The process-wide default registry all library instrumentation uses.
_default_registry = Registry()


def get_registry() -> Registry:
    """The global default registry (what the module-level helpers use)."""
    return _default_registry


def set_registry(registry: Registry) -> Registry:
    """Swap the global default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def span(name: str, **attrs: Any) -> Any:
    """``with span("lp.solve", backend="highs"):`` on the default registry."""
    return _default_registry.span(name, **attrs)


def timed_span(name: str, **attrs: Any) -> Span:
    """Always-timing span on the default registry (see
    :meth:`Registry.timed_span`)."""
    return _default_registry.timed_span(name, **attrs)


def counter(name: str, value: float = 1.0, **attrs: Any) -> None:
    """Increment a counter on the default registry."""
    _default_registry.counter(name, value, **attrs)


def trace(**attrs: Any) -> Any:
    """Ambient-attr context on the default registry (see
    :meth:`Registry.trace`)."""
    return _default_registry.trace(**attrs)


def gauge(name: str, value: float, **attrs: Any) -> None:
    """Sample a gauge on the default registry."""
    _default_registry.gauge(name, value, **attrs)


def histogram(name: str, value: float, **attrs: Any) -> None:
    """Record a histogram sample on the default registry."""
    _default_registry.histogram(name, value, **attrs)
