"""Render collected instrumentation into plain-text run reports.

The report is three :func:`~repro.analysis.tables.format_table`
sections — spans (sorted by total time, with self-time so nested
stages don't double-read), counters, and gauges — the same aligned
monospace style every other CLI surface in this repository uses.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analysis.tables import format_table
from repro.obs.sinks import Collector


def render_report(collector: Collector, title: str = "run report") -> str:
    """The ``--profile`` / ``repro report`` text for one collector."""
    sections: List[str] = [f"== {title} =="]

    if collector.spans:
        rows = []
        ordered = sorted(
            collector.spans.items(), key=lambda kv: kv[1].total, reverse=True
        )
        grand_total = sum(s.self_seconds for _, s in ordered)
        for name, stat in ordered:
            share = stat.self_seconds / grand_total if grand_total > 0 else 0.0
            rows.append(
                [
                    name,
                    stat.count,
                    f"{stat.total:.4f}",
                    f"{stat.self_seconds:.4f}",
                    f"{stat.mean * 1e3:.2f}",
                    f"{share:.1%}",
                    stat.errors,
                ]
            )
        sections.append(
            "spans:\n"
            + format_table(
                ["span", "count", "total s", "self s", "mean ms", "self %", "err"],
                rows,
            )
        )

    if collector.counters:
        rows = [
            [name, stat.count, _fmt_value(stat.total), _fmt_value(stat.max)]
            for name, stat in sorted(collector.counters.items())
        ]
        sections.append(
            "counters:\n"
            + format_table(["counter", "samples", "total", "max"], rows)
        )

    if collector.gauges:
        rows = [
            [name, stat.count, _fmt_value(stat.last),
             _fmt_value(stat.min), _fmt_value(stat.max)]
            for name, stat in sorted(collector.gauges.items())
        ]
        sections.append(
            "gauges:\n"
            + format_table(["gauge", "samples", "last", "min", "max"], rows)
        )

    if len(sections) == 1:
        sections.append("(no events recorded)")
    return "\n\n".join(sections)


def render_events_report(events: Iterable[dict], title: str = "run report") -> str:
    """Aggregate raw events (e.g. from :func:`load_events`) and render."""
    return render_report(Collector().replay(events), title=title)


def _fmt_value(value: float) -> str:
    if value in (float("inf"), float("-inf")):
        return "-"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.3f}"
