"""Event sinks: in-memory aggregation and JSONL streaming.

A sink is any object with ``emit(event: dict)``.  Two are provided:

* :class:`Collector` aggregates in memory — per-span-name timing
  statistics (count/total/min/max plus child time for self-time
  attribution), counter sums, and gauge summaries.  This is what the
  ``--profile`` flag and the benchmark harness attach.
* :class:`JsonlSink` appends one JSON object per event to a file, the
  machine-readable artifact behind ``--obs-jsonl`` and
  ``python -m repro report``.

:func:`load_events` reads a JSONL event file back, validating shape so
a truncated or hand-mangled file fails loudly instead of rendering an
empty report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from repro.errors import ObservabilityError

PathLike = Union[str, Path]

_EVENT_TYPES = ("span", "counter", "gauge", "hist")


@dataclass
class SpanStat:
    """Aggregated timings for one span name."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0
    #: Seconds spent inside direct child spans (for self-time).
    child_seconds: float = 0.0
    #: How many completions unwound through an exception.
    errors: int = 0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def self_seconds(self) -> float:
        """Time not attributed to any direct child span."""
        return max(0.0, self.total - self.child_seconds)


@dataclass
class CounterStat:
    """Aggregated increments for one counter name."""

    count: int = 0
    total: float = 0.0
    max: float = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value


@dataclass
class GaugeStat:
    """Summary of one gauge's samples (last value wins for reporting)."""

    count: int = 0
    last: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.last = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value


class Collector:
    """In-memory aggregating sink.

    ``keep_events=True`` additionally retains the raw event dicts (for
    round-trip tests and ad-hoc inspection); aggregation alone is the
    default so long runs stay O(#names), not O(#events).
    """

    def __init__(self, keep_events: bool = False):
        self.spans: Dict[str, SpanStat] = {}
        self.counters: Dict[str, CounterStat] = {}
        self.gauges: Dict[str, GaugeStat] = {}
        self.events: List[dict] = []
        self.num_events = 0
        self._keep_events = keep_events

    def emit(self, event: Dict[str, Any]) -> None:
        self.num_events += 1
        if self._keep_events:
            self.events.append(event)
        kind = event.get("type")
        name = event.get("name", "?")
        if kind == "span":
            stat = self.spans.get(name)
            if stat is None:
                stat = self.spans[name] = SpanStat()
            dur = float(event.get("dur", 0.0))
            stat.count += 1
            stat.total += dur
            if dur < stat.min:
                stat.min = dur
            if dur > stat.max:
                stat.max = dur
            if event.get("error"):
                stat.errors += 1
            parent = event.get("parent")
            if parent is not None:
                pstat = self.spans.get(parent)
                if pstat is None:
                    pstat = self.spans[parent] = SpanStat()
                pstat.child_seconds += dur
        elif kind == "counter":
            stat = self.counters.get(name)
            if stat is None:
                stat = self.counters[name] = CounterStat()
            stat.add(float(event.get("value", 0.0)))
        elif kind == "gauge" or kind == "hist":
            # The batch collector has no bucketed view; histogram
            # samples fold into the same last/min/max aggregate.
            stat = self.gauges.get(name)
            if stat is None:
                stat = self.gauges[name] = GaugeStat()
            stat.add(float(event.get("value", 0.0)))

    def counter_total(self, name: str) -> float:
        """Sum of all increments to ``name`` (0.0 if never incremented)."""
        stat = self.counters.get(name)
        return stat.total if stat else 0.0

    def span_seconds(self, name: str) -> float:
        """Total wall seconds recorded under span ``name``."""
        stat = self.spans.get(name)
        return stat.total if stat else 0.0

    def replay(self, events: Iterable[dict]) -> "Collector":
        """Feed previously captured events through the aggregator."""
        for event in events:
            self.emit(event)
        return self

    def __repr__(self) -> str:
        return (
            f"Collector(events={self.num_events}, spans={len(self.spans)}, "
            f"counters={len(self.counters)}, gauges={len(self.gauges)})"
        )


class JsonlSink:
    """Streams every event as one JSON line to ``path``.

    The file is truncated on open (a run's event log, not an append
    journal).  Use as a context manager or call :meth:`close`.
    """

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self._fh = open(self.path, "w")
        self.num_events = 0

    def emit(self, event: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(event, default=str))
        self._fh.write("\n")
        self.num_events += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def load_events(path: PathLike) -> List[dict]:
    """Parse an event JSONL file written by :class:`JsonlSink`.

    Blank lines are skipped; anything that is not a JSON object with a
    known ``type`` raises :class:`~repro.errors.ObservabilityError`
    with the offending line number.
    """
    events: List[dict] = []
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ObservabilityError(f"cannot read event file {path}: {exc}") from exc
    for line_number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path}:{line_number}: not valid JSON: {exc}"
            ) from exc
        if not isinstance(event, dict) or event.get("type") not in _EVENT_TYPES:
            raise ObservabilityError(
                f"{path}:{line_number}: not an observability event "
                f"(expected a JSON object with type span|counter|gauge|hist)"
            )
        events.append(event)
    return events
