"""SLO monitoring: rolling-window objectives over the broker's vitals.

A service-level objective here is a *budget* on a rolling-window
statistic.  Four ship by default, matching the service's operating
contract (docs/SERVICE.md):

* ``admission_ratio`` — admitted / decided over the window must stay
  at or above the budget (a falling ratio means the network is full or
  the fast lane is mis-placing);
* ``decision_p99_s`` — 99th-percentile per-slot decision latency must
  stay under the tick budget (the daemon falls behind its own slot
  clock otherwise);
* ``checkpoint_p99_s`` — snapshot writes must stay under budget
  (checkpoint-before-ack means a slow disk stalls client responses);
* ``intake_depth`` — queue depth must stay under a fraction of
  ``max_queue`` (sustained depth near the bound means imminent
  backpressure).

:class:`SloMonitor` keeps deques of recent samples; :meth:`evaluate`
computes each objective fresh (a pure read) and, when asked, emits the
state as ``slo.<name>`` gauges with ``ok``/``budget`` attrs plus one
``slo.breaches`` counter per ok->breach transition — the events a
:class:`~repro.obs.metrics.MetricsSnapshot` folds and ``repro watch``
renders.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional

from repro.obs import registry as obs


def _p99(values) -> float:
    """Nearest-rank p99 of an iterable of floats (0.0 when empty)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(1, -(-len(ordered) * 99 // 100))
    return ordered[rank - 1]


@dataclass
class SloThresholds:
    """The budgets one :class:`SloMonitor` holds its window against."""

    #: Admitted / decided must stay >= this over the window.
    min_admission_ratio: float = 0.95
    #: p99 per-slot decision latency must stay <= this (seconds).
    #: The daemon wires the slot tick in here.
    decision_budget_s: float = 0.25
    #: p99 checkpoint duration must stay <= this (seconds).
    checkpoint_budget_s: float = 1.0
    #: Intake depth must stay <= this many queued submissions.
    max_intake_depth: int = 1024
    #: Watchdog-degraded slots per window must stay <= this (0 = any
    #: degrade is a breach; degrading is a survival move, not routine).
    max_degraded_slots: int = 0


class SloMonitor:
    """Rolling-window SLO evaluation over broker slot samples.

    ``window`` is in *processed slots* — each :meth:`record_slot` call
    pushes one slot's admissions/rejections/decision latency (and the
    post-drain intake depth); checkpoint durations arrive separately at
    their own cadence.
    """

    def __init__(self, thresholds: Optional[SloThresholds] = None,
                 window: int = 64):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.thresholds = thresholds or SloThresholds()
        self.window = window
        self._admitted: Deque[int] = deque(maxlen=window)
        self._rejected: Deque[int] = deque(maxlen=window)
        self._decision_s: Deque[float] = deque(maxlen=window)
        self._checkpoint_s: Deque[float] = deque(maxlen=window)
        self._depth: Deque[int] = deque(maxlen=window)
        self._degraded: Deque[int] = deque(maxlen=window)
        #: Last evaluated ok-state per objective (for breach edges).
        self._ok: Dict[str, bool] = {}
        #: Total ok->breach transitions since start.
        self.breaches = 0

    # -- recording -------------------------------------------------------

    def record_slot(
        self,
        admitted: int,
        rejected: int,
        decision_s: float,
        depth: int,
        degraded: int = 0,
    ) -> None:
        """Fold one processed slot's outcome into the window.

        ``degraded`` is 1 when the solver watchdog finished this slot
        fast-lane-only (or skipped the LP during its backoff window).
        """
        self._admitted.append(admitted)
        self._rejected.append(rejected)
        self._decision_s.append(decision_s)
        self._depth.append(depth)
        self._degraded.append(degraded)

    def record_checkpoint(self, seconds: float) -> None:
        """Fold one snapshot write's duration into the window."""
        self._checkpoint_s.append(seconds)

    # -- evaluation ------------------------------------------------------

    def evaluate(self, emit: bool = False) -> Dict[str, Dict[str, Any]]:
        """Current objective states: ``{name: {value, budget, ok, window}}``.

        A pure read unless ``emit=True``, which additionally publishes
        ``slo.<name>`` gauges (attr ``ok``/``budget``) and bumps the
        ``slo.breaches`` counter on every ok->breach edge.
        """
        t = self.thresholds
        admitted = sum(self._admitted)
        decided = admitted + sum(self._rejected)
        ratio = admitted / decided if decided else 1.0
        states = {
            "admission_ratio": {
                "value": ratio,
                "budget": t.min_admission_ratio,
                "ok": ratio >= t.min_admission_ratio,
                "window": len(self._admitted),
            },
            "decision_p99_s": {
                "value": _p99(self._decision_s),
                "budget": t.decision_budget_s,
                "ok": _p99(self._decision_s) <= t.decision_budget_s,
                "window": len(self._decision_s),
            },
            "checkpoint_p99_s": {
                "value": _p99(self._checkpoint_s),
                "budget": t.checkpoint_budget_s,
                "ok": _p99(self._checkpoint_s) <= t.checkpoint_budget_s,
                "window": len(self._checkpoint_s),
            },
            "intake_depth": {
                "value": float(self._depth[-1]) if self._depth else 0.0,
                "budget": float(t.max_intake_depth),
                "ok": (self._depth[-1] if self._depth else 0)
                <= t.max_intake_depth,
                "window": len(self._depth),
            },
            "degraded_slots": {
                "value": float(sum(self._degraded)),
                "budget": float(t.max_degraded_slots),
                "ok": sum(self._degraded) <= t.max_degraded_slots,
                "window": len(self._degraded),
            },
        }
        if emit:
            for name, state in states.items():
                obs.gauge(
                    f"slo.{name}", state["value"],
                    ok=state["ok"], budget=state["budget"],
                )
                was_ok = self._ok.get(name, True)
                if was_ok and not state["ok"]:
                    self.breaches += 1
                    obs.counter("slo.breaches", objective=name)
                self._ok[name] = state["ok"]
            obs.gauge(
                "slo.ok",
                1.0 if all(s["ok"] for s in states.values()) else 0.0,
            )
        return states

    def __repr__(self) -> str:
        return (
            f"SloMonitor(window={self.window}, slots={len(self._decision_s)}, "
            f"breaches={self.breaches})"
        )
