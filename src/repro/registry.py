"""A central registry of scheduler factories.

The CLI, the benchmark harness, and downstream experiment scripts all
need "give me scheduler X for topology T and horizon H" by name; this
module is the single place those names live.  Factories default to the
drop policy so batch experiments survive infeasible corner cases and
report rejections instead of dying.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.baselines import DirectScheduler, GreedyStoreAndForwardScheduler
from repro.core import PostcardScheduler, ReplanningPostcardScheduler
from repro.core.interfaces import Scheduler
from repro.extensions import PercentileAwareScheduler
from repro.flowbased import FlowBasedScheduler
from repro.heuristic import FastLaneScheduler, HybridScheduler
from repro.net.topology import Topology

SchedulerFactory = Callable[[Topology, int], Scheduler]

_REGISTRY: Dict[str, SchedulerFactory] = {
    "postcard": lambda t, h, **kw: PostcardScheduler(
        t, h, on_infeasible="drop", **kw
    ),
    # The from-scratch reference: fresh graph, operator assembly, cold
    # solves.  Bit-identical results to "postcard" (the equivalence
    # suite pins this); exists for benchmarking and cross-checks.
    "postcard-scratch": lambda t, h, **kw: PostcardScheduler(
        t, h, on_infeasible="drop", incremental=False, warm_start=False, **kw
    ),
    "postcard-replan": lambda t, h, **kw: ReplanningPostcardScheduler(
        t, h, on_infeasible="drop", **kw
    ),
    "postcard-no-storage": lambda t, h, **kw: PostcardScheduler(
        t, h, storage="destination_only", on_infeasible="drop", **kw
    ),
    "flow-based": lambda t, h, **kw: FlowBasedScheduler(
        t, h, on_infeasible="drop", **kw
    ),
    "flow-2phase": lambda t, h, **kw: FlowBasedScheduler(
        t, h, variant="two_phase", on_infeasible="drop", **kw
    ),
    # The combinatorial baselines solve no LPs; a requested backend is
    # meaningless for them and deliberately ignored.
    "direct": lambda t, h, **kw: DirectScheduler(t, h, on_infeasible="drop"),
    "greedy": lambda t, h, **kw: GreedyStoreAndForwardScheduler(
        t, h, on_infeasible="drop"
    ),
    "q-aware": lambda t, h, **kw: PercentileAwareScheduler(
        t, h, q=95.0, on_infeasible="drop", **kw
    ),
    # The PR 4 fast lane: LP-free admission + ALAP placement.  Like the
    # other combinatorial schedulers it ignores a requested backend.
    "heuristic": lambda t, h, **kw: FastLaneScheduler(
        t, h, on_infeasible="drop"
    ),
    # Fast lane per slot, Postcard LP on escalated (pressured) slots.
    "hybrid": lambda t, h, **kw: HybridScheduler(
        t, h, on_infeasible="drop", **kw
    ),
}


def scheduler_names() -> List[str]:
    """All registered scheduler names, sorted."""
    return sorted(_REGISTRY)


def make_scheduler(
    name: str,
    topology: Topology,
    horizon: int,
    backend: Optional[str] = None,
    **kwargs,
) -> Scheduler:
    """Instantiate a registered scheduler by name.

    ``backend`` overrides the LP solver (e.g. ``"resilient"`` for the
    retry/fallback chain); the non-optimizing baselines ignore it.
    Extra keyword arguments are forwarded to the factory (e.g. the
    service daemon tunes the hybrid's ``escalate_utilization`` here).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(scheduler_names())
        raise ReproError(f"unknown scheduler {name!r}; available: {known}") from None
    if backend is not None:
        kwargs["backend"] = backend
    return factory(topology, horizon, **kwargs)


def scheduler_factory(name: str) -> SchedulerFactory:
    """The raw factory for a registered name (for run_comparison)."""
    if name not in _REGISTRY:
        known = ", ".join(scheduler_names())
        raise ReproError(f"unknown scheduler {name!r}; available: {known}")
    return _REGISTRY[name]


def register_scheduler(name: str, factory: SchedulerFactory) -> None:
    """Add (or replace) a named factory — extension point for users."""
    _REGISTRY[name] = factory
