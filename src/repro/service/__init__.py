"""repro.service: the async transfer-broker daemon (PR 5).

A long-running front end over the scheduling stack: clients submit
transfer requests over a newline-delimited-JSON socket protocol, the
daemon batches arrivals per virtual slot into ``K(t)``, drives the
hybrid scheduler over one shared ledger, applies backpressure when the
intake queue saturates, and checkpoints so a killed process resumes
mid-charging-period.  See docs/SERVICE.md.
"""

from repro.service.chaos import ChaosMonkey, InjectedCrash
from repro.service.config import ServiceConfig
from repro.service.intake import IntakeQueue, PendingTransfer
from repro.service.loadgen import LoadGenResult, percentile, run_loadgen
from repro.service.server import ServiceDaemon, serve
from repro.service.slotloop import TransferBroker
from repro.service.store import SnapshotStore
from repro.service.verify import verify_recovery
from repro.service.wal import WalScan, WriteAheadLog, scan_wal
from repro.service.watch import render_dashboard, run_watch

__all__ = [
    "ChaosMonkey",
    "InjectedCrash",
    "IntakeQueue",
    "LoadGenResult",
    "PendingTransfer",
    "ServiceConfig",
    "ServiceDaemon",
    "SnapshotStore",
    "TransferBroker",
    "WalScan",
    "WriteAheadLog",
    "percentile",
    "render_dashboard",
    "run_loadgen",
    "run_watch",
    "scan_wal",
    "serve",
    "verify_recovery",
]
