"""repro.service: the async transfer-broker daemon and its fleet.

A long-running front end over the scheduling stack: clients submit
transfer requests over a newline-delimited-JSON socket protocol, the
daemon batches arrivals per virtual slot into ``K(t)``, drives the
hybrid scheduler over one shared ledger, applies backpressure when the
intake queue saturates, and checkpoints so a killed process resumes
mid-charging-period.  PR 8 adds the sharded fabric: a consistent-hash
:class:`ShardMap` routes submissions to per-region brokers behind one
:class:`FleetRouter` front end, cross-shard transfers relay through a
gateway datacenter, and ``period_slots`` lets a long-running shard roll
its charging period over instead of dying at the horizon.  See
docs/SERVICE.md.
"""

from repro.service.chaos import ChaosMonkey, InjectedCrash
from repro.service.config import ServiceConfig
from repro.service.fabric import (
    BrokerFabric,
    FleetConfig,
    FleetRouter,
    Relay,
    RelayLeg,
    RelayTracker,
    ShardDownError,
    plan_relay,
    relay_gateway,
    rollup_stats,
    select_gateway,
    serve_fleet,
    split_deadline,
)
from repro.service.intake import IntakeQueue, PendingTransfer
from repro.service.loadgen import (
    LoadGenResult,
    parse_endpoint,
    percentile,
    run_fleet_loadgen,
    run_loadgen,
)
from repro.service.router import ShardMap
from repro.service.server import ServiceDaemon, serve
from repro.service.slotloop import TransferBroker
from repro.service.store import SnapshotStore
from repro.service.verify import verify_recovery
from repro.service.wal import WalScan, WriteAheadLog, scan_wal
from repro.service.watch import (
    render_dashboard,
    render_fleet_dashboard,
    run_watch,
)

__all__ = [
    "BrokerFabric",
    "ChaosMonkey",
    "FleetConfig",
    "FleetRouter",
    "InjectedCrash",
    "IntakeQueue",
    "LoadGenResult",
    "PendingTransfer",
    "Relay",
    "RelayLeg",
    "RelayTracker",
    "ServiceConfig",
    "ServiceDaemon",
    "ShardDownError",
    "ShardMap",
    "SnapshotStore",
    "TransferBroker",
    "WalScan",
    "WriteAheadLog",
    "parse_endpoint",
    "percentile",
    "plan_relay",
    "relay_gateway",
    "render_dashboard",
    "select_gateway",
    "render_fleet_dashboard",
    "rollup_stats",
    "run_fleet_loadgen",
    "run_loadgen",
    "run_watch",
    "scan_wal",
    "serve",
    "serve_fleet",
    "split_deadline",
    "verify_recovery",
]
