"""Scripted fault injection for the broker's durability machinery.

The WAL, the snapshot store, and the slot loop expose *crash points* —
named boundaries a real crash could land on (before a write, between
write and fsync, before and after a rename, after the commit record but
before the ack).  :class:`ChaosMonkey` arms actions at those points:

``raise``
    Throw :class:`InjectedCrash` (a ``BaseException``, so no library
    ``except ReproError`` handler can accidentally swallow it).  The
    in-process drill harness uses this: the broker object is discarded
    exactly as a dead process's memory would be, and recovery rebuilds
    from disk alone.
``kill``
    ``os._exit(137)`` — a genuine no-cleanup process death, for
    subprocess drills (armed via the ``REPRO_CHAOS`` environment
    variable, e.g. ``REPRO_CHAOS=kill:wal.pre_fsync:3``).
``hang``
    Sleep ``param`` seconds at the point — the injected stall the
    solver watchdog must degrade around.
``torn``
    (mangle points only) Truncate the buffer mid-record before it hits
    the file — a torn write.  Drills pair it with a ``raise`` at the
    following crash point, since a real torn write only exists because
    the process died mid-call.
``enospc``
    (mangle points only) Raise ``OSError(ENOSPC)`` — disk full.

Crash-point names currently wired::

    wal.pre_write | wal.pre_fsync | wal.post_fsync      (wal.append)
    wal.append                                          (mangle tap)
    checkpoint.pre_write | checkpoint.pre_fsync
    checkpoint.pre_rename | checkpoint.post_rename      (atomic_write)
    commit.pre_ack                                      (slot loop)
    lp.escalate                                         (hybrid watchdog)

The module also hosts the scripted drills the ``repro chaos`` CLI and
CI run: :func:`run_crash_matrix` (every crash point, recovered state
must equal an uninterrupted run's) and :func:`run_watchdog_drill`
(injected LP hang must degrade to fast-lane within the slot and re-arm
afterwards).
"""

from __future__ import annotations

import errno
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ServiceError
from repro.obs import registry as obs


class InjectedCrash(BaseException):
    """An armed ``raise`` crash point fired.

    Deliberately **not** a :class:`~repro.errors.ReproError` — the
    point of an injected crash is that *nothing* on the failure path
    handles it, exactly like SIGKILL.  Only the drill harness, which
    knows it armed the chaos, may catch it.
    """

    def __init__(self, point: str):
        super().__init__(f"injected crash at {point}")
        self.point = point


#: Actions crash points accept / mangle points accept.
_CRASH_ACTIONS = ("raise", "kill", "hang")
_MANGLE_ACTIONS = ("torn", "enospc")


@dataclass
class _Arm:
    """One armed injection: fire ``action`` on the ``at``-th hit."""

    point: str
    action: str
    at: int = 1
    param: float = 0.0
    hits: int = 0
    fired: int = 0


class ChaosMonkey:
    """Holds the armed script and serves the hook calls.

    A process-global instance (:data:`MONKEY`) backs the module-level
    :func:`crashpoint` / :func:`mangle` functions the durability layer
    calls; everything is a near-free no-op while nothing is armed.
    """

    def __init__(self) -> None:
        self._arms: Dict[str, _Arm] = {}

    @property
    def armed(self) -> bool:
        return bool(self._arms)

    def arm(
        self, point: str, action: str = "raise", at: int = 1, param: float = 0.0
    ) -> None:
        """Arm ``action`` at ``point``, firing on the ``at``-th hit."""
        if action not in _CRASH_ACTIONS + _MANGLE_ACTIONS:
            known = ", ".join(_CRASH_ACTIONS + _MANGLE_ACTIONS)
            raise ServiceError(f"unknown chaos action {action!r}; one of: {known}")
        if at < 1:
            raise ServiceError(f"chaos 'at' must be >= 1, got {at}")
        self._arms[point] = _Arm(point=point, action=action, at=at, param=param)

    def disarm(self, point: Optional[str] = None) -> None:
        """Drop one armed point, or the whole script when ``None``."""
        if point is None:
            self._arms.clear()
        else:
            self._arms.pop(point, None)

    def fired(self, point: str) -> int:
        """How many times ``point``'s action has fired."""
        arm = self._arms.get(point)
        return arm.fired if arm else 0

    # -- the hooks the durability layer calls ------------------------------

    def crashpoint(self, point: str) -> None:
        """Called at a crash boundary; fires the armed action, if due."""
        arm = self._arms.get(point)
        if arm is None or arm.action not in _CRASH_ACTIONS:
            return
        arm.hits += 1
        if arm.hits != arm.at:
            return
        arm.fired += 1
        obs.counter("service.chaos.fired", point=point, action=arm.action)
        if arm.action == "hang":
            time.sleep(arm.param)
            return
        if arm.action == "kill":
            os._exit(137)
        raise InjectedCrash(point)

    def mangle(self, point: str, data: bytes) -> bytes:
        """Called around a buffer write; corrupts or refuses it, if due."""
        arm = self._arms.get(point)
        if arm is None or arm.action not in _MANGLE_ACTIONS:
            return data
        arm.hits += 1
        if arm.hits != arm.at:
            return data
        arm.fired += 1
        obs.counter("service.chaos.fired", point=point, action=arm.action)
        if arm.action == "enospc":
            raise OSError(errno.ENOSPC, "No space left on device (injected)")
        keep = int(arm.param) if arm.param else max(1, len(data) // 2)
        return data[:keep]

    def configure_from_env(self, env_var: str = "REPRO_CHAOS") -> int:
        """Arm from ``REPRO_CHAOS=action:point[:at[:param]],...``.

        The subprocess-drill channel: a daemon started with e.g.
        ``REPRO_CHAOS=kill:checkpoint.pre_rename:2`` dies, for real, on
        its second compaction rename.  Returns the number of arms set.
        """
        script = os.environ.get(env_var, "")
        count = 0
        for clause in filter(None, (c.strip() for c in script.split(","))):
            parts = clause.split(":")
            if len(parts) < 2:
                raise ServiceError(
                    f"bad {env_var} clause {clause!r}; "
                    "want action:point[:at[:param]]"
                )
            action, point = parts[0], parts[1]
            at = int(parts[2]) if len(parts) > 2 else 1
            param = float(parts[3]) if len(parts) > 3 else 0.0
            self.arm(point, action=action, at=at, param=param)
            count += 1
        return count


#: The process-global monkey the service's hook calls go through.
MONKEY = ChaosMonkey()


def crashpoint(point: str) -> None:
    """Module-level tap: :meth:`ChaosMonkey.crashpoint` on :data:`MONKEY`."""
    MONKEY.crashpoint(point)


def mangle(point: str, data: bytes) -> bytes:
    """Module-level tap: :meth:`ChaosMonkey.mangle` on :data:`MONKEY`."""
    return MONKEY.mangle(point, data)


def reset() -> None:
    """Disarm everything (test/drill teardown)."""
    MONKEY.disarm()


# -- scripted drills -------------------------------------------------------

#: The crash-point matrix the acceptance drill covers.  Each entry
#: names where the "process" dies; recovery after every one of them
#: must reproduce the uninterrupted run exactly.
DEFAULT_CRASH_POINTS = (
    "wal.pre_write",
    "wal.pre_fsync",
    "wal.post_fsync",
    "checkpoint.pre_write",
    "checkpoint.pre_fsync",
    "checkpoint.pre_rename",
    "checkpoint.post_rename",
    "commit.pre_ack",
)


def _drill_batches() -> List[List[Dict[str, Any]]]:
    """The deterministic workload every drill run replays (3 slots)."""
    sizes = [
        [6.0, 9.0, 4.0, 11.0],
        [8.0, 3.0, 10.0, 5.0],
        [7.0, 2.0, 12.0, 6.0],
    ]
    batches = []
    for b, row in enumerate(sizes):
        batches.append([
            {
                "id": f"d{b}-{i}",
                "source": i % 3,
                "destination": 3 - (i % 3),
                "size_gb": size,
                "deadline_slots": 3,
            }
            for i, size in enumerate(row)
        ])
    return batches


def _drill_config(checkpoint_dir: str, wal: bool = True):
    from repro.service.config import ServiceConfig

    return ServiceConfig(
        datacenters=4,
        capacity=50.0,
        seed=3,
        max_deadline=8,
        tick_seconds=0.0,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=1,
        wal=wal,
    )


def _drive(broker, batches: List[List[Dict[str, Any]]]) -> None:
    """Submit + process each batch as one slot, like a scripted client.

    Resubmitting an id the broker already decided (or still holds
    pending) is the idempotent-retry path a real client takes after a
    crash; both outcomes are treated as accepted here.
    """
    for batch in batches:
        for fields in batch:
            try:
                broker.submit(dict(fields))
            except ServiceError:
                # Already pending from before the crash — fine.
                pass
        if broker.queue.depth:
            broker.process_slot()


def _books(broker) -> Dict[str, Any]:
    """The comparable face of a broker: decisions, ledger, bill, clock."""
    ledger = {}
    for src, dst in broker.state.ledger.used_links():
        usage = broker.state.ledger.usage(src, dst)
        ledger[f"{src},{dst}"] = {
            str(s): round(v, 9) for s, v in usage.volumes.items() if v > 1e-12
        }
    return {
        "decisions": {
            cid: rec["decision"] for cid, rec in broker.decisions.items()
        },
        "charged": {
            f"{s},{d}": round(v, 9)
            for (s, d), v in broker.state.charged_snapshot().items()
            if v > 1e-12
        },
        "ledger": ledger,
        "cost_per_slot": round(broker.state.current_cost_per_slot(), 9),
        "next_slot": broker.next_slot,
    }


def run_crash_matrix(
    base_dir: str,
    points: Optional[List[str]] = None,
    crash_at: int = 2,
) -> Dict[str, Any]:
    """The acceptance drill: crash at every point, recover, compare.

    For each crash point: run the scripted workload against a
    WAL-enabled broker with an ``InjectedCrash`` armed on the
    ``crash_at``-th hit of that point, discard the broker mid-flight
    exactly where the crash lands, rebuild a fresh broker from the
    checkpoint directory alone, finish the workload with
    client-idempotent retries, and require the recovered books (every
    decision, every ledger cell, the bill, the clock) to equal an
    uninterrupted reference run's.  The recovery verifier runs inside
    every resume (the broker refuses to serve otherwise).

    Returns the drill report (one entry per point, ``ok`` overall).
    """
    from repro.service.slotloop import TransferBroker

    batches = _drill_batches()

    reference = TransferBroker(
        _drill_config(os.path.join(base_dir, "reference"), wal=True)
    )
    _drive(reference, batches)
    expected = _books(reference)

    report: Dict[str, Any] = {"kind": "crash-matrix", "points": {}, "ok": True}
    for point in points or list(DEFAULT_CRASH_POINTS):
        ckpt = os.path.join(base_dir, point.replace(".", "_"))
        broker = TransferBroker(_drill_config(ckpt))
        MONKEY.arm(point, action="raise", at=crash_at)
        crashed = False
        try:
            _drive(broker, batches)
        except InjectedCrash:
            crashed = True
        finally:
            MONKEY.disarm(point)
        del broker  # the "dead process": nothing survives but the disk

        resumed = TransferBroker(_drill_config(ckpt))
        _drive(resumed, batches)
        got = _books(resumed)
        entry = {
            "crashed": crashed,
            "resumed": resumed.resumed,
            "books_equal": got == expected,
            "recovery": dict(resumed.recovery_info),
            "verifier": resumed.verifier_report,
        }
        if not (crashed and entry["books_equal"]):
            entry["got"] = got
            entry["expected"] = expected
            report["ok"] = False
        report["points"][point] = entry
    return report


def run_torn_and_corrupt_drill(base_dir: str) -> Dict[str, Any]:
    """Corruption drill: torn WAL tail, torn tmp, corrupt newest snapshot.

    Three scripted corruptions of the on-disk checkpoint directory —
    each applied after a healthy partial run, each followed by a resume
    that must land on books identical to the uninterrupted reference:

    * ``torn_wal_tail`` — the last WAL record is half-written (the
      classic kill -9 mid-append artifact);
    * ``torn_tmp`` — a ``*.json.tmp`` from a mid-compaction death is
      left lying around;
    * ``corrupt_snapshot`` — the newest snapshot generation's bytes are
      flipped, forcing checksum-fallback to generation K-1 plus WAL
      replay across both generations.
    """
    from repro.service.slotloop import TransferBroker
    from repro.service.store import SnapshotStore

    batches = _drill_batches()
    reference = TransferBroker(
        _drill_config(os.path.join(base_dir, "c-reference"))
    )
    _drive(reference, batches)
    expected = _books(reference)

    def partial_run(ckpt: str) -> None:
        broker = TransferBroker(_drill_config(ckpt))
        _drive(broker, batches[:2])
        del broker

    report: Dict[str, Any] = {"kind": "corruption", "cases": {}, "ok": True}

    def finish(name: str, ckpt: str) -> None:
        resumed = TransferBroker(_drill_config(ckpt))
        _drive(resumed, batches)
        got = _books(resumed)
        entry = {
            "books_equal": got == expected,
            "recovery": dict(resumed.recovery_info),
            "verifier": resumed.verifier_report,
        }
        if not entry["books_equal"]:
            entry["got"] = got
            entry["expected"] = expected
            report["ok"] = False
        report["cases"][name] = entry

    # Torn WAL tail: append garbage half-record bytes to the live WAL.
    ckpt = os.path.join(base_dir, "c-torn-wal")
    partial_run(ckpt)
    store = SnapshotStore(ckpt, wal=True)
    wal_path = store.wal_path(store.newest_generation())
    with open(wal_path, "ab") as fh:
        fh.write(b"\x99\x00\x00\x00\xde\xad\xbe\xefhalf a rec")
    finish("torn_wal_tail", ckpt)

    # Torn tmp: a compaction died mid-write, leaving snapshot.json.tmp.
    ckpt = os.path.join(base_dir, "c-torn-tmp")
    partial_run(ckpt)
    store = SnapshotStore(ckpt, wal=True)
    tmp = store.snapshot_path(store.newest_generation() + 1)
    tmp.with_name(tmp.name + ".tmp").write_text('{"version": 2, "kind": "pos')
    finish("torn_tmp", ckpt)

    # Corrupt newest snapshot: checksum must reject it, recovery must
    # fall back a generation and replay both WAL generations.
    ckpt = os.path.join(base_dir, "c-bad-snap")
    partial_run(ckpt)
    store = SnapshotStore(ckpt, wal=True)
    newest = store.snapshot_path(store.newest_generation())
    data = bytearray(newest.read_bytes())
    data[len(data) // 2] ^= 0xFF
    newest.write_bytes(bytes(data))
    finish("corrupt_snapshot", ckpt)
    fell_back = report["cases"]["corrupt_snapshot"]["recovery"].get(
        "fallbacks", 0
    )
    if not fell_back:
        report["ok"] = False
        report["cases"]["corrupt_snapshot"]["note"] = (
            "expected a snapshot-generation fallback, saw none"
        )
    return report


def run_watchdog_drill(
    base_dir: str,
    hang_seconds: float = 0.5,
    timeout_s: float = 0.05,
) -> Dict[str, Any]:
    """The solver-watchdog drill: hang the LP, degrade, then re-arm.

    Slot 1 escalates into an injected ``hang_seconds`` stall; the
    watchdog must give up after ``timeout_s``, finish the slot
    fast-lane-only (every client still gets a decision within the
    tick), and bump ``service.degraded``.  Later slots, once the
    backoff window passes and the stalled solve has been reaped, must
    escalate through the LP again.
    """
    from repro.service.slotloop import TransferBroker

    config = _drill_config(os.path.join(base_dir, "watchdog"), wal=True)
    config.watchdog_timeout_s = timeout_s
    config.watchdog_backoff_slots = 1
    broker = TransferBroker(config)
    # Force every slot onto the escalation path: the drill is about
    # what happens when the LP stalls, not whether pressure arises.
    broker.scheduler.escalate_utilization = 1e-9

    batches = _drill_batches()
    MONKEY.arm("lp.escalate", action="hang", at=1, param=hang_seconds)
    t0 = time.perf_counter()
    try:
        _drive(broker, batches[:1])
    finally:
        MONKEY.disarm("lp.escalate")
    first_slot_s = time.perf_counter() - t0
    degraded_after_first = broker.scheduler.degraded

    # The stalled solve is still sleeping; the next slot must not wait
    # on it (backoff window + zombie guard both force fast-lane-only).
    _drive(broker, batches[1:2])
    degraded_or_skipped = broker.scheduler.degraded + broker.scheduler.lp_skipped

    # Let the zombie finish, then the LP path must genuinely re-arm.
    time.sleep(hang_seconds + 0.1)
    escalations_before = broker.scheduler.escalations
    _drive(broker, batches[2:3])
    rearmed = broker.scheduler.escalations > escalations_before

    decided = {
        cid: rec["decision"] for cid, rec in broker.decisions.items()
    }
    all_ids = [f["id"] for batch in batches for f in batch]
    report = {
        "kind": "watchdog",
        "first_slot_seconds": round(first_slot_s, 4),
        "degraded_slots": broker.scheduler.degraded,
        "lp_skipped_slots": broker.scheduler.lp_skipped,
        "rearmed": rearmed,
        "all_decided": all(cid in decided for cid in all_ids),
        "slo": broker.slo.evaluate(emit=False).get("degraded_slots", {}),
        "ok": (
            degraded_after_first >= 1
            and first_slot_s < hang_seconds
            and degraded_or_skipped >= 2
            and rearmed
            and all(cid in decided for cid in all_ids)
        ),
    }
    return report
