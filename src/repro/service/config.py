"""Configuration of the transfer-broker daemon.

One frozen-ish dataclass holds everything the daemon needs to be
rebuilt identically after a restart: the listening endpoint, the
topology parameters (the topology itself is a pure function of them,
which is what lets a checkpoint restore onto "the same network"), the
scheduler choice, the slot clock, and the intake / checkpoint policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ServiceError
from repro.net.generators import complete_topology
from repro.net.topology import Topology

#: Seconds per virtual slot when none is configured.
DEFAULT_TICK_SECONDS = 0.25


@dataclass
class ServiceConfig:
    """Everything needed to (re)build one transfer-broker daemon.

    Endpoint: set ``socket_path`` for a unix socket, or ``host``/``port``
    for TCP (``socket_path`` wins when both are given).  ``tick_seconds``
    is the virtual slot length — the daemon batches all requests that
    arrive within one tick into a single ``K(t)``; ``tick_seconds=0``
    disables the automatic clock entirely, and slots advance only on
    explicit ``tick`` protocol messages (the deterministic mode tests
    and the crash-resume harness rely on).

    ``horizon`` bounds the ledger window; submissions whose deadline
    would cross it are refused unless ``period_slots`` turns on billing
    rollover (the broker then cycles charging periods forever, banking
    each period's bill at the boundary).  ``max_queue`` bounds the
    intake queue — the
    backpressure threshold.  ``max_batch=0`` drains the whole queue into
    each slot.  ``checkpoint_every=N`` snapshots state + pending queue
    every N processed slots into ``checkpoint_dir`` (no persistence when
    the directory is unset).
    """

    host: str = "127.0.0.1"
    port: int = 7411
    socket_path: Optional[str] = None

    datacenters: int = 10
    capacity: float = 100.0
    seed: int = 0

    scheduler: str = "hybrid"
    backend: Optional[str] = None
    horizon: int = 4096
    max_deadline: int = 16

    #: Path to a :class:`repro.net.schedule.LinkSchedule` JSON file.
    #: Loaded at broker construction and re-attached after every
    #: checkpoint/WAL restore (the schedule, like the topology, is
    #: config — not state — so snapshots stay schedule-free).
    link_schedule_path: Optional[str] = None

    tick_seconds: float = DEFAULT_TICK_SECONDS
    max_queue: int = 1024
    max_batch: int = 0

    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 5

    #: Charging-period length in slots (0 = single-period mode: the
    #: broker refuses deadlines that would cross ``horizon``).  With a
    #: positive value the broker *rolls over* instead of dying: at
    #: every multiple of ``period_slots`` the closing period's bill is
    #: banked (max-charging over that period's own samples), the paid
    #: watermarks ``X_ij`` re-seed to the volume in-flight transfers
    #: already committed past the boundary, and the clock keeps
    #: running — indefinitely.  Boundaries are a pure function of the
    #: slot index, so WAL replay reproduces them exactly.
    period_slots: int = 0
    #: With rollover on, drop ledger samples older than the just-closed
    #: period boundary after banking its bill.  Bounds ledger (and
    #: snapshot) memory for week-long runs at the cost of not being
    #: able to re-audit closed periods from the live ledger.
    period_prune: bool = False

    #: Write-ahead logging (PR 7): journal every admission and slot
    #: commit (O(1) bytes, fsync'd before the ack) and turn the
    #: ``checkpoint_every`` cadence into snapshot *compaction*.
    #: Requires ``checkpoint_dir``.
    wal: bool = False
    #: fsync each WAL append / snapshot write.  Turning this off trades
    #: power-loss durability for speed (process-crash durability
    #: remains); drills and benchmarks flip it, production should not.
    wal_fsync: bool = True
    #: Snapshot generations kept on disk (WAL mode).  Recovery can fall
    #: back up to ``snapshot_retain - 1`` generations past a corrupt
    #: newest snapshot.
    snapshot_retain: int = 3

    #: Per-connection read timeout, seconds (0 = none).  A connection
    #: with no complete line and no in-flight decisions for this long
    #: is told off and disconnected — a slowloris guard.
    read_timeout_s: float = 0.0

    #: Solver watchdog budget, seconds (0 = off; hybrid scheduler
    #: only).  An LP escalation that has not answered within this is
    #: abandoned and the slot degrades to fast-lane-only placement.
    watchdog_timeout_s: float = 0.0
    #: Escalation-worthy slots that skip the LP after a degrade
    #: (doubling per consecutive degrade, capped below).
    watchdog_backoff_slots: int = 2
    watchdog_backoff_max: int = 16

    #: Stop after this many processed slots (0 = run until drained).
    max_slots: int = 0

    #: Attach an online :class:`~repro.forecast.ForecastProvider` to
    #: the scheduler (forecast-capable schedulers only — hybrid).  Like
    #: the link schedule, the provider is config-not-state: it is
    #: rebuilt at broker construction and retrains deterministically
    #: from WAL replay, so snapshots stay forecast-free.
    forecast: bool = False
    #: Seasonal period the predictors learn, in slots.
    forecast_period: int = 24
    #: Reservation horizon in slots (0 = one period).
    forecast_horizon: int = 0

    #: Attach the live telemetry plane (MetricsSnapshot sink + SLO
    #: gauges + the ``metrics`` protocol op's data source).  Off, the
    #: daemon emits nothing unless an external sink is attached.
    telemetry: bool = True

    #: Wall seconds one virtual slot *represents* for billing
    #: reconciliation — the ISP charging interval, 5 minutes by
    #: default.  This is deliberately decoupled from ``tick_seconds``
    #: (how fast the daemon runs): a 0.25 s tick replaying a day of
    #: 5-minute intervals still exports samples an invoice can be
    #: matched against.
    slot_wall_seconds: float = 300.0

    #: Unix timestamp slot 0 maps to.  0.0 = stamp ``time.time()`` at
    #: first start; the broker persists the stamp in its checkpoints so
    #: a resumed daemon keeps the original alignment.
    wall_epoch: float = 0.0

    #: SLO rolling window, in processed slots.
    slo_window: int = 64
    #: Windowed admitted/decided ratio must stay >= this.
    slo_admission_ratio: float = 0.95
    #: p99 decision latency budget; 0.0 = the tick (or 0.25 s when the
    #: clock is manual).
    slo_decision_budget_s: float = 0.0
    #: p99 checkpoint-write budget, seconds.
    slo_checkpoint_budget_s: float = 1.0
    #: Intake-depth objective as a fraction of ``max_queue``.
    slo_depth_fraction: float = 0.8
    #: Watchdog-degraded slots allowed per SLO window (0 = any degrade
    #: breaches).
    slo_max_degraded: int = 0

    def __post_init__(self) -> None:
        if self.datacenters < 2:
            raise ServiceError("service needs at least 2 datacenters")
        if self.capacity <= 0:
            raise ServiceError("capacity must be positive")
        if self.horizon < 2:
            raise ServiceError("horizon must be >= 2 slots")
        if not 1 <= self.max_deadline < self.horizon:
            raise ServiceError(
                f"need 1 <= max_deadline < horizon, got {self.max_deadline}"
            )
        if self.tick_seconds < 0:
            raise ServiceError("tick_seconds must be non-negative")
        if self.max_queue < 1:
            raise ServiceError("max_queue must be >= 1")
        if self.max_batch < 0:
            raise ServiceError("max_batch must be non-negative")
        if self.checkpoint_every < 1:
            raise ServiceError("checkpoint_every must be >= 1")
        if self.period_slots < 0:
            raise ServiceError("period_slots must be non-negative")
        if self.period_slots and self.period_slots <= self.max_deadline:
            # A transfer may straddle at most one boundary; a period
            # shorter than the deadline cap would let one submission
            # span whole periods it was never billed in.
            raise ServiceError(
                f"period_slots ({self.period_slots}) must exceed "
                f"max_deadline ({self.max_deadline})"
            )
        if self.period_prune and not self.period_slots:
            raise ServiceError("period_prune requires period_slots > 0")
        if self.wal and not self.checkpoint_dir:
            raise ServiceError("wal=True requires a checkpoint_dir")
        if self.snapshot_retain < 1:
            raise ServiceError("snapshot_retain must be >= 1")
        if self.read_timeout_s < 0:
            raise ServiceError("read_timeout_s must be non-negative")
        if self.watchdog_timeout_s < 0:
            raise ServiceError("watchdog_timeout_s must be non-negative")
        if self.watchdog_timeout_s > 0 and self.scheduler != "hybrid":
            raise ServiceError(
                "the solver watchdog guards the hybrid scheduler's LP "
                f"escalation; scheduler {self.scheduler!r} has none"
            )
        if (
            self.watchdog_backoff_slots < 1
            or self.watchdog_backoff_max < self.watchdog_backoff_slots
        ):
            raise ServiceError(
                "need 1 <= watchdog_backoff_slots <= watchdog_backoff_max"
            )
        if self.slo_max_degraded < 0:
            raise ServiceError("slo_max_degraded must be non-negative")
        if self.forecast and self.scheduler != "hybrid":
            raise ServiceError(
                "forecast=True needs a forecast-capable scheduler; "
                f"scheduler {self.scheduler!r} has no attach_forecast hook"
            )
        if self.forecast_period < 2:
            raise ServiceError("forecast_period must be >= 2")
        if self.forecast_horizon < 0:
            raise ServiceError("forecast_horizon must be non-negative")
        if self.slot_wall_seconds <= 0:
            raise ServiceError("slot_wall_seconds must be positive")
        if self.wall_epoch < 0:
            raise ServiceError("wall_epoch must be non-negative")
        if self.slo_window < 1:
            raise ServiceError("slo_window must be >= 1")
        if not 0.0 < self.slo_admission_ratio <= 1.0:
            raise ServiceError("slo_admission_ratio must be in (0, 1]")
        if self.slo_decision_budget_s < 0:
            raise ServiceError("slo_decision_budget_s must be non-negative")
        if self.slo_checkpoint_budget_s <= 0:
            raise ServiceError("slo_checkpoint_budget_s must be positive")
        if not 0.0 < self.slo_depth_fraction <= 1.0:
            raise ServiceError("slo_depth_fraction must be in (0, 1]")

    def decision_budget_s(self) -> float:
        """The p99 decision-latency SLO budget, resolved.

        Explicit ``slo_decision_budget_s`` wins; otherwise the tick is
        the budget (a decision slower than the tick means the slot
        clock is falling behind), with :data:`DEFAULT_TICK_SECONDS`
        standing in when the clock is manual.
        """
        if self.slo_decision_budget_s > 0:
            return self.slo_decision_budget_s
        if self.tick_seconds > 0:
            return self.tick_seconds
        return DEFAULT_TICK_SECONDS

    def slo_thresholds(self):
        """The :class:`~repro.obs.slo.SloThresholds` this config implies."""
        from repro.obs.slo import SloThresholds

        return SloThresholds(
            min_admission_ratio=self.slo_admission_ratio,
            decision_budget_s=self.decision_budget_s(),
            checkpoint_budget_s=self.slo_checkpoint_budget_s,
            max_intake_depth=max(
                1, int(self.max_queue * self.slo_depth_fraction)
            ),
            max_degraded_slots=self.slo_max_degraded,
        )

    def wall_time(self, slot: float, epoch: float) -> float:
        """Unix timestamp the start of virtual ``slot`` maps to."""
        return epoch + slot * self.slot_wall_seconds

    def topology(self) -> Topology:
        """The (deterministic) network this daemon brokers transfers on."""
        return complete_topology(
            self.datacenters, capacity=self.capacity, seed=self.seed
        )

    def link_schedule(self):
        """The loaded :class:`~repro.net.schedule.LinkSchedule`, or None."""
        if not self.link_schedule_path:
            return None
        from repro.net.schedule import LinkSchedule

        try:
            return LinkSchedule.from_file(self.link_schedule_path)
        except Exception as exc:
            raise ServiceError(
                f"cannot load link schedule {self.link_schedule_path}: {exc}"
            ) from exc

    @property
    def endpoint(self) -> str:
        """Human-readable listening endpoint."""
        if self.socket_path:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port}"
