"""The broker fabric: a fleet of per-region shards behind one front end.

One :class:`~repro.service.slotloop.TransferBroker` bounds admission
throughput at a single slot loop and a single ledger.  The fabric goes
planetary: a :class:`~repro.service.router.ShardMap` deterministically
assigns every submission to the shard owning its *source* datacenter,
each shard runs its own broker (own ledger, own checkpoint dir, own
charging clock), and a transfer whose source and destination live on
different shards is decomposed into a **relay** through a configured
gateway datacenter — leg A (source -> gateway) on the source shard,
leg B (gateway -> destination) chained onto the destination shard when
leg A commits.

Two drivers share the relay state machine:

* :class:`BrokerFabric` — synchronous, in-process: a dict of brokers
  ticked in sorted shard order.  The deterministic harness unit tests
  and the conservation drills run against.
* :class:`FleetRouter` — the asyncio front end: listens on the same
  NDJSON protocol a single daemon speaks (clients cannot tell the
  difference), forwards by shard map over per-shard client
  connections, chains relay legs on decision, and *parks* legs whose
  shard dies — a reconnect (lazy, or via the ``resume`` op) resubmits
  them, and the shard's idempotent decision log guarantees each leg is
  decided exactly once.

Relay semantics (documented in docs/SERVICE.md): leg ids are
``<id>#a`` / ``<id>#b``, the deadline budget is split
ceil/floor between the legs, and each leg's deadline is guaranteed by
its own shard's admission — the end-to-end latency additionally pays
the chaining wait for leg A's decision.  A rejected leg A means leg B
is never submitted; the relay's composite decision is ``rejected``.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.service import protocol
from repro.service.config import ServiceConfig
from repro.service.loadgen import _Connection, parse_endpoint
from repro.service.router import DEFAULT_VNODES, ShardMap
from repro.service.slotloop import TransferBroker

#: Relay leg lifecycle.
LEG_WAITING = "waiting"      # planned, not yet submitted to its shard
LEG_INFLIGHT = "inflight"    # submitted; decision pending
LEG_PARKED = "parked"        # shard went down mid-flight; resume later
LEG_DECIDED = "decided"

#: Leg-id separator; a client id containing it is refused at the
#: router so direct ids can never collide with relay leg ids.
LEG_SEP = "#"

#: Backpressure retries per relay leg before the relay fails.
LEG_MAX_RETRIES = 8


class ShardDownError(ServiceError):
    """A shard's connection is gone; the caller parks or reports."""


@dataclass
class FleetConfig:
    """Everything needed to (re)build one broker fleet.

    ``shards`` maps shard name -> endpoint string (``unix:/path`` or
    ``host:port``; empty for the in-process :class:`BrokerFabric`).
    Every shard runs on the *same* topology (``datacenters`` /
    ``capacity`` / ``seed``) — any shard must be able to schedule any
    relay leg — but owns its own ledger, checkpoint dir, and charging
    clock.  ``gateway_dc`` is the hop datacenter cross-shard relays
    route through.
    """

    shards: Dict[str, str]
    gateway_dc: int = 0
    #: "fixed" routes every cross-shard relay through ``gateway_dc``;
    #: "cheapest" picks the gateway per transfer from link prices (and,
    #: in the in-process fabric, live watermark credit).
    gateway_mode: str = "fixed"

    datacenters: int = 10
    capacity: float = 100.0
    seed: int = 0
    scheduler: str = "hybrid"
    backend: Optional[str] = None
    horizon: int = 4096
    max_deadline: int = 16
    max_queue: int = 1024
    max_batch: int = 0
    tick_seconds: float = 0.0
    checkpoint_root: Optional[str] = None
    wal: bool = False
    period_slots: int = 0

    vnodes: int = DEFAULT_VNODES
    map_version: int = 1

    def __post_init__(self) -> None:
        if not self.shards:
            raise ServiceError("a fleet needs at least one shard")
        # ShardMap validates names (unique, non-empty).
        self.shard_map()
        if not 0 <= self.gateway_dc < self.datacenters:
            raise ServiceError(
                f"gateway_dc {self.gateway_dc} is not one of the "
                f"{self.datacenters} datacenters"
            )
        if self.gateway_mode not in ("fixed", "cheapest"):
            raise ServiceError(
                f"gateway_mode must be 'fixed' or 'cheapest', "
                f"got {self.gateway_mode!r}"
            )

    def shard_map(self) -> ShardMap:
        return ShardMap(
            sorted(self.shards), vnodes=self.vnodes, version=self.map_version
        )

    def topology(self):
        """The topology every shard schedules on (same seed everywhere),
        rebuilt locally so routers can price relay hops without asking
        a shard."""
        from repro.net.generators import complete_topology

        return complete_topology(
            self.datacenters, capacity=self.capacity, seed=self.seed
        )

    def shard_config(self, name: str) -> ServiceConfig:
        """The :class:`ServiceConfig` shard ``name`` runs with."""
        if name not in self.shards:
            raise ServiceError(f"unknown shard {name!r}")
        endpoint = self.shards[name]
        host, port, socket_path = (
            parse_endpoint(endpoint) if endpoint else ("127.0.0.1", 0, None)
        )
        checkpoint_dir = (
            os.path.join(self.checkpoint_root, name)
            if self.checkpoint_root
            else None
        )
        return ServiceConfig(
            host=host,
            port=port,
            socket_path=socket_path,
            datacenters=self.datacenters,
            capacity=self.capacity,
            seed=self.seed,
            scheduler=self.scheduler,
            backend=self.backend,
            horizon=self.horizon,
            max_deadline=self.max_deadline,
            tick_seconds=self.tick_seconds,
            max_queue=self.max_queue,
            max_batch=self.max_batch,
            checkpoint_dir=checkpoint_dir,
            wal=self.wal,
            period_slots=self.period_slots,
        )


def split_deadline(deadline_slots: int) -> Tuple[int, int]:
    """Per-leg deadline budgets for a two-leg relay (ceil/floor).

    Both legs get at least one slot; for an odd budget the first leg
    gets the extra slot (it also pays the chaining wait downstream).
    """
    first = max(1, (deadline_slots + 1) // 2)
    second = max(1, deadline_slots - first)
    return first, second


@dataclass
class RelayLeg:
    """One hop of a decomposed cross-shard transfer."""

    leg_id: str
    shard: str
    source: int
    destination: int
    size_gb: float
    deadline_slots: int
    state: str = LEG_WAITING
    record: Optional[Dict[str, Any]] = None

    def submit_fields(self) -> Dict[str, Any]:
        return {
            "id": self.leg_id,
            "source": self.source,
            "destination": self.destination,
            "size_gb": self.size_gb,
            "deadline_slots": self.deadline_slots,
        }

    def submit_message(self) -> Dict[str, Any]:
        return {"op": "submit", **self.submit_fields()}


def select_gateway(
    source: int,
    destination: int,
    size_gb: float,
    topology,
    *,
    watermarks=None,
    fallback: int = 0,
) -> int:
    """The cheapest relay gateway for one source -> destination transfer.

    Scores every third datacenter ``g`` (endpoints excluded — a relay
    always hands off at a genuine intermediate hop) by the marginal
    watermark cost of pushing ``size_gb`` over both hops::

        price(s,g) * max(0, size - credit(s,g))
      + price(g,d) * max(0, size - credit(g,d))

    where ``credit(a, b)`` is the free-GB allowance ``watermarks(a, b)``
    returns for the link — typically the already-paid percentile
    watermark ``X_ab``, under which extra traffic is free.  Without a
    provider the credit is zero everywhere and the score collapses to
    the plain two-hop price.  Deterministic: ties break to the lowest
    datacenter id.  With no eligible candidate (a two-datacenter
    topology) the configured ``fallback`` gateway is returned.
    """
    best = None
    best_score = None
    for dc in topology.datacenters:
        g = dc.id
        if g == source or g == destination:
            continue
        score = 0.0
        for a, b in ((source, g), (g, destination)):
            credit = float(watermarks(a, b)) if watermarks is not None else 0.0
            score += topology.link(a, b).price * max(0.0, size_gb - credit)
        if best_score is None or score < best_score or (
            score == best_score and g < best
        ):
            best = g
            best_score = score
    return fallback if best is None else best


def relay_gateway(legs: List[RelayLeg], default: int) -> int:
    """The gateway a planned relay actually hops through.

    Two legs meet at the gateway; a degenerate single-leg relay (fixed
    gateway coinciding with an endpoint) hops through the configured
    ``default``.
    """
    if len(legs) == 2:
        return legs[0].destination
    return default


def plan_relay(
    fields: Dict[str, Any],
    shard_map: ShardMap,
    gateway_dc: int,
    *,
    gateway_mode: str = "fixed",
    topology=None,
    watermarks=None,
) -> Optional[List[RelayLeg]]:
    """The legs a submission decomposes into, or None for a direct one.

    A transfer is direct when one shard owns both endpoints' source
    routing (i.e. the map sends source and destination to the same
    shard).  Otherwise: leg A (source -> gateway) on the *source*
    shard, leg B (gateway -> destination) on the *destination* shard —
    the gateway hands traffic off between regions, and each region
    bills the leg it carries.  When the gateway coincides with an
    endpoint the relay degenerates to a single leg on the shard that
    carries it.

    With ``gateway_mode="cheapest"`` (and a ``topology``) the gateway
    is picked per transfer by :func:`select_gateway` instead of the
    fixed ``gateway_dc``; ``watermarks`` is an optional
    ``(shard, src, dst) -> free_gb`` provider consulted per hop — leg A
    is billed by the source's shard, leg B by the destination's.
    """
    source = int(fields["source"])
    destination = int(fields["destination"])
    src_shard = shard_map.shard_for(source)
    dst_shard = shard_map.shard_for(destination)
    if src_shard == dst_shard:
        return None
    cid = fields["id"]
    size = float(fields["size_gb"])
    deadline = int(fields["deadline_slots"])
    if gateway_mode == "cheapest" and topology is not None:
        credit = None
        if watermarks is not None:
            def credit(a, b, _s=source, _ss=src_shard, _ds=dst_shard):
                return watermarks(_ss if a == _s else _ds, a, b)
        gateway_dc = select_gateway(
            source, destination, size, topology,
            watermarks=credit, fallback=gateway_dc,
        )
    if gateway_dc == source:
        # The transfer already starts at the gateway: one ingress leg,
        # billed by the destination's shard.
        return [
            RelayLeg(f"{cid}{LEG_SEP}b", dst_shard, source, destination,
                     size, deadline)
        ]
    if gateway_dc == destination:
        # The transfer ends at the gateway: one egress leg on the
        # source's shard.
        return [
            RelayLeg(f"{cid}{LEG_SEP}a", src_shard, source, destination,
                     size, deadline)
        ]
    first, second = split_deadline(deadline)
    return [
        RelayLeg(f"{cid}{LEG_SEP}a", src_shard, source, gateway_dc,
                 size, first),
        RelayLeg(f"{cid}{LEG_SEP}b", dst_shard, gateway_dc, destination,
                 size, second),
    ]


class Relay:
    """One cross-shard transfer's legs and composite outcome."""

    def __init__(self, client_id: str, legs: List[RelayLeg], gateway_dc: int):
        self.client_id = client_id
        self.legs = legs
        self.gateway_dc = gateway_dc
        self.failure: Optional[Dict[str, Any]] = None
        #: Router-side reply target ``(writer, lock)``; rebound when
        #: the client reconnects.
        self.reply: Optional[Tuple[Any, Any]] = None
        #: True while a driver task owns this relay (prevents a resume
        #: from double-driving).
        self.driving = False

    def next_leg(self) -> Optional[RelayLeg]:
        """The first undecided leg, or None once settled."""
        if self.failure is not None:
            return None
        for leg in self.legs:
            if leg.state != LEG_DECIDED:
                return leg
            if leg.record and leg.record.get("decision") != "admitted":
                # A rejected leg ends the relay; later legs are never
                # submitted (nothing arrives at the gateway to forward).
                return None
        return None

    def on_leg_decision(self, leg_id: str, record: Dict[str, Any]) -> None:
        for leg in self.legs:
            if leg.leg_id == leg_id:
                leg.state = LEG_DECIDED
                leg.record = dict(record)
                return
        raise ServiceError(f"relay {self.client_id!r} has no leg {leg_id!r}")

    def fail(self, leg: RelayLeg, response: Dict[str, Any]) -> None:
        self.failure = {
            "leg": leg.leg_id,
            "shard": leg.shard,
            "error": response.get("error", "failed"),
            "message": response.get("message", ""),
        }

    @property
    def settled(self) -> bool:
        return self.next_leg() is None

    def leg_states(self) -> Dict[str, str]:
        return {leg.leg_id: leg.state for leg in self.legs}

    def compose(self) -> Dict[str, Any]:
        """The fabric-level decision record for the whole relay.

        ``admitted`` only when every leg was; latency fields compose
        conservatively (waits add, the decision time is the slowest
        leg's).  ``completion_slot``/``deadline_slot`` are the final
        leg's — each shard's clock is its own, so these are
        per-shard-slot values, meaningful leg by leg.
        """
        decided = [leg for leg in self.legs if leg.record is not None]
        if self.failure is not None:
            decision = "failed"
        elif all(
            leg.record.get("decision") == "admitted" for leg in decided
        ) and len(decided) == len(self.legs):
            decision = "admitted"
        else:
            decision = "rejected"
        last = decided[-1].record if decided else {}
        record: Dict[str, Any] = {
            "id": self.client_id,
            "decision": decision,
            "relay": {
                "gateway": self.gateway_dc,
                "legs": [
                    {
                        "id": leg.leg_id,
                        "shard": leg.shard,
                        "source": leg.source,
                        "destination": leg.destination,
                        "deadline_slots": leg.deadline_slots,
                        "state": leg.state,
                        **(
                            {
                                "decision": leg.record.get("decision"),
                                "slot": leg.record.get("slot"),
                                "completion_slot": leg.record.get(
                                    "completion_slot"
                                ),
                            }
                            if leg.record
                            else {}
                        ),
                    }
                    for leg in self.legs
                ],
            },
            "shards": sorted({leg.shard for leg in self.legs}),
            "slot": last.get("slot"),
            "release_slot": (decided[0].record or {}).get("release_slot")
            if decided else None,
            "completion_slot": last.get("completion_slot"),
            "deadline_slot": last.get("deadline_slot"),
            "wait_s": round(
                sum(float(leg.record.get("wait_s", 0.0)) for leg in decided), 6
            ),
            "decision_s": round(
                max(
                    (float(leg.record.get("decision_s", 0.0)) for leg in decided),
                    default=0.0,
                ),
                6,
            ),
            "cost_delta": round(
                sum(float(leg.record.get("cost_delta", 0.0)) for leg in decided),
                9,
            ),
        }
        if self.failure is not None:
            record["failure"] = dict(self.failure)
        return record


class RelayTracker:
    """Every live (and settled) relay, indexed by transfer and leg id."""

    def __init__(self) -> None:
        self.relays: Dict[str, Relay] = {}
        self._leg_owner: Dict[str, str] = {}

    def register(self, relay: Relay) -> None:
        if relay.client_id in self.relays:
            raise ServiceError(
                f"relay {relay.client_id!r} is already registered"
            )
        self.relays[relay.client_id] = relay
        for leg in relay.legs:
            self._leg_owner[leg.leg_id] = relay.client_id

    def get(self, client_id: str) -> Optional[Relay]:
        return self.relays.get(client_id)

    def relay_for_leg(self, leg_id: str) -> Optional[Relay]:
        owner = self._leg_owner.get(leg_id)
        return self.relays.get(owner) if owner else None

    def active(self) -> List[Relay]:
        return [r for r in self.relays.values() if not r.settled]

    def parked_on(self, shard: str) -> List[Tuple[Relay, RelayLeg]]:
        """Parked (or stranded in-flight) legs owned by ``shard``."""
        out = []
        for relay in self.relays.values():
            if relay.settled:
                continue
            for leg in relay.legs:
                if leg.shard == shard and leg.state in (
                    LEG_PARKED, LEG_INFLIGHT
                ):
                    out.append((relay, leg))
        return out

    def parked_count(self) -> int:
        return sum(
            1
            for relay in self.relays.values()
            if not relay.settled
            for leg in relay.legs
            if leg.state == LEG_PARKED
        )


#: broker.stats() keys that add across shards.
_STAT_SUM_KEYS = (
    "submitted", "admitted", "rejected", "backpressured", "slots",
    "batches", "queue_depth", "escalations", "fast_slots", "degraded",
    "lp_skipped", "checkpoints", "wal_records", "wal_bytes",
    "snapshot_bytes", "cost_per_slot", "periods_banked",
)
#: Keys where the fleet figure is the furthest shard's.
_STAT_MAX_KEYS = ("next_slot",)


def rollup_stats(per_shard: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Fleet-level totals over per-shard ``stats`` bodies."""
    fleet: Dict[str, Any] = {"shards": len(per_shard)}
    for key in _STAT_SUM_KEYS:
        fleet[key] = 0
    for key in _STAT_MAX_KEYS:
        fleet[key] = 0
    fleet["draining"] = False
    for stats in per_shard.values():
        for key in _STAT_SUM_KEYS:
            value = stats.get(key, 0)
            if isinstance(value, (int, float)):
                fleet[key] += value
        for key in _STAT_MAX_KEYS:
            value = stats.get(key, 0)
            if isinstance(value, (int, float)):
                fleet[key] = max(fleet[key], value)
        fleet["draining"] = fleet["draining"] or bool(stats.get("draining"))
    fleet["cost_per_slot"] = round(fleet["cost_per_slot"], 6)
    return fleet


class BrokerFabric:
    """A synchronous in-process fleet: the deterministic test harness.

    Owns one :class:`TransferBroker` per shard and ticks them in
    sorted shard order; relay legs decided in one shard's tick are
    chained onto the next shard immediately, so a relay whose
    destination shard sorts later can complete within a single fabric
    round.
    """

    def __init__(
        self,
        fleet: FleetConfig,
        configs: Optional[Dict[str, ServiceConfig]] = None,
    ):
        self.fleet = fleet
        self.map = fleet.shard_map()
        self.brokers: Dict[str, TransferBroker] = {
            name: TransferBroker(
                configs[name] if configs else fleet.shard_config(name)
            )
            for name in self.map.shards
        }
        self.tracker = RelayTracker()
        #: Fabric-level final records (direct + composed relays).
        self.decisions: Dict[str, Dict[str, Any]] = {}
        self.counts = {"submitted": 0, "direct": 0, "relayed": 0}
        self._topology = (
            fleet.topology() if fleet.gateway_mode == "cheapest" else None
        )

    def shard_of(self, source: int) -> str:
        return self.map.shard_for(source)

    def _watermarks(self, shard: str, src: int, dst: int) -> float:
        """Free-GB credit on (src, dst) as billed by ``shard``: the
        paid watermark its broker already carries for the link."""
        state = self.brokers[shard].scheduler.state
        return state.charged_volume(src, dst)

    def submit(self, fields: Dict[str, Any]) -> Tuple[str, Any]:
        """Route one validated submission; mirrors broker.submit."""
        cid = fields["id"]
        known = self.decisions.get(cid)
        if known is not None:
            return "decided", known
        relay = self.tracker.get(cid)
        if relay is not None:
            return "pending", relay
        legs = plan_relay(
            fields, self.map, self.fleet.gateway_dc,
            gateway_mode=self.fleet.gateway_mode,
            topology=self._topology,
            watermarks=self._watermarks,
        )
        self.counts["submitted"] += 1
        if legs is None:
            shard = self.map.shard_for(int(fields["source"]))
            outcome, value = self.brokers[shard].submit(dict(fields))
            self.counts["direct"] += 1
            if outcome == "decided":
                record = {**value, "shard": shard}
                self.decisions[cid] = record
                return "decided", record
            return "pending", value
        relay = Relay(cid, legs, relay_gateway(legs, self.fleet.gateway_dc))
        self.tracker.register(relay)
        self.counts["relayed"] += 1
        self._advance(relay)
        return "pending", relay

    def _advance(self, relay: Relay) -> None:
        """Submit the relay's next waiting leg(s) to their shards."""
        leg = relay.next_leg()
        while leg is not None and leg.state == LEG_WAITING:
            outcome, value = self.brokers[leg.shard].submit(
                leg.submit_fields()
            )
            if outcome == "decided":
                relay.on_leg_decision(leg.leg_id, value)
                leg = relay.next_leg()
                continue
            leg.state = LEG_INFLIGHT
            break

    def process_slot(self) -> List[Dict[str, Any]]:
        """Tick every shard once; returns fabric-level final records."""
        finals: List[Dict[str, Any]] = []
        for name in self.map.shards:
            for pending, record in self.brokers[name].process_slot():
                finals.extend(self._absorb(name, pending.client_id, record))
        return finals

    def _absorb(
        self, shard: str, rid: str, record: Dict[str, Any]
    ) -> List[Dict[str, Any]]:
        relay = self.tracker.relay_for_leg(rid)
        if relay is None:
            final = {**record, "shard": shard}
            self.decisions[rid] = final
            return [final]
        relay.on_leg_decision(rid, record)
        if relay.settled:
            final = relay.compose()
            self.decisions[relay.client_id] = final
            return [final]
        self._advance(relay)
        return []

    def run_until_settled(self, max_slots: int = 256) -> List[Dict[str, Any]]:
        """Tick until every queue is empty and every relay settled."""
        finals: List[Dict[str, Any]] = []
        for _ in range(max_slots):
            finals.extend(self.process_slot())
            busy = any(b.queue.depth for b in self.brokers.values())
            if not busy and not self.tracker.active():
                return finals
        raise ServiceError(
            f"fabric did not settle within {max_slots} slots"
        )

    def status(self, client_id: str) -> Dict[str, Any]:
        known = self.decisions.get(client_id)
        if known is not None:
            return {"state": known["decision"], "decision": known}
        relay = self.tracker.get(client_id)
        if relay is not None:
            return {"state": "relaying", "legs": relay.leg_states()}
        shard = None
        for name, broker in self.brokers.items():
            if broker.queue.contains(client_id):
                shard = name
                break
        if shard is not None:
            return {"state": "pending", "shard": shard}
        return {"state": "unknown"}

    def stats(self) -> Dict[str, Any]:
        per_shard = {
            name: broker.stats() for name, broker in self.brokers.items()
        }
        return {
            "router": {
                **self.counts,
                "relays_active": len(self.tracker.active()),
                "map_version": self.map.version,
            },
            "shard_map": self.map.to_payload(),
            "shards": per_shard,
            "fleet": rollup_stats(per_shard),
        }


class FleetRouter:
    """The asyncio front end: one listener, N shard connections.

    Speaks the same NDJSON protocol as a single daemon, so existing
    clients (loadgen, watch, tests) work unchanged against a fleet.
    Routing is by shard map on the submission's source datacenter;
    cross-shard submissions become relays driven by background tasks.
    A shard whose connection drops is marked *down*: direct
    submissions for it are answered with a ``shard-down`` error (and a
    retry-after), relay legs on it park.  Reconnection is lazy (next
    use) or explicit (the ``resume`` op); either path resubmits parked
    legs, and the shard's idempotent decision log makes the resume
    exactly-once.
    """

    def __init__(
        self,
        fleet: FleetConfig,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: Optional[str] = None,
    ):
        self.fleet = fleet
        self.map = fleet.shard_map()
        self.host = host
        self.listen_port = port
        self.socket_path = socket_path
        self.tracker = RelayTracker()
        self.decisions: Dict[str, Dict[str, Any]] = {}
        #: Direct client id -> owning shard (for status forwarding).
        self.routes: Dict[str, str] = {}
        self.down: Dict[str, str] = {}
        self.counts = {
            "submitted": 0, "direct": 0, "relayed": 0,
            "routed_errors": 0, "parked_legs": 0, "resumed_legs": 0,
        }
        self._conns: Dict[str, _Connection] = {}
        self._conn_locks: Dict[str, asyncio.Lock] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopped = asyncio.Event()
        # Cheapest-gateway routing prices hops on a local rebuild of
        # the shared topology; shard watermarks live in other
        # processes, so the router scores by price alone.
        self._topology = (
            fleet.topology() if fleet.gateway_mode == "cheapest" else None
        )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self.socket_path:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.socket_path,
                limit=protocol.MAX_LINE_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.listen_port,
                limit=protocol.MAX_LINE_BYTES,
            )

    async def run_until_stopped(self) -> None:
        await self._stopped.wait()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._conns.values()):
            await conn.close()
        self._conns.clear()
        self._stopped.set()

    @property
    def port(self) -> Optional[int]:
        if self._server is None or self.socket_path:
            return None
        return self._server.sockets[0].getsockname()[1]

    @property
    def endpoint(self) -> str:
        if self.socket_path:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port or self.listen_port}"

    # -- shard connections -------------------------------------------------

    async def _conn(self, shard: str) -> _Connection:
        conn = self._conns.get(shard)
        if conn is not None and not conn.is_closed():
            return conn
        # Serialize setup per shard: a burst of concurrent submissions
        # must share one connection, not open (and leak) one each.
        lock = self._conn_locks.setdefault(shard, asyncio.Lock())
        async with lock:
            conn = self._conns.get(shard)
            if conn is not None:
                if not conn.is_closed():
                    return conn
                # The shard died with nothing in flight: the read loop
                # saw EOF with no waiters to fail, so nothing marked it
                # down.  Evict and reconnect — a still-dead shard makes
                # the reconnect raise ShardDownError below.
                self._conns.pop(shard, None)
                await conn.close()
            host, port, socket_path = parse_endpoint(self.fleet.shards[shard])
            try:
                conn = await _Connection.open(host, port, socket_path)
            except (OSError, ConnectionError) as exc:
                self.down[shard] = str(exc)
                raise ShardDownError(
                    f"shard {shard!r} is unreachable: {exc}"
                ) from exc
            self._conns[shard] = conn
            if self.down.pop(shard, None) is not None:
                self._resume_shard_legs(shard)
            return conn

    async def _shard_call(
        self, shard: str, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        conn = await self._conn(shard)
        try:
            return await conn.call(dict(message))
        except (ServiceError, OSError, ConnectionError) as exc:
            self._mark_down(shard, exc)
            raise ShardDownError(f"shard {shard!r} dropped: {exc}") from exc

    def _mark_down(self, shard: str, exc: Exception) -> None:
        self.down[shard] = str(exc)
        conn = self._conns.pop(shard, None)
        if conn is not None:
            asyncio.get_running_loop().create_task(conn.close())

    def _resume_shard_legs(self, shard: str) -> None:
        """Re-drive every relay with a parked/stranded leg on ``shard``.

        The resubmit is exactly-once by construction: the shard either
        still holds the leg queued (WAL-replayed admission — the
        broker *attaches* our fresh waiter), already decided it
        (cached record comes straight back), or never heard of it
        (journal lost with the crash — a fresh submission).  All three
        end in exactly one decision per leg.
        """
        for relay, leg in self.tracker.parked_on(shard):
            leg.state = LEG_WAITING
            self.counts["resumed_legs"] += 1
            if not relay.driving:
                asyncio.get_running_loop().create_task(
                    self._drive_relay(relay)
                )

    # -- client handling ---------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        lock = asyncio.Lock()
        tasks = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    await self._send(
                        writer, lock,
                        protocol.error_response(
                            "?", "invalid",
                            f"request line exceeds {protocol.MAX_LINE_BYTES} "
                            "bytes; closing connection",
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._dispatch(line, writer, lock, tasks)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            for task in tasks:
                task.cancel()
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _dispatch(self, line, writer, lock, tasks) -> None:
        from repro.errors import ProtocolError

        try:
            message = protocol.decode_line(line)
        except ProtocolError as exc:
            await self._send(
                writer, lock, protocol.error_response("?", "invalid", str(exc))
            )
            return
        op = message["op"]
        if op == "submit":
            await self._handle_submit(message, writer, lock, tasks)
        elif op == "status":
            await self._handle_status(message, writer, lock)
        elif op == "stats":
            await self._handle_stats(writer, lock)
        elif op == "metrics":
            await self._handle_metrics(message, writer, lock)
        elif op == "tick":
            await self._handle_tick(writer, lock)
        elif op == "drain":
            await self._handle_drain(writer, lock)
        elif op == "resume":
            await self._handle_resume(message, writer, lock)
        elif op == "ping":
            await self._send(
                writer, lock,
                {"ok": True, "op": "ping",
                 "version": protocol.PROTOCOL_VERSION, "role": "router",
                 "shards": self.map.shards,
                 "map_version": self.map.version},
            )
        else:
            await self._send(
                writer, lock,
                protocol.error_response(
                    op, "unsupported",
                    f"op {op!r} is not served by the router",
                ),
            )

    async def _handle_submit(self, message, writer, lock, tasks) -> None:
        from repro.errors import ProtocolError

        try:
            fields = protocol.validate_submit(
                message, self.fleet.max_deadline
            )
        except ProtocolError as exc:
            await self._send(
                writer, lock,
                protocol.error_response(
                    "submit", "invalid", str(exc), id=message.get("id")
                ),
            )
            return
        cid = fields["id"]
        if LEG_SEP in cid:
            await self._send(
                writer, lock,
                protocol.error_response(
                    "submit", "invalid",
                    f"id may not contain {LEG_SEP!r} (reserved for relay "
                    "leg ids)", id=cid,
                ),
            )
            return
        known = self.decisions.get(cid)
        if known is not None:
            await self._send(
                writer, lock,
                {"ok": True, "op": "submit", "cached": True, **known},
            )
            return
        relay = self.tracker.get(cid)
        if relay is not None:
            # A reconnecting client re-parks on its in-flight relay.
            relay.reply = (writer, lock)
            return
        legs = plan_relay(
            fields, self.map, self.fleet.gateway_dc,
            gateway_mode=self.fleet.gateway_mode,
            topology=self._topology,
        )
        self.counts["submitted"] += 1
        if legs is None:
            shard = self.map.shard_for(fields["source"])
            self.routes[cid] = shard
            self.counts["direct"] += 1
            task = asyncio.create_task(
                self._forward_direct(shard, fields, writer, lock)
            )
        else:
            relay = Relay(cid, legs, relay_gateway(legs, self.fleet.gateway_dc))
            relay.reply = (writer, lock)
            self.tracker.register(relay)
            self.counts["relayed"] += 1
            task = asyncio.create_task(self._drive_relay(relay))
        tasks.add(task)
        task.add_done_callback(tasks.discard)

    async def _forward_direct(self, shard, fields, writer, lock) -> None:
        try:
            response = await self._shard_call(
                shard, {"op": "submit", **fields}
            )
        except ShardDownError as exc:
            self.counts["routed_errors"] += 1
            await self._send(
                writer, lock,
                protocol.error_response(
                    "submit", "shard-down", str(exc),
                    id=fields["id"], shard=shard, retry_after_s=1.0,
                ),
            )
            return
        if response.get("ok") and "decision" in response:
            record = {
                k: v for k, v in response.items()
                if k not in ("ok", "op", "cached")
            }
            record["shard"] = shard
            self.decisions[fields["id"]] = record
        await self._send(writer, lock, {**response, "shard": shard})

    async def _drive_relay(self, relay: Relay) -> None:
        """Submit legs in order until the relay settles or parks."""
        relay.driving = True
        retries = 0
        try:
            while True:
                leg = relay.next_leg()
                if leg is None:
                    break
                leg.state = LEG_INFLIGHT
                try:
                    response = await self._shard_call(
                        leg.shard, leg.submit_message()
                    )
                except ShardDownError:
                    leg.state = LEG_PARKED
                    self.counts["parked_legs"] += 1
                    return
                if not response.get("ok"):
                    if (
                        response.get("error") == "backpressure"
                        and retries < LEG_MAX_RETRIES
                    ):
                        retries += 1
                        leg.state = LEG_WAITING
                        await asyncio.sleep(
                            float(response.get("retry_after_s", 0.1))
                        )
                        continue
                    relay.fail(leg, response)
                    break
                record = {
                    k: v for k, v in response.items()
                    if k not in ("ok", "op", "cached")
                }
                relay.on_leg_decision(leg.leg_id, record)
            final = relay.compose()
            self.decisions[relay.client_id] = final
            ok = final["decision"] != "failed"
            if not ok:
                self.counts["routed_errors"] += 1
            await self._reply(
                relay, {"ok": ok, "op": "submit", **final}
            )
        finally:
            relay.driving = False

    async def _reply(self, relay: Relay, message: Dict[str, Any]) -> None:
        if relay.reply is None:
            return
        writer, lock = relay.reply
        if writer.is_closing():
            return
        await self._send(writer, lock, message)

    async def _handle_status(self, message, writer, lock) -> None:
        cid = str(message.get("id", ""))
        known = self.decisions.get(cid)
        if known is not None:
            await self._send(
                writer, lock,
                {"ok": True, "op": "status", "id": cid,
                 "state": known["decision"], "decision": known},
            )
            return
        relay = self.tracker.get(cid)
        if relay is not None:
            await self._send(
                writer, lock,
                {"ok": True, "op": "status", "id": cid, "state": "relaying",
                 "legs": relay.leg_states()},
            )
            return
        shard = self.routes.get(cid)
        if shard is not None:
            try:
                response = await self._shard_call(
                    shard, {"op": "status", "id": cid}
                )
            except ShardDownError as exc:
                await self._send(
                    writer, lock,
                    protocol.error_response(
                        "status", "shard-down", str(exc), id=cid, shard=shard
                    ),
                )
                return
            await self._send(writer, lock, {**response, "shard": shard})
            return
        await self._send(
            writer, lock,
            {"ok": True, "op": "status", "id": cid, "state": "unknown"},
        )

    async def _gather_shards(
        self, message: Dict[str, Any]
    ) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, str]]:
        """One op fanned out to every shard; returns (live, down)."""
        live: Dict[str, Dict[str, Any]] = {}
        failed: Dict[str, str] = {}
        for name in self.map.shards:
            try:
                response = await self._shard_call(name, dict(message))
            except ShardDownError as exc:
                failed[name] = str(exc)
                continue
            live[name] = {
                k: v for k, v in response.items() if k not in ("ok", "op")
            }
        return live, failed

    def _router_stats(self) -> Dict[str, Any]:
        return {
            **self.counts,
            "relays_active": len(self.tracker.active()),
            "parked": self.tracker.parked_count(),
            "map_version": self.map.version,
            "down": sorted(self.down),
        }

    async def _handle_stats(self, writer, lock) -> None:
        live, failed = await self._gather_shards({"op": "stats"})
        shards: Dict[str, Any] = dict(live)
        for name, reason in failed.items():
            shards[name] = {"down": reason}
        await self._send(
            writer, lock,
            {"ok": True, "op": "stats", "role": "router",
             "endpoint": self.endpoint,
             "router": self._router_stats(),
             "shard_map": self.map.to_payload(),
             "shards": shards,
             "fleet": rollup_stats(live)},
        )

    async def _handle_metrics(self, message, writer, lock) -> None:
        from repro.obs.metrics import rollup_snapshots

        fmt = message.get("format", "json")
        if fmt != "json":
            await self._send(
                writer, lock,
                protocol.error_response(
                    "metrics", "unsupported",
                    "the router serves json only; scrape prometheus text "
                    "from each shard's own metrics op",
                ),
            )
            return
        live, failed = await self._gather_shards({"op": "metrics"})
        rollup = rollup_snapshots(
            {name: body.get("snapshot", {}) for name, body in live.items()}
        )
        stats_live = {
            name: body.get("stats", {}) for name, body in live.items()
        }
        await self._send(
            writer, lock,
            {"ok": True, "op": "metrics",
             "version": protocol.PROTOCOL_VERSION, "format": "json",
             "role": "router",
             "router": self._router_stats(),
             "shards": live,
             "down": failed,
             "stats": rollup_stats(stats_live),
             "snapshot": rollup},
        )

    async def _handle_tick(self, writer, lock) -> None:
        """Fan a manual tick out to every live shard (sorted order).

        Relay chaining rides on decision responses delivered *after*
        each shard's tick ack, so a tick's response does not imply the
        chained legs have been submitted yet — poll ``status`` (tests)
        or run automatic clocks (production).
        """
        slots: Dict[str, Any] = {}
        for name in self.map.shards:
            try:
                response = await self._shard_call(name, {"op": "tick"})
            except ShardDownError as exc:
                slots[name] = {"down": str(exc)}
                continue
            if response.get("ok"):
                slots[name] = response.get("next_slot")
            else:
                slots[name] = {"error": response.get("message")}
        # Let decision deliveries and chain tasks interleave before the
        # ack; chaining may still need further ticks to decide leg B.
        for _ in range(3):
            await asyncio.sleep(0)
        await self._send(
            writer, lock, {"ok": True, "op": "tick", "shards": slots}
        )

    async def _handle_resume(self, message, writer, lock) -> None:
        wanted = message.get("shard")
        targets = [wanted] if wanted else sorted(self.down)
        resumed, still_down = [], []
        for name in targets:
            if name not in self.fleet.shards:
                await self._send(
                    writer, lock,
                    protocol.error_response(
                        "resume", "invalid", f"unknown shard {name!r}"
                    ),
                )
                return
            try:
                await self._conn(name)
                resumed.append(name)
            except ShardDownError:
                still_down.append(name)
        await self._send(
            writer, lock,
            {"ok": True, "op": "resume", "resumed": resumed,
             "still_down": still_down,
             "parked": self.tracker.parked_count()},
        )

    async def _handle_drain(self, writer, lock) -> None:
        live, failed = await self._gather_shards({"op": "drain"})
        await self._send(
            writer, lock,
            {"ok": True, "op": "drain", "drained": not failed,
             "shards": {
                 **{name: body for name, body in live.items()},
                 **{name: {"down": reason} for name, reason in failed.items()},
             },
             "fleet": rollup_stats(live)},
        )
        await self.stop()

    @staticmethod
    async def _send(writer, lock, message: Dict[str, Any]) -> None:
        async with lock:
            writer.write(protocol.encode(message))
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                await writer.drain()


async def serve_fleet(
    fleet: FleetConfig,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    socket_path: Optional[str] = None,
) -> FleetRouter:
    """Start a router and block until it drains; returns it (stopped)."""
    router = FleetRouter(
        fleet, host=host, port=port, socket_path=socket_path
    )
    await router.start()
    try:
        await router.run_until_stopped()
    finally:
        await router.stop()
    return router
