"""The bounded intake queue between the wire and the slot loop.

Accepted submissions wait here until the next virtual-slot tick drains
them into a batch ``K(t)``.  The queue has an explicit depth bound —
when it saturates the daemon *rejects with retry-after* instead of
buffering without limit, which is what keeps a surge from turning into
unbounded memory growth and seconds-long admission latency.  The
retry-after estimate is proportional to how many ticks the backlog
needs to clear at the configured batch size.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import BackpressureError
from repro.obs import registry as obs


@dataclass
class PendingTransfer:
    """One accepted submission waiting for its slot.

    ``waiter`` is an ``asyncio.Future`` the server parks the client's
    response on; the synchronous broker core leaves it ``None`` and
    callers read the decision log instead.
    """

    client_id: str
    source: int
    destination: int
    size_gb: float
    deadline_slots: int
    enqueued_at: float = field(default_factory=time.perf_counter)
    waiter: Optional[Any] = None
    #: Trace id assigned at intake; every event on this submission's
    #: decision path (intake -> batch -> lane -> solve -> charge)
    #: carries it, and it survives checkpoints so a resumed daemon's
    #: events still link up.
    trace_id: str = ""

    def to_payload(self) -> Dict[str, Any]:
        """The checkpoint representation (waiters don't survive a crash)."""
        return {
            "id": self.client_id,
            "source": self.source,
            "destination": self.destination,
            "size_gb": self.size_gb,
            "deadline_slots": self.deadline_slots,
            "trace": self.trace_id,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "PendingTransfer":
        return cls(
            client_id=str(payload["id"]),
            source=int(payload["source"]),
            destination=int(payload["destination"]),
            size_gb=float(payload["size_gb"]),
            deadline_slots=int(payload["deadline_slots"]),
            trace_id=str(payload.get("trace", "")),
        )


class IntakeQueue:
    """FIFO of :class:`PendingTransfer` with a hard depth bound.

    ``offer`` raises :class:`BackpressureError` (with a retry-after
    estimate) at the bound; ``drain`` pops up to one batch in arrival
    order.  Arrival order is part of the service's determinism story:
    identical submission sequences produce identical batches, hence
    identical schedules.
    """

    def __init__(self, max_depth: int, tick_seconds: float, max_batch: int = 0):
        self.max_depth = max_depth
        self.tick_seconds = tick_seconds
        self.max_batch = max_batch
        self._queue: deque = deque()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def depth(self) -> int:
        return len(self._queue)

    def retry_after(self) -> float:
        """Ticks needed to clear the backlog, in seconds (>= one tick)."""
        tick = self.tick_seconds or 1.0
        per_slot = self.max_batch or max(1, self.max_depth)
        backlog_ticks = max(1, -(-len(self._queue) // per_slot))
        return round(backlog_ticks * tick, 6)

    def offer(self, pending: PendingTransfer) -> None:
        """Enqueue, or raise :class:`BackpressureError` at the bound."""
        if len(self._queue) >= self.max_depth:
            obs.counter("service.backpressure")
            raise BackpressureError(
                f"intake queue is full ({self.max_depth} pending)",
                retry_after_s=self.retry_after(),
            )
        self._queue.append(pending)
        obs.gauge("service.queue_depth", len(self._queue))

    def requeue_front(self, items: List[PendingTransfer]) -> None:
        """Put restored checkpoint entries back ahead of live arrivals."""
        for pending in reversed(items):
            self._queue.appendleft(pending)

    def drain(self) -> List[PendingTransfer]:
        """Pop the next slot's batch (whole queue when ``max_batch=0``)."""
        limit = self.max_batch or len(self._queue)
        batch = []
        while self._queue and len(batch) < limit:
            batch.append(self._queue.popleft())
        return batch

    def contains(self, client_id: str) -> bool:
        """True while a submission with this id is waiting for a slot."""
        return any(pending.client_id == client_id for pending in self._queue)

    def find(self, client_id: str) -> Optional[PendingTransfer]:
        """The waiting entry with this id, or None.

        The duplicate-submit attach path reads (and re-parks a waiter
        on) the live entry without disturbing its queue position.
        """
        for pending in self._queue:
            if pending.client_id == client_id:
                return pending
        return None

    def pending_ids(self) -> List[str]:
        """Client ids of everything still waiting, in arrival order."""
        return [pending.client_id for pending in self._queue]

    def remove(self, client_id: str) -> Optional[PendingTransfer]:
        """Pull one waiting submission back out (journal-failure rollback)."""
        for pending in self._queue:
            if pending.client_id == client_id:
                self._queue.remove(pending)
                return pending
        return None

    def take_ids(self, client_ids: List[str]) -> List[PendingTransfer]:
        """Remove and return the named submissions, in the given order.

        The WAL replay path: a commit record names exactly which queued
        ids its slot batched, and replay must rebuild that batch —
        whatever else has been queued around them.  Raises ``KeyError``
        on an id that is not waiting (a WAL/queue inconsistency the
        caller escalates).
        """
        by_id: Dict[str, PendingTransfer] = {}
        for pending in self._queue:
            by_id.setdefault(pending.client_id, pending)
        missing = [cid for cid in client_ids if cid not in by_id]
        if missing:
            raise KeyError(
                f"ids named by a WAL commit are not in the queue: {missing}"
            )
        taken = [by_id[cid] for cid in client_ids]
        for pending in taken:
            self._queue.remove(pending)
        return taken

    def snapshot_payloads(self) -> List[Dict[str, Any]]:
        """Checkpoint encoding of everything still waiting."""
        return [pending.to_payload() for pending in self._queue]
