"""A load generator for the transfer-broker daemon.

Replays a :mod:`repro.traffic` workload (or an explicit trace file)
against a running daemon at a configurable request rate, obeying
backpressure (honouring ``retry_after_s`` with a bounded retry budget),
and reports sustained throughput plus latency percentiles.

Three latencies are tracked per request, matching the service's
admission-latency definition (docs/SERVICE.md):

* ``rtt_s`` — submit-to-response round trip as the client sees it
  (includes the intentional batching wait for the next slot tick);
* ``wait_s`` — server-reported queue wait (submission to slot tick);
* ``decision_s`` — server-reported slot-tick-to-decision time, the
  quantity the service gates under one tick.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.service import protocol
from repro.traffic.spec import TransferRequest


def parse_endpoint(spec: str) -> tuple:
    """``(host, port, socket_path)`` for one endpoint string.

    Accepted forms: ``unix:/path`` (or a bare filesystem path starting
    with ``/`` or ``.``), ``host:port``, and ``:port`` (localhost).
    This is the one shared parser for every multi-endpoint surface —
    fleet loadgen, the watch dashboard, and ``repro fleet``.
    """
    spec = spec.strip()
    if not spec:
        raise ServiceError("empty endpoint")
    if spec.startswith("unix:"):
        return "", 0, spec[len("unix:"):]
    if spec.startswith(("/", "./", "~")):
        return "", 0, spec
    host, sep, port = spec.rpartition(":")
    if not sep:
        raise ServiceError(
            f"endpoint {spec!r} is neither unix:/path nor host:port"
        )
    try:
        port_num = int(port)
    except ValueError as exc:
        raise ServiceError(f"endpoint {spec!r} has a bad port") from exc
    return host or "127.0.0.1", port_num, None


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))
    return ordered[int(rank) - 1]


@dataclass
class LoadGenResult:
    """Everything one load-generator run measured."""

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    failed: int = 0
    backpressure_retries: int = 0
    deadline_misses: int = 0
    elapsed_s: float = 0.0
    rtts_s: List[float] = field(default_factory=list)
    waits_s: List[float] = field(default_factory=list)
    decisions_s: List[float] = field(default_factory=list)
    drained: bool = False
    stats: Dict[str, Any] = field(default_factory=dict)
    #: "open" (paced arrivals) or "closed" (fixed concurrency).
    mode: str = "open"
    #: Concurrency of a closed-loop run (0 in open-loop mode).
    outstanding: int = 0

    @property
    def throughput_per_min(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return 60.0 * self.submitted / self.elapsed_s

    @property
    def capacity_per_s(self) -> float:
        """Sustained decisions per second at fixed concurrency — the
        capacity a closed-loop run measures (req/s; also defined, if
        less meaningful, for open-loop runs)."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.submitted / self.elapsed_s

    @classmethod
    def merge(cls, results: Sequence["LoadGenResult"]) -> "LoadGenResult":
        """Fold per-shard runs into one fleet-level result.

        Counts add; latency samples concatenate (so fleet percentiles
        are over every request); ``elapsed_s`` is the *slowest* shard's
        wall time — the runs were concurrent, so fleet capacity is
        total submissions over that shared wall clock.
        """
        merged = cls()
        for result in results:
            merged.submitted += result.submitted
            merged.admitted += result.admitted
            merged.rejected += result.rejected
            merged.failed += result.failed
            merged.backpressure_retries += result.backpressure_retries
            merged.deadline_misses += result.deadline_misses
            merged.elapsed_s = max(merged.elapsed_s, result.elapsed_s)
            merged.rtts_s.extend(result.rtts_s)
            merged.waits_s.extend(result.waits_s)
            merged.decisions_s.extend(result.decisions_s)
            merged.outstanding += result.outstanding
        if results:
            merged.mode = results[0].mode
            merged.drained = all(r.drained for r in results)
        return merged

    def summary(self) -> Dict[str, Any]:
        """The flat record the CLI prints and the bench commits."""
        return {
            "mode": self.mode,
            "outstanding": self.outstanding,
            "capacity_per_s": round(self.capacity_per_s, 2),
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "failed": self.failed,
            "backpressure_retries": self.backpressure_retries,
            "deadline_misses": self.deadline_misses,
            "elapsed_s": round(self.elapsed_s, 3),
            "throughput_per_min": round(self.throughput_per_min, 1),
            "rtt_p50_s": round(percentile(self.rtts_s, 50), 6),
            "rtt_p99_s": round(percentile(self.rtts_s, 99), 6),
            "wait_p50_s": round(percentile(self.waits_s, 50), 6),
            "wait_p99_s": round(percentile(self.waits_s, 99), 6),
            "decision_p50_s": round(percentile(self.decisions_s, 50), 6),
            "decision_p99_s": round(percentile(self.decisions_s, 99), 6),
            "drained": self.drained,
        }


class _Connection:
    """One NDJSON client connection with id-matched response futures."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.waiters: Dict[str, asyncio.Future] = {}
        self.control: List[asyncio.Future] = []
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def open(
        cls, host: str, port: int, socket_path: Optional[str] = None
    ) -> "_Connection":
        if socket_path:
            reader, writer = await asyncio.open_unix_connection(socket_path)
        else:
            reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self.reader.readline()
                if not line:
                    break
                message = json.loads(line)
                client_id = message.get("id")
                waiter = self.waiters.pop(str(client_id), None) if client_id else None
                if waiter is None and self.control:
                    waiter = self.control.pop(0)
                if waiter is not None and not waiter.done():
                    waiter.set_result(message)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            failure = ServiceError("connection closed by daemon")
            for waiter in [*self.waiters.values(), *self.control]:
                if not waiter.done():
                    waiter.set_exception(failure)
            self.waiters.clear()
            self.control.clear()

    def is_closed(self) -> bool:
        """True once the read loop has exited — no response can ever
        resolve a future queued after that point."""
        return self._reader_task.done()

    def send(self, message: Dict[str, Any]) -> asyncio.Future:
        """Write one request; the returned future resolves on response.

        ``submit``/``status`` responses are matched by ``id``; anything
        else (stats, drain, tick, ping) resolves in FIFO order, so keep
        at most a pipeline of one such control call in flight.
        """
        future = asyncio.get_running_loop().create_future()
        if self.is_closed():
            # The read loop's cleanup already failed every registered
            # waiter; a future registered now would hang forever.
            future.set_exception(ServiceError("connection closed by daemon"))
            return future
        client_id = message.get("id")
        if message.get("op") in ("submit", "status") and client_id is not None:
            self.waiters[str(client_id)] = future
        else:
            self.control.append(future)
        self.writer.write(protocol.encode(message))
        return future

    async def call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return await self.send(message)

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except Exception:
            pass


async def run_loadgen(
    requests: Sequence[TransferRequest],
    *,
    host: str = "127.0.0.1",
    port: int = 7411,
    socket_path: Optional[str] = None,
    rate_per_min: float = 1000.0,
    max_retries: int = 8,
    drain: bool = False,
    outstanding: int = 0,
    id_prefix: str = "lg",
) -> LoadGenResult:
    """Replay ``requests`` against a daemon.

    Two modes:

    * **Open loop** (default): submissions are paced at
      ``rate_per_min`` (fixed inter-arrival gap); each response is
      awaited concurrently so slow slots don't stall the arrival
      process.  Measures latency at an offered rate.
    * **Closed loop** (``outstanding=N > 0``): exactly N submissions
      are kept in flight — each response immediately triggers the next
      submission, ignoring ``rate_per_min``.  Measures *capacity*
      (sustained req/s at fixed concurrency), the number the broker-
      fabric exit criterion gates on.

    Backpressure rejections sleep the advertised ``retry_after_s`` and
    retry up to ``max_retries`` times before the request counts as
    ``failed``.
    """
    conn = await _Connection.open(host, port, socket_path)
    result = LoadGenResult()
    if outstanding > 0:
        result.mode = "closed"
        result.outstanding = outstanding
    gap = 60.0 / rate_per_min if rate_per_min > 0 else 0.0

    async def submit_one(index: int, request: TransferRequest) -> None:
        client_id = f"{id_prefix}-{index:06d}"
        message = {
            "op": "submit",
            "id": client_id,
            "source": request.source,
            "destination": request.destination,
            "size_gb": request.size_gb,
            "deadline_slots": request.deadline_slots,
        }
        started = time.perf_counter()
        for _ in range(max_retries + 1):
            response = await conn.call(dict(message))
            if response.get("ok"):
                result.rtts_s.append(time.perf_counter() - started)
                result.submitted += 1
                if response.get("decision") == "admitted":
                    result.admitted += 1
                    completion = response.get("completion_slot")
                    deadline = response.get("deadline_slot")
                    if (
                        completion is not None
                        and deadline is not None
                        and completion > deadline
                    ):
                        result.deadline_misses += 1
                else:
                    result.rejected += 1
                if isinstance(response.get("wait_s"), (int, float)):
                    result.waits_s.append(float(response["wait_s"]))
                if isinstance(response.get("decision_s"), (int, float)):
                    result.decisions_s.append(float(response["decision_s"]))
                return
            if response.get("error") == "backpressure":
                result.backpressure_retries += 1
                await asyncio.sleep(float(response.get("retry_after_s", 0.1)))
                continue
            result.failed += 1
            return
        result.failed += 1

    next_index = 0

    async def closed_loop_worker() -> None:
        # One of N lanes: submit, await the decision, submit the next.
        # next_index mutation is safe — workers only interleave at
        # awaits, and the read-increment below has none.
        nonlocal next_index
        while next_index < len(requests):
            index = next_index
            next_index += 1
            await submit_one(index, requests[index])

    started = time.perf_counter()
    in_flight: List[asyncio.Task] = []
    try:
        if outstanding > 0:
            lanes = min(outstanding, len(requests))
            in_flight = [
                asyncio.create_task(closed_loop_worker()) for _ in range(lanes)
            ]
        else:
            for index, request in enumerate(requests):
                in_flight.append(
                    asyncio.create_task(submit_one(index, request))
                )
                if gap > 0 and index + 1 < len(requests):
                    await asyncio.sleep(gap)
        if in_flight:
            await asyncio.gather(*in_flight)
        result.elapsed_s = time.perf_counter() - started
        if drain:
            response = await conn.call({"op": "drain"})
            result.drained = bool(response.get("drained"))
            result.stats = {
                k: v for k, v in response.items() if k not in ("ok", "op", "drained")
            }
        else:
            response = await conn.call({"op": "stats"})
            result.stats = {
                k: v for k, v in response.items() if k not in ("ok", "op")
            }
    finally:
        for task in in_flight:
            if not task.done():
                task.cancel()
        await conn.close()
    return result


async def run_fleet_loadgen(
    requests: Sequence[TransferRequest],
    endpoints: Dict[str, str],
    *,
    rate_per_min: float = 1000.0,
    max_retries: int = 8,
    drain: bool = False,
    outstanding: int = 0,
    shard_map=None,
) -> Tuple[LoadGenResult, Dict[str, LoadGenResult]]:
    """Drive several broker endpoints concurrently; measure the fleet.

    ``endpoints`` maps shard name -> endpoint string (see
    :func:`parse_endpoint`).  Requests are partitioned by the shard
    map's owner of each request's *source* datacenter when a
    :class:`~repro.service.router.ShardMap` is given (the client plays
    front-end router), else round-robin.  ``outstanding`` is split
    evenly across shards in closed-loop mode (minimum 1 each), so the
    fleet-level concurrency stays comparable across shard counts.

    Returns ``(merged, per_shard)`` — the merged result's
    ``capacity_per_s`` is the fleet capacity the broker-fabric exit
    criterion gates on.
    """
    if not endpoints:
        raise ServiceError("fleet loadgen needs at least one endpoint")
    names = sorted(endpoints)
    partition: Dict[str, List[TransferRequest]] = {name: [] for name in names}
    if shard_map is not None:
        for request in requests:
            partition[shard_map.shard_for(request.source)].append(request)
    else:
        for index, request in enumerate(requests):
            partition[names[index % len(names)]].append(request)
    per_shard_outstanding = (
        max(1, outstanding // len(names)) if outstanding > 0 else 0
    )

    async def run_one(name: str) -> Tuple[str, LoadGenResult]:
        shard_requests = partition[name]
        if not shard_requests:
            return name, LoadGenResult()
        host, port, socket_path = parse_endpoint(endpoints[name])
        result = await run_loadgen(
            shard_requests,
            host=host,
            port=port,
            socket_path=socket_path,
            rate_per_min=rate_per_min,
            max_retries=max_retries,
            drain=drain,
            outstanding=per_shard_outstanding,
            id_prefix=f"lg-{name}",
        )
        return name, result

    pairs = await asyncio.gather(*(run_one(name) for name in names))
    per_shard = dict(pairs)
    merged = LoadGenResult.merge([per_shard[name] for name in names])
    return merged, per_shard
