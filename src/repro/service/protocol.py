"""The daemon's wire protocol: newline-delimited JSON messages.

One request per line, one JSON object per request; responses are also
single lines and always carry ``ok`` plus the request's ``op`` (and
``id`` for per-transfer operations), so a client may pipeline requests
on one connection and match responses out of order.

Operations::

    {"op": "submit", "id": "job-17", "source": 0, "destination": 3,
     "size_gb": 12.5, "deadline_slots": 4}
    {"op": "status", "id": "job-17"}
    {"op": "stats"}
    {"op": "metrics"}                       # live telemetry snapshot
    {"op": "metrics", "format": "prometheus"}
    {"op": "drain"}
    {"op": "tick"}          # only honored when the slot clock is manual
    {"op": "ping"}

A ``submit`` is answered after the slot that batches it is processed
(decision: ``admitted`` or ``rejected``), or immediately with
``{"ok": false, "error": "backpressure", "retry_after_s": ...}`` when
the intake queue is saturated.  ``id`` is the client's idempotency key:
resubmitting a known id returns the recorded decision instead of
scheduling the transfer twice.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import ProtocolError

#: Version 2 added the ``metrics`` op (live telemetry snapshot with an
#: optional Prometheus-text rendering) and trace-summary fields on
#: ``submit`` responses (``trace``, ``cost_delta``, ``headroom_gb``,
#: ``wall_ts``).  Version 3 added the fleet front end: the ``resume``
#: op (router: reconnect to down shards and replay parked relay legs)
#: and relay/shard fields on router responses.  All additive;
#: version-1 clients are unaffected.  An op a given server does not
#: serve (e.g. ``resume`` sent to a plain shard daemon) is answered
#: with an ``unsupported`` error rather than dropped.
PROTOCOL_VERSION = 3

#: Operations a client may send.
OPS = (
    "submit", "status", "stats", "metrics", "drain", "tick", "ping",
    "resume",
)

#: Renderings the ``metrics`` op supports.
METRICS_FORMATS = ("json", "prometheus")

#: Maximum accepted line length (a parse bound, not a data-plane limit —
#: the payload is a description of a transfer, not the transfer itself).
MAX_LINE_BYTES = 64 * 1024


def encode(message: Dict[str, Any]) -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode()


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a message dict.

    Raises :class:`ProtocolError` on anything that is not a single JSON
    object with a known ``op`` — the server answers those with an
    ``invalid`` error instead of dropping the connection.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8", errors="strict"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"message is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    op = message.get("op")
    if op not in OPS:
        known = ", ".join(OPS)
        raise ProtocolError(f"unknown op {op!r}; expected one of: {known}")
    return message


def validate_submit(message: Dict[str, Any], max_deadline: int) -> Dict[str, Any]:
    """Normalize a ``submit`` message's transfer fields.

    Returns ``{"id", "source", "destination", "size_gb",
    "deadline_slots"}`` with coerced types; raises
    :class:`ProtocolError` on missing/invalid fields.  Validation here
    mirrors :class:`~repro.traffic.spec.TransferRequest`'s own invariants
    so a bad submit is refused at the wire instead of exploding inside
    the slot loop.
    """
    client_id = message.get("id")
    if not isinstance(client_id, str) or not client_id:
        raise ProtocolError("submit needs a non-empty string 'id'")
    try:
        source = int(message["source"])
        destination = int(message["destination"])
        size_gb = float(message["size_gb"])
        deadline = int(message["deadline_slots"])
    except KeyError as exc:
        raise ProtocolError(f"submit missing field {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"submit field is malformed: {exc}") from exc
    if source == destination:
        raise ProtocolError(f"source equals destination ({source})")
    if size_gb <= 0:
        raise ProtocolError(f"size_gb must be positive, got {size_gb}")
    if deadline < 1:
        raise ProtocolError(f"deadline_slots must be >= 1, got {deadline}")
    if deadline > max_deadline:
        raise ProtocolError(
            f"deadline_slots {deadline} exceeds the service cap {max_deadline}"
        )
    return {
        "id": client_id,
        "source": source,
        "destination": destination,
        "size_gb": size_gb,
        "deadline_slots": deadline,
    }


def error_response(op: str, error: str, message: str, **extra: Any) -> Dict[str, Any]:
    """A failure line: ``{"ok": false, "op", "error", "message", ...}``."""
    response = {"ok": False, "op": op, "error": error, "message": message}
    response.update(extra)
    return response
