"""Front-end routing for the broker fabric: the versioned shard map.

A fleet of per-region :class:`~repro.service.slotloop.TransferBroker`
shards needs one deterministic answer to "which shard owns submissions
sourced at datacenter ``d``?" — deterministic across processes (two
routers with the same map must agree), across restarts (a resumed
router must route exactly as the dead one did), and *stable* under
fleet growth (adding a shard must remap only ~1/N of the keys, or
every region's ledger and checkpoint history is suddenly on the wrong
shard).

:class:`ShardMap` answers with a consistent-hash ring: every shard
contributes ``vnodes`` points on a 2^64 ring (SHA-1 of
``"<shard>#<i>"`` — a *keyed* hash, never Python's process-seeded
``hash()``), and a key is owned by the first shard point at or after
the key's own ring position.  The map carries an explicit ``version``
that increments on every membership change, so a router and its shards
can detect that they disagree about the fleet before misrouting
anything (see :func:`repro.service.fabric`).
"""

from __future__ import annotations

import bisect
import hashlib
import json
from typing import Any, Dict, Iterable, List, Sequence, Tuple, Union

from repro.errors import ServiceError

#: Ring points contributed per shard.  More points -> better balance
#: (load imbalance shrinks roughly with 1/sqrt(vnodes)); 128 keeps the
#: max/min shard-load ratio under ~1.6 for uniform keys at fleet sizes
#: the property tests sweep, at a few KB of ring per shard.
DEFAULT_VNODES = 128

ShardKey = Union[int, str]


def _point(token: str) -> int:
    """A stable 64-bit ring position for ``token``.

    SHA-1 rather than ``hash()``: Python's string hashing is salted
    per process (PYTHONHASHSEED), and the whole value of the map is
    that two processes — or one process before and after a crash —
    place every key identically.
    """
    return int.from_bytes(hashlib.sha1(token.encode()).digest()[:8], "big")


def _key_point(key: ShardKey) -> int:
    return _point(f"dc:{key}")


class ShardMap:
    """Deterministic key -> shard assignment over a consistent-hash ring.

    Parameters
    ----------
    shards:
        Shard names (unique, non-empty).  Order does not matter: the
        ring is a pure function of the *set* of names.
    vnodes:
        Ring points per shard.
    version:
        Monotone map version; bumped by :meth:`with_shard` /
        :meth:`without_shard` so fabric components can detect stale
        maps.
    """

    def __init__(
        self,
        shards: Sequence[str],
        vnodes: int = DEFAULT_VNODES,
        version: int = 1,
    ):
        names = list(shards)
        if not names:
            raise ServiceError("a shard map needs at least one shard")
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate shard names: {sorted(names)}")
        if any(not name for name in names):
            raise ServiceError("shard names must be non-empty")
        if vnodes < 1:
            raise ServiceError(f"vnodes must be >= 1, got {vnodes}")
        if version < 1:
            raise ServiceError(f"map version must be >= 1, got {version}")
        self.shards: List[str] = sorted(names)
        self.vnodes = vnodes
        self.version = version
        ring: List[Tuple[int, str]] = []
        for name in self.shards:
            for i in range(vnodes):
                ring.append((_point(f"{name}#{i}"), name))
        # Ties (two shards hashing onto one point) are broken by name
        # so the ring is still a pure function of the membership set.
        ring.sort()
        self._ring = ring
        self._points = [point for point, _ in ring]

    # -- routing -----------------------------------------------------------

    def shard_for(self, key: ShardKey) -> str:
        """The shard owning ``key`` (a source-datacenter id)."""
        index = bisect.bisect_right(self._points, _key_point(key))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def assignments(self, keys: Iterable[ShardKey]) -> Dict[ShardKey, str]:
        """Owner of every key in ``keys``."""
        return {key: self.shard_for(key) for key in keys}

    def loads(self, keys: Iterable[ShardKey]) -> Dict[str, int]:
        """Keys owned per shard (every shard present, possibly 0)."""
        counts = {name: 0 for name in self.shards}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    def load_ratio(self, keys: Sequence[ShardKey]) -> float:
        """max/min shard load over ``keys`` (``inf`` on a starved shard).

        The balance figure the property tests bound: a ratio near 1.0
        means the ring spreads the key population evenly.
        """
        counts = self.loads(keys)
        lightest = min(counts.values())
        if lightest == 0:
            return float("inf")
        return max(counts.values()) / lightest

    # -- membership changes ------------------------------------------------

    def with_shard(self, name: str) -> "ShardMap":
        """A new map (version + 1) with ``name`` added.

        Consistent hashing is the point of this method: only keys
        falling into the new shard's ring arcs move — an expected
        1/(N+1) of them, and the property tests bound the realized
        fraction by 2/(N+1).
        """
        if name in self.shards:
            raise ServiceError(f"shard {name!r} is already in the map")
        return ShardMap(
            self.shards + [name], vnodes=self.vnodes, version=self.version + 1
        )

    def without_shard(self, name: str) -> "ShardMap":
        """A new map (version + 1) with ``name`` removed."""
        if name not in self.shards:
            raise ServiceError(f"shard {name!r} is not in the map")
        return ShardMap(
            [s for s in self.shards if s != name],
            vnodes=self.vnodes,
            version=self.version + 1,
        )

    def remapped_fraction(
        self, other: "ShardMap", keys: Sequence[ShardKey]
    ) -> float:
        """Fraction of ``keys`` whose owner differs between the maps."""
        if not keys:
            return 0.0
        moved = sum(
            1 for key in keys if self.shard_for(key) != other.shard_for(key)
        )
        return moved / len(keys)

    # -- serialization -----------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe form; rebuilding from it routes identically."""
        return {
            "shards": list(self.shards),
            "vnodes": self.vnodes,
            "version": self.version,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ShardMap":
        return cls(
            [str(name) for name in payload["shards"]],
            vnodes=int(payload.get("vnodes", DEFAULT_VNODES)),
            version=int(payload.get("version", 1)),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def loads_json(cls, text: str) -> "ShardMap":
        return cls.from_payload(json.loads(text))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShardMap)
            and self.shards == other.shards
            and self.vnodes == other.vnodes
            and self.version == other.version
        )

    def __repr__(self) -> str:
        return (
            f"ShardMap(shards={self.shards}, vnodes={self.vnodes}, "
            f"version={self.version})"
        )
