"""The asyncio daemon: sockets, the slot clock, and response delivery.

:class:`ServiceDaemon` wraps a :class:`~repro.service.slotloop.TransferBroker`
with a TCP or unix-socket listener speaking the NDJSON protocol of
:mod:`repro.service.protocol`.  Clients pipeline requests; ``submit``
responses are parked on futures and delivered after the slot that
batches them is processed (and, when due, checkpointed).  A background
task fires :meth:`TransferBroker.process_slot` every
``config.tick_seconds``; with ``tick_seconds=0`` the clock is manual
and slots advance only on ``tick`` messages — the mode deterministic
tests and the crash-resume harness use.

``drain`` stops intake, flushes the queue slot by slot, writes a final
snapshot, answers ``{"drained": true}``, and shuts the daemon down.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, Dict, Optional

from repro.errors import BackpressureError, ProtocolError, ReproError, ServiceError
from repro.obs import registry as obs
from repro.obs.metrics import MetricsSnapshot
from repro.obs.prom import render_prometheus
from repro.service import protocol
from repro.service.config import ServiceConfig
from repro.service.intake import PendingTransfer
from repro.service.slotloop import TransferBroker


class ServiceDaemon:
    """One listening transfer broker; ``await serve(config)`` to run."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.broker = TransferBroker(config)
        #: The live telemetry fold the ``metrics`` op serves from
        #: (attached to the default registry for the daemon's lifetime;
        #: None when ``config.telemetry`` is off).
        self.metrics: Optional[MetricsSnapshot] = (
            MetricsSnapshot() if config.telemetry else None
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._clock_task: Optional[asyncio.Task] = None
        self._stopped = asyncio.Event()
        self._draining = False
        self._active_connections = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the slot clock (if automatic)."""
        if self.metrics is not None:
            obs.get_registry().add_sink(self.metrics)
        # The stream limit bounds readline() buffering: a client that
        # never sends a newline cannot grow memory past one max line.
        if self.config.socket_path:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.config.socket_path,
                limit=protocol.MAX_LINE_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.config.host, port=self.config.port,
                limit=protocol.MAX_LINE_BYTES,
            )
        if self.config.tick_seconds > 0:
            self._clock_task = asyncio.create_task(self._slot_clock())

    async def run_until_stopped(self) -> None:
        """Serve until ``drain`` (or ``stop``) completes."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Tear the listener and clock down; idempotent."""
        if self._clock_task is not None:
            self._clock_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._clock_task
            self._clock_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.metrics is not None:
            obs.get_registry().remove_sink(self.metrics)
        self._stopped.set()

    @property
    def port(self) -> Optional[int]:
        """The bound TCP port (for ``port=0`` ephemeral binds)."""
        if self._server is None or self.config.socket_path:
            return None
        return self._server.sockets[0].getsockname()[1]

    # -- the slot clock ----------------------------------------------------

    async def _slot_clock(self) -> None:
        while True:
            await asyncio.sleep(self.config.tick_seconds)
            self._run_slot()
            if self.config.max_slots and (
                self.broker.next_slot >= self.config.max_slots
            ):
                # Detach before stop() so it doesn't cancel this task.
                self._clock_task = None
                await self.stop()
                return

    def _run_slot(self) -> None:
        """Process one slot and deliver its decisions to waiters."""
        try:
            resolutions = self.broker.process_slot()
        except ReproError as exc:
            # A scheduler/solver failure must not wedge clients forever:
            # fail every waiter parked on this batch's (now-lost) slot.
            self._fail_waiters(exc)
            return
        for pending, record in resolutions:
            self._resolve(pending, {"ok": True, "op": "submit", **record})

    def _fail_waiters(self, exc: Exception) -> None:
        # process_slot requeues the failed batch before raising, so
        # draining the queue reaches every stranded submission.
        while self.broker.queue.depth:
            for pending in self.broker.queue.drain():
                self._resolve(
                    pending,
                    protocol.error_response(
                        "submit", "internal", str(exc), id=pending.client_id
                    ),
                )

    @staticmethod
    def _resolve(pending: PendingTransfer, response: Dict[str, Any]) -> None:
        waiter = pending.waiter
        if waiter is not None and not waiter.done():
            waiter.set_result(response)

    # -- connection handling -----------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        obs.counter("service.connections")
        self._active_connections += 1
        obs.gauge("service.connections.active", self._active_connections)
        lock = asyncio.Lock()
        deferred = set()
        try:
            while True:
                line = await self._read_line(reader, writer, lock, deferred)
                if line is None:
                    break
                if not line.strip():
                    continue
                await self._dispatch(line, writer, lock, deferred)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels in-flight handlers; the noise of letting
            # this propagate is asyncio logging a spurious traceback.
            pass
        finally:
            self._active_connections -= 1
            obs.gauge("service.connections.active", self._active_connections)
            for task in deferred:
                task.cancel()
            writer.close()
            # CancelledError included: stop() cancels handlers that are
            # parked right here, and that must stay quiet too.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _read_line(self, reader, writer, lock, deferred):
        """One guarded readline; ``None`` means close the connection.

        Two abuse guards (config ``read_timeout_s`` + the stream's
        ``MAX_LINE_BYTES`` limit): an idle connection with nothing
        in flight is disconnected after the timeout, and a line that
        exceeds the limit is answered with a protocol error and the
        connection dropped — readline's internal buffer cannot be
        grown past the limit by a newline-less client.  A client
        parked on in-flight submit decisions is waiting, not
        stalling, so the timeout does not count against it.
        """
        timeout = self.config.read_timeout_s
        while True:
            try:
                if timeout > 0:
                    line = await asyncio.wait_for(reader.readline(), timeout)
                else:
                    line = await reader.readline()
            except asyncio.TimeoutError:
                if deferred:
                    continue
                obs.counter("service.read_timeout")
                await self._send(
                    writer, lock,
                    protocol.error_response(
                        "?", "timeout",
                        f"no complete request line within {timeout}s; "
                        "closing connection",
                    ),
                )
                return None
            except ValueError:
                # StreamReader.readline: the line outgrew the limit.
                obs.counter("service.line_overflow")
                await self._send(
                    writer, lock,
                    protocol.error_response(
                        "?", "invalid",
                        f"request line exceeds {protocol.MAX_LINE_BYTES} "
                        "bytes; closing connection",
                    ),
                )
                return None
            return line if line else None

    async def _dispatch(self, line, writer, lock, deferred) -> None:
        try:
            message = protocol.decode_line(line)
        except ProtocolError as exc:
            await self._send(
                writer, lock, protocol.error_response("?", "invalid", str(exc))
            )
            return
        op = message["op"]
        if op == "submit":
            await self._handle_submit(message, writer, lock, deferred)
        elif op == "status":
            client_id = str(message.get("id", ""))
            await self._send(
                writer,
                lock,
                {"ok": True, "op": "status", "id": client_id,
                 **self.broker.status(client_id)},
            )
        elif op == "stats":
            await self._send(
                writer, lock, {"ok": True, "op": "stats", **self.broker.stats()}
            )
        elif op == "metrics":
            await self._handle_metrics(message, writer, lock)
        elif op == "ping":
            await self._send(
                writer,
                lock,
                {"ok": True, "op": "ping",
                 "version": protocol.PROTOCOL_VERSION},
            )
        elif op == "tick":
            await self._handle_tick(writer, lock)
        elif op == "drain":
            await self._handle_drain(writer, lock)
        else:
            # Decodable (it's in protocol.OPS) but not served here —
            # e.g. the fleet router's "resume" sent to a plain shard.
            # Answer instead of dropping: a silent drop wedges callers
            # that await a response line.
            await self._send(
                writer, lock,
                protocol.error_response(
                    op, "unsupported",
                    f"op {op!r} is not served by this daemon",
                ),
            )

    async def _handle_submit(self, message, writer, lock, deferred) -> None:
        try:
            fields = protocol.validate_submit(message, self.config.max_deadline)
        except ProtocolError as exc:
            await self._send(
                writer,
                lock,
                protocol.error_response(
                    "submit", "invalid", str(exc), id=message.get("id")
                ),
            )
            return
        waiter = asyncio.get_running_loop().create_future()
        try:
            outcome, value = self.broker.submit(fields, waiter)
        except BackpressureError as exc:
            await self._send(
                writer,
                lock,
                protocol.error_response(
                    "submit", "backpressure", str(exc),
                    id=fields["id"], retry_after_s=exc.retry_after_s,
                ),
            )
            return
        except ServiceError as exc:
            await self._send(
                writer,
                lock,
                protocol.error_response(
                    "submit", "refused", str(exc), id=fields["id"]
                ),
            )
            return
        if outcome == "decided":
            await self._send(
                writer, lock,
                {"ok": True, "op": "submit", "cached": True, **value},
            )
            return

        async def deliver() -> None:
            response = await waiter
            await self._send(writer, lock, response)

        task = asyncio.create_task(deliver())
        deferred.add(task)
        task.add_done_callback(deferred.discard)

    async def _handle_metrics(self, message, writer, lock) -> None:
        """Serve the live telemetry snapshot (versioned, two formats).

        ``format: "json"`` (default) answers the full structured body:
        broker stats, SLO states, the metrics snapshot (histograms with
        p50/p90/p99, counters, gauges), and the wall-clock mapping.
        ``format: "prometheus"`` answers ``{"text": ...}`` holding the
        exposition body instead.
        """
        fmt = message.get("format", "json")
        if fmt not in protocol.METRICS_FORMATS:
            known = ", ".join(protocol.METRICS_FORMATS)
            await self._send(
                writer, lock,
                protocol.error_response(
                    "metrics", "invalid",
                    f"unknown format {fmt!r}; expected one of: {known}",
                ),
            )
            return
        body = self.broker.telemetry(self.metrics)
        if fmt == "prometheus":
            text = render_prometheus({**body["snapshot"], "slo": body["slo"]})
            await self._send(
                writer, lock,
                {"ok": True, "op": "metrics",
                 "version": protocol.PROTOCOL_VERSION,
                 "format": "prometheus", "text": text},
            )
            return
        await self._send(
            writer, lock,
            {"ok": True, "op": "metrics",
             "version": protocol.PROTOCOL_VERSION, "format": "json", **body},
        )

    async def _handle_tick(self, writer, lock) -> None:
        if self.config.tick_seconds > 0:
            await self._send(
                writer,
                lock,
                protocol.error_response(
                    "tick", "refused",
                    "slot clock is automatic; tick is only valid with "
                    "tick_seconds=0",
                ),
            )
            return
        slot = self.broker.next_slot
        self._run_slot()
        await self._send(
            writer, lock,
            {"ok": True, "op": "tick", "slot": slot,
             "next_slot": self.broker.next_slot},
        )

    async def _handle_drain(self, writer, lock) -> None:
        self._draining = True
        try:
            resolutions = self.broker.drain_remaining()
        except ReproError as exc:
            await self._send(
                writer, lock,
                protocol.error_response("drain", "internal", str(exc)),
            )
            return
        for pending, record in resolutions:
            self._resolve(pending, {"ok": True, "op": "submit", **record})
        # Give deferred submit-deliveries a chance to flush before the
        # drain ack — clients treat the ack as "all decisions are out".
        await asyncio.sleep(0)
        await self._send(
            writer, lock,
            {"ok": True, "op": "drain", "drained": True,
             **self.broker.stats()},
        )
        await self.stop()

    @staticmethod
    async def _send(writer, lock, message: Dict[str, Any]) -> None:
        async with lock:
            writer.write(protocol.encode(message))
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                await writer.drain()


async def serve(config: ServiceConfig) -> ServiceDaemon:
    """Start a daemon and block until it drains; returns it (stopped)."""
    daemon = ServiceDaemon(config)
    await daemon.start()
    try:
        await daemon.run_until_stopped()
    finally:
        await daemon.stop()
    return daemon
