"""The broker core: intake -> slot batch -> scheduler -> decisions.

:class:`TransferBroker` is the synchronous heart of the daemon, kept
free of sockets and event loops so tests (and the crash-resume harness)
can drive it slot by slot deterministically.  Each
:meth:`~TransferBroker.process_slot` call is one virtual slot ``t``:
drain the intake queue into the batch ``K(t)``, hand it to the
configured scheduler (hybrid by default — fast lane with LP
escalation) over the broker's single :class:`NetworkState`, read the
per-request outcomes back from the state's completion/rejection
records, checkpoint if due, and return the decisions for the server to
push to waiting clients.

Durability contract: the snapshot (state + still-queued submissions +
decision log) is written *before* decisions are handed back, so any
response a client has seen from a checkpointed slot survives a crash.
Slots after the last checkpoint roll back atomically with their ledger
commitments — clients that resubmit get a fresh, consistent decision
(see docs/SERVICE.md).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.obs import registry as obs
from repro.registry import make_scheduler
from repro.service.config import ServiceConfig
from repro.service.intake import IntakeQueue, PendingTransfer
from repro.service.store import SnapshotStore
from repro.traffic.spec import TransferRequest

DECISION_ADMITTED = "admitted"
DECISION_REJECTED = "rejected"

#: One resolved submission: the pending entry and its decision record.
Resolution = Tuple[PendingTransfer, Dict[str, Any]]


class TransferBroker:
    """Request intake, slot batching, and decision bookkeeping.

    Parameters
    ----------
    config:
        The daemon's :class:`ServiceConfig`.  When it names a
        ``checkpoint_dir`` holding a snapshot, the broker *resumes*:
        billing state, queued submissions, the virtual clock, and the
        decision log all pick up where the dead process stopped.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.topology = config.topology()
        self.queue = IntakeQueue(
            config.max_queue, config.tick_seconds, config.max_batch
        )
        self.store = (
            SnapshotStore(config.checkpoint_dir) if config.checkpoint_dir else None
        )
        self.scheduler = make_scheduler(
            config.scheduler, self.topology, config.horizon, backend=config.backend
        )
        #: client id -> decision record (the idempotency/status log).
        self.decisions: Dict[str, Dict[str, Any]] = {}
        #: Next virtual slot to process.
        self.next_slot = 0
        self.draining = False
        self.resumed = False
        self.counts = {"submitted": 0, "admitted": 0, "rejected": 0,
                       "backpressured": 0, "slots": 0, "batches": 0}
        self._dirty = False

        snapshot = self.store.load(self.topology) if self.store else None
        if snapshot is not None:
            self.scheduler.adopt_state(snapshot.state)
            self.queue.requeue_front(
                [PendingTransfer.from_payload(p) for p in snapshot.pending]
            )
            self.next_slot = snapshot.next_slot
            self.decisions = dict(snapshot.meta.get("decisions", {}))
            restored = snapshot.meta.get("counts", {})
            for key in self.counts:
                self.counts[key] = int(restored.get(key, 0))
            self.resumed = True

    @property
    def state(self):
        """The single NetworkState all slots commit into."""
        return self.scheduler.state

    # -- intake ------------------------------------------------------------

    def submit(
        self, fields: Dict[str, Any], waiter: Optional[Any] = None
    ) -> Tuple[str, Any]:
        """Accept one validated submission.

        Returns ``("decided", record)`` for an id already decided (the
        idempotent-retry path), or ``("pending", PendingTransfer)`` once
        queued.  Raises :class:`BackpressureError` when the intake queue
        is saturated and :class:`ServiceError` when the daemon is
        draining or the transfer's deadline would cross the ledger
        horizon.
        """
        client_id = fields["id"]
        known = self.decisions.get(client_id)
        if known is not None:
            return "decided", known
        if self.queue.contains(client_id):
            raise ServiceError(f"submission {client_id!r} is already pending")
        if self.draining:
            raise ServiceError("service is draining; not accepting submissions")
        if self.next_slot + fields["deadline_slots"] + 1 > self.config.horizon:
            raise ServiceError(
                f"deadline would cross the service horizon "
                f"({self.config.horizon} slots); multi-period rollover is "
                "not supported yet"
            )
        pending = PendingTransfer(
            client_id=client_id,
            source=fields["source"],
            destination=fields["destination"],
            size_gb=fields["size_gb"],
            deadline_slots=fields["deadline_slots"],
            waiter=waiter,
        )
        try:
            self.queue.offer(pending)
        except Exception:
            self.counts["backpressured"] += 1
            raise
        self.counts["submitted"] += 1
        obs.counter("service.submitted")
        return "pending", pending

    def status(self, client_id: str) -> Dict[str, Any]:
        """The lifecycle state of one submission id."""
        known = self.decisions.get(client_id)
        if known is not None:
            return {"state": known["decision"], "decision": known}
        if self.queue.contains(client_id):
            return {"state": "pending"}
        return {"state": "unknown"}

    # -- the slot loop -----------------------------------------------------

    def process_slot(self) -> List[Resolution]:
        """Run one virtual slot; returns the decisions it produced.

        An empty queue still advances the clock (a slot with no
        arrivals is a real, billable-by-silence interval), but skips
        the scheduler and the checkpoint cadence check when nothing
        changed.
        """
        slot = self.next_slot
        batch = self.queue.drain()
        if not batch:
            self.next_slot = slot + 1
            self.counts["slots"] += 1
            return []

        obs.gauge("service.batch_size", len(batch))
        obs.gauge("service.queue_depth", self.queue.depth)
        by_request_id: Dict[int, PendingTransfer] = {}
        requests: List[TransferRequest] = []
        for pending in batch:
            request = TransferRequest(
                pending.source,
                pending.destination,
                pending.size_gb,
                pending.deadline_slots,
                release_slot=slot,
            )
            by_request_id[request.request_id] = pending
            requests.append(request)

        escalations_before = getattr(self.scheduler, "escalations", 0)
        try:
            with obs.timed_span(
                "service.slot", slot=slot, batch=len(batch)
            ) as slot_span:
                self.scheduler.on_slot(slot, requests)
        except Exception:
            # A failed slot must not strand its batch: put it back so
            # the caller can fail (or retry) the parked waiters.
            self.queue.requeue_front(batch)
            raise
        decision_s = slot_span.seconds
        lane = (
            "lp"
            if getattr(self.scheduler, "escalations", 0) > escalations_before
            else "fast"
        )

        now = time.perf_counter()
        resolutions: List[Resolution] = []
        for request in requests:
            pending = by_request_id[request.request_id]
            completion = self.state.completions.get(request.request_id)
            admitted = completion is not None
            record = {
                "id": pending.client_id,
                "decision": DECISION_ADMITTED if admitted else DECISION_REJECTED,
                "slot": slot,
                "release_slot": slot,
                "deadline_slot": request.last_slot,
                "completion_slot": completion,
                "lane": lane,
                "wait_s": round(now - pending.enqueued_at, 6),
                "decision_s": round(decision_s, 6),
            }
            self.decisions[pending.client_id] = record
            self.counts["admitted" if admitted else "rejected"] += 1
            obs.counter("service.admitted" if admitted else "service.rejected")
            resolutions.append((pending, record))
        obs.gauge("service.admission_latency_s", decision_s)

        self.counts["slots"] += 1
        self.counts["batches"] += 1
        self._dirty = True
        self.next_slot = slot + 1
        if self.store and (
            self.draining or self.next_slot % self.config.checkpoint_every == 0
        ):
            self.checkpoint()
        return resolutions

    def drain_remaining(self) -> List[Resolution]:
        """Refuse new intake, flush the queue slot by slot, checkpoint.

        Returns every decision made while draining.  Always writes a
        final snapshot (when a store is configured), even if the queue
        was already empty — the shutdown must be resumable.
        """
        self.draining = True
        resolved: List[Resolution] = []
        while self.queue.depth > 0:
            resolved.extend(self.process_slot())
        if self.store:
            self.checkpoint()
        return resolved

    # -- persistence -------------------------------------------------------

    def checkpoint(self) -> None:
        """Snapshot state + queue + clock + decision log (atomic)."""
        if self.store is None:
            raise ServiceError("no checkpoint directory configured")
        self.store.save(
            self.state,
            self.queue.snapshot_payloads(),
            self.next_slot,
            meta={"decisions": self.decisions, "counts": self.counts},
        )
        self._dirty = False

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``stats`` protocol response body."""
        return {
            "endpoint": self.config.endpoint,
            "scheduler": self.config.scheduler,
            "datacenters": self.config.datacenters,
            "tick_seconds": self.config.tick_seconds,
            "next_slot": self.next_slot,
            "queue_depth": self.queue.depth,
            "max_queue": self.config.max_queue,
            "draining": self.draining,
            "resumed": self.resumed,
            "cost_per_slot": round(self.state.current_cost_per_slot(), 6),
            "escalations": getattr(self.scheduler, "escalations", 0),
            "fast_slots": getattr(self.scheduler, "fast_slots", 0),
            "checkpoints": self.store.saves if self.store else 0,
            **self.counts,
        }
