"""The broker core: intake -> slot batch -> scheduler -> decisions.

:class:`TransferBroker` is the synchronous heart of the daemon, kept
free of sockets and event loops so tests (and the crash-resume harness)
can drive it slot by slot deterministically.  Each
:meth:`~TransferBroker.process_slot` call is one virtual slot ``t``:
drain the intake queue into the batch ``K(t)``, hand it to the
configured scheduler (hybrid by default — fast lane with LP
escalation) over the broker's single :class:`NetworkState`, read the
per-request outcomes back from the state's completion/rejection
records, checkpoint if due, and return the decisions for the server to
push to waiting clients.

Durability contract: the snapshot (state + still-queued submissions +
decision log) is written *before* decisions are handed back, so any
response a client has seen from a checkpointed slot survives a crash.
Slots after the last checkpoint roll back atomically with their ledger
commitments — clients that resubmit get a fresh, consistent decision
(see docs/SERVICE.md).

With ``config.wal=True`` the contract tightens to per-record (PR 7):
every admission is journaled before its ``pending`` ack, every slot
commit before its decisions are released, each as one O(1)-sized
fsync'd WAL record.  Recovery replays the log over the newest valid
snapshot generation and re-runs the recorded slots through the
scheduler on their *recorded lanes*, then refuses to serve unless the
post-recovery invariant checks (:mod:`repro.service.verify`) pass.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServiceError, WalError
from repro.obs import registry as obs
from repro.obs.slo import SloMonitor
from repro.registry import make_scheduler
from repro.service import chaos
from repro.service.config import ServiceConfig
from repro.service.intake import IntakeQueue, PendingTransfer
from repro.service.store import SnapshotStore
from repro.service.verify import verify_recovery
from repro.service.wal import REC_ADMIT, REC_COMMIT
from repro.traffic.spec import TransferRequest

DECISION_ADMITTED = "admitted"
DECISION_REJECTED = "rejected"

#: Cap on trace ids attached as ambient context to a slot's scheduler
#: events.  The ambient attrs ride on *every* nested event (LP sizes,
#: solver counters, ...), so an unbounded list makes a large batch's
#: event stream quadratic-ish in batch size; past the cap, per-request
#: events (``service.lane``, ``service.charge_delta``) still carry each
#: request's own id and join the scheduler legs via the ``slot`` attr.
TRACE_IDS_ATTR_CAP = 32

#: One resolved submission: the pending entry and its decision record.
Resolution = Tuple[PendingTransfer, Dict[str, Any]]


class TransferBroker:
    """Request intake, slot batching, and decision bookkeeping.

    Parameters
    ----------
    config:
        The daemon's :class:`ServiceConfig`.  When it names a
        ``checkpoint_dir`` holding a snapshot, the broker *resumes*:
        billing state, queued submissions, the virtual clock, and the
        decision log all pick up where the dead process stopped.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.topology = config.topology()
        self.queue = IntakeQueue(
            config.max_queue, config.tick_seconds, config.max_batch
        )
        self.store = (
            SnapshotStore(
                config.checkpoint_dir,
                wal=config.wal,
                retain=config.snapshot_retain,
                fsync=config.wal_fsync,
            )
            if config.checkpoint_dir
            else None
        )
        scheduler_kwargs: Dict[str, Any] = {}
        if config.scheduler == "hybrid":
            # The chaos tap and the watchdog live on the hybrid lane
            # boundary; other schedulers have no escalation to guard.
            scheduler_kwargs.update(
                watchdog_timeout_s=config.watchdog_timeout_s,
                watchdog_backoff_slots=config.watchdog_backoff_slots,
                watchdog_backoff_max=config.watchdog_backoff_max,
                escalate_hook=lambda: chaos.crashpoint("lp.escalate"),
            )
        self.scheduler = make_scheduler(
            config.scheduler, self.topology, config.horizon,
            backend=config.backend, **scheduler_kwargs,
        )
        #: Availability windows the broker schedules under (config-
        #: derived, like the topology; snapshots never carry it).
        self.link_schedule = config.link_schedule()
        self.scheduler.state.link_schedule = self.link_schedule
        if config.forecast:
            # Config-not-state, like the link schedule: the provider is
            # attached before any recovery below, so WAL replay retrains
            # its predictors from the replayed slots deterministically.
            from repro.forecast import ForecastConfig, ForecastProvider

            self.scheduler.attach_forecast(
                ForecastProvider(
                    ForecastConfig(
                        period=config.forecast_period,
                        horizon=config.forecast_horizon
                        or config.forecast_period,
                    )
                )
            )
        #: client id -> decision record (the idempotency/status log).
        self.decisions: Dict[str, Dict[str, Any]] = {}
        #: Next virtual slot to process.
        self.next_slot = 0
        self.draining = False
        self.resumed = False
        self.counts = {"submitted": 0, "admitted": 0, "rejected": 0,
                       "backpressured": 0, "slots": 0, "batches": 0}
        self._dirty = False
        #: Rolling-window SLO evaluation over processed slots.
        self.slo = SloMonitor(config.slo_thresholds(), window=config.slo_window)
        #: Unix timestamp virtual slot 0 maps to (see ServiceConfig
        #: wall-clock fields); checkpointed so resumes keep alignment.
        self.wall_epoch = config.wall_epoch or time.time()
        #: What recovery found on disk (WAL mode): base generation,
        #: fallbacks, torn bytes, replayed record count.
        self.recovery_info: Dict[str, Any] = {}
        #: The invariant report of the last verified resume.
        self.verifier_report: Optional[Dict[str, Any]] = None

        if self.store and self.store.wal_enabled:
            snapshot, records, self.recovery_info = self.store.recover(
                self.topology
            )
            if snapshot is not None:
                self._adopt_snapshot(snapshot)
            if records:
                self._replay_wal(records)
            self.resumed = snapshot is not None or bool(records)
            self.store.open_wal()
            if self.resumed:
                # Serving from inconsistent books is worse than not
                # serving: strict mode raises before any client connects.
                self.verifier_report = verify_recovery(self, strict=True)
        elif self.store:
            snapshot = self.store.load(self.topology)
            if snapshot is not None:
                self._adopt_snapshot(snapshot)
                self.resumed = True

    def _adopt_snapshot(self, snapshot) -> None:
        """Restore state, queue, clock, and books from one snapshot."""
        self.scheduler.adopt_state(snapshot.state)
        # Snapshots don't serialize the link schedule (it is config, not
        # state) — re-attach it to the restored state object, which is a
        # different object from the one wired up at construction.
        self.scheduler.state.link_schedule = self.link_schedule
        self.queue.requeue_front(
            [PendingTransfer.from_payload(p) for p in snapshot.pending]
        )
        self.next_slot = snapshot.next_slot
        self.decisions = dict(snapshot.meta.get("decisions", {}))
        restored = snapshot.meta.get("counts", {})
        for key in self.counts:
            self.counts[key] = int(restored.get(key, 0))
        self.wall_epoch = float(
            snapshot.meta.get("wall_epoch", self.wall_epoch)
        )

    def _replay_wal(self, records: List[Dict[str, Any]]) -> None:
        """Re-apply journaled admissions and slot commits in order.

        Admissions re-enter the intake queue; commits re-run their
        recorded batch through the scheduler on the recorded *lane*
        (see :meth:`~repro.heuristic.hybrid.HybridScheduler.replay_slot`
        — a degraded slot must not replay through the LP) and then
        restore the recorded decisions and tallies verbatim.  The
        scheduler is deterministic, so the rebuilt ledger matches the
        pre-crash one cell for cell — the recovery verifier checks.
        """
        with obs.span("service.wal.replay", records=len(records)):
            for record in records:
                kind = record.get("type")
                if kind == REC_ADMIT:
                    entry = PendingTransfer.from_payload(record["entry"])
                    if (
                        entry.client_id in self.decisions
                        or self.queue.contains(entry.client_id)
                    ):
                        continue
                    self.queue.offer(entry)
                    self.counts["submitted"] = max(
                        self.counts["submitted"], int(record.get("submitted", 0))
                    )
                elif kind == REC_COMMIT:
                    self._replay_commit(record)
                else:
                    raise WalError(f"unknown WAL record type {kind!r}")

    def _replay_commit(self, record: Dict[str, Any]) -> None:
        slot = int(record["slot"])
        # Period boundaries are a pure function of the slot index, so
        # replay re-crosses them exactly where the live run did — empty
        # commits included; skipping one would leave the rebuilt
        # watermarks a period behind the pre-crash books.
        self._maybe_rollover(slot)
        batch_ids = list(record.get("batch", []))
        if batch_ids:
            try:
                batch = self.queue.take_ids(batch_ids)
            except KeyError as exc:
                raise WalError(str(exc)) from exc
            requests = [
                TransferRequest(
                    pending.source,
                    pending.destination,
                    pending.size_gb,
                    pending.deadline_slots,
                    release_slot=slot,
                )
                for pending in batch
            ]
            lane = record.get("lane", "fast")
            if hasattr(self.scheduler, "replay_slot"):
                self.scheduler.replay_slot(slot, requests, lane)
            else:
                self.scheduler.on_slot(slot, requests)
        self.decisions.update(record.get("decisions", {}))
        for key, value in record.get("counts", {}).items():
            if key in self.counts:
                self.counts[key] = int(value)
        self.next_slot = slot + 1

    @property
    def state(self):
        """The single NetworkState all slots commit into."""
        return self.scheduler.state

    # -- billing rollover --------------------------------------------------

    def _maybe_rollover(self, slot: int) -> None:
        """Cycle the charging period before processing ``slot``.

        With ``config.period_slots = P`` the boundaries sit at every
        multiple of P: once ``slot`` reaches the end of the current
        period, the closing period's bill is banked
        (:meth:`NetworkState.start_new_period`), the paid watermarks
        re-seed to the in-flight volume already committed past the
        boundary, and both scheduler lanes re-adopt the state so the
        fast lane's tracker drops the expired headroom.  Deterministic
        in the slot index — live runs and WAL replay cross boundaries
        identically.
        """
        period = self.config.period_slots
        if not period:
            return
        while slot >= self.state.period_start + period:
            boundary = self.state.period_start + period
            bill = self.state.start_new_period(boundary)
            # Paid headroom the fast lane cached is no longer paid for;
            # re-adopting rebuilds its tracker from the rolled state.
            self.scheduler.adopt_state(self.state)
            if self.config.period_prune:
                self.state.ledger.prune_before(boundary)
            obs.counter("service.period_rollover")
            obs.gauge(
                "service.period_bill", round(bill, 6),
                boundary=boundary, periods=len(self.state.banked_period_bills),
            )

    # -- intake ------------------------------------------------------------

    def submit(
        self, fields: Dict[str, Any], waiter: Optional[Any] = None
    ) -> Tuple[str, Any]:
        """Accept one validated submission.

        Returns ``("decided", record)`` for an id already decided (the
        idempotent-retry path), ``("attached", PendingTransfer)`` for an
        id still queued whose waiter slot is free — the caller's waiter
        is parked on the existing entry, which is what lets a fabric
        router reconnect after a crash and hear the original decision
        exactly once — or ``("pending", PendingTransfer)`` once queued.
        Raises :class:`BackpressureError` when the intake queue is
        saturated and :class:`ServiceError` when the daemon is draining,
        a live waiter already holds the id, or the transfer's deadline
        would cross the ledger horizon (single-period mode only; with
        ``config.period_slots`` the broker rolls the charging period
        over instead).
        """
        client_id = fields["id"]
        known = self.decisions.get(client_id)
        if known is not None:
            return "decided", known
        queued = self.queue.find(client_id)
        if queued is not None:
            if queued.waiter is not None and not queued.waiter.done():
                raise ServiceError(
                    f"submission {client_id!r} is already pending"
                )
            queued.waiter = waiter
            obs.counter("service.attached")
            return "attached", queued
        if self.draining:
            raise ServiceError("service is draining; not accepting submissions")
        if (
            not self.config.period_slots
            and self.next_slot + fields["deadline_slots"] + 1
            > self.config.horizon
        ):
            raise ServiceError(
                f"deadline would cross the service horizon "
                f"({self.config.horizon} slots); run with period_slots to "
                "roll the charging period over instead"
            )
        pending = PendingTransfer(
            client_id=client_id,
            source=fields["source"],
            destination=fields["destination"],
            size_gb=fields["size_gb"],
            deadline_slots=fields["deadline_slots"],
            waiter=waiter,
        )
        try:
            self.queue.offer(pending)
        except Exception:
            self.counts["backpressured"] += 1
            raise
        self.counts["submitted"] += 1
        # The submitted tally is monotone and checkpointed, so ids stay
        # unique across crash-resume cycles.
        pending.trace_id = f"t-{self.counts['submitted']:08d}"
        if self.store and self.store.wal_enabled:
            # Journal-before-ack: the admission must be on disk before
            # the client hears "pending".  A failed append (disk full)
            # rolls the submission back — refusing it is honest, acking
            # an unjournaled one is not.
            try:
                self.store.append_wal({
                    "type": REC_ADMIT,
                    "entry": pending.to_payload(),
                    "submitted": self.counts["submitted"],
                })
            except OSError as exc:
                self.queue.remove(client_id)
                self.counts["submitted"] -= 1
                obs.counter("service.wal.append_failed")
                raise ServiceError(
                    f"cannot journal submission {client_id!r}: {exc}"
                ) from exc
        obs.counter("service.submitted")
        obs.counter(
            "service.intake",
            trace=pending.trace_id,
            id=client_id,
            source=pending.source,
            destination=pending.destination,
            size_gb=pending.size_gb,
            deadline_slots=pending.deadline_slots,
            slot=self.next_slot,
        )
        return "pending", pending

    def status(self, client_id: str) -> Dict[str, Any]:
        """The lifecycle state of one submission id."""
        known = self.decisions.get(client_id)
        if known is not None:
            return {"state": known["decision"], "decision": known}
        if self.queue.contains(client_id):
            return {"state": "pending"}
        return {"state": "unknown"}

    # -- the slot loop -----------------------------------------------------

    def process_slot(self) -> List[Resolution]:
        """Run one virtual slot; returns the decisions it produced.

        An empty queue still advances the clock (a slot with no
        arrivals is a real, billable-by-silence interval), but skips
        the scheduler and the checkpoint cadence check when nothing
        changed.
        """
        slot = self.next_slot
        self._maybe_rollover(slot)
        batch = self.queue.drain()
        if not batch:
            self.next_slot = slot + 1
            self.counts["slots"] += 1
            if self.store and self.store.wal_enabled:
                # Even an empty slot advances the billable clock; a
                # resume must not rewind it.  One tiny record.
                self.store.append_wal({
                    "type": REC_COMMIT, "slot": slot, "batch": [],
                    "counts": dict(self.counts),
                })
            return []

        obs.gauge("service.batch_size", len(batch))
        obs.gauge("service.queue_depth", self.queue.depth)
        by_request_id: Dict[int, PendingTransfer] = {}
        requests: List[TransferRequest] = []
        headroom: Dict[int, float] = {}
        for pending in batch:
            request = TransferRequest(
                pending.source,
                pending.destination,
                pending.size_gb,
                pending.deadline_slots,
                release_slot=slot,
            )
            by_request_id[request.request_id] = pending
            requests.append(request)
            # Watermark headroom on the request's direct link *before*
            # this batch commits: how much it could have sent at the
            # release slot without raising the bill.
            headroom[request.request_id] = self._admission_headroom(
                request.source, request.destination, slot
            )

        trace_ids = [p.trace_id for p in batch[:TRACE_IDS_ATTR_CAP]]
        cost_before = self.state.current_cost_per_slot()
        escalations_before = getattr(self.scheduler, "escalations", 0)
        degraded_before = getattr(self.scheduler, "degraded", 0) + getattr(
            self.scheduler, "lp_skipped", 0
        )
        try:
            with obs.trace(slot=slot, trace_ids=trace_ids):
                with obs.timed_span(
                    "service.slot", slot=slot, batch=len(batch)
                ) as slot_span:
                    self.scheduler.on_slot(slot, requests)
        except Exception:
            # A failed slot must not strand its batch: put it back so
            # the caller can fail (or retry) the parked waiters.
            self.queue.requeue_front(batch)
            raise
        decision_s = slot_span.seconds
        degraded_now = getattr(self.scheduler, "degraded", 0) + getattr(
            self.scheduler, "lp_skipped", 0
        )
        if degraded_now > degraded_before:
            # The watchdog finished (or skipped) this slot fast-lane-only;
            # replay must take the same lane, so record it as its own.
            lane = "degraded"
        elif getattr(self.scheduler, "escalations", 0) > escalations_before:
            lane = "lp"
        else:
            lane = "fast"
        # The slot's charged-cost delta: what this batch added to the
        # per-interval bill.  A joint solve prices the batch as a
        # whole, so the delta is attributed batch-level, not split.
        cost_delta = round(
            self.state.current_cost_per_slot() - cost_before, 9
        )

        now = time.perf_counter()
        wall_ts = round(self.wall_time(slot), 3)
        admitted_count = 0
        resolutions: List[Resolution] = []
        for request in requests:
            pending = by_request_id[request.request_id]
            completion = self.state.completions.get(request.request_id)
            admitted = completion is not None
            admitted_count += int(admitted)
            record = {
                "id": pending.client_id,
                "decision": DECISION_ADMITTED if admitted else DECISION_REJECTED,
                "slot": slot,
                "release_slot": slot,
                "deadline_slot": request.last_slot,
                "completion_slot": completion,
                "lane": lane,
                "trace": pending.trace_id,
                "wait_s": round(now - pending.enqueued_at, 6),
                "decision_s": round(decision_s, 6),
                "cost_delta": cost_delta,
                "headroom_gb": headroom[request.request_id],
                "wall_ts": wall_ts,
            }
            self.decisions[pending.client_id] = record
            self.counts["admitted" if admitted else "rejected"] += 1
            obs.counter(
                "service.admitted" if admitted else "service.rejected",
                lane=lane,
            )
            obs.counter(
                "service.lane",
                trace=pending.trace_id,
                id=pending.client_id,
                lane=lane,
                slot=slot,
            )
            obs.gauge(
                "service.charge_delta",
                cost_delta,
                trace=pending.trace_id,
                id=pending.client_id,
                lane=lane,
                slot=slot,
                batch=len(batch),
                headroom_gb=headroom[request.request_id],
            )
            resolutions.append((pending, record))
        obs.gauge("service.admission_latency_s", decision_s)
        obs.gauge("service.decision_s", decision_s)

        self.counts["slots"] += 1
        self.counts["batches"] += 1
        self._dirty = True
        self.next_slot = slot + 1
        self.slo.record_slot(
            admitted_count, len(batch) - admitted_count, decision_s,
            self.queue.depth, degraded=int(lane == "degraded"),
        )
        if self.store and self.store.wal_enabled:
            # Commit-before-ack at O(1) cost: the slot's batch, its
            # decisions, the tallies, and the lane that placed it — on
            # disk before any waiter sees a decision.
            self.store.append_wal({
                "type": REC_COMMIT,
                "slot": slot,
                "batch": [pending.client_id for pending in batch],
                "decisions": {
                    pending.client_id: record
                    for pending, record in resolutions
                },
                "counts": dict(self.counts),
                "lane": lane,
            })
        if self.store and (
            self.draining or self.next_slot % self.config.checkpoint_every == 0
        ):
            self.checkpoint()
        chaos.crashpoint("commit.pre_ack")
        self.slo.evaluate(emit=True)
        return resolutions

    def _admission_headroom(self, source: int, destination: int, slot: int) -> float:
        """Paid watermark headroom toward ``destination`` at ``slot``.

        The direct link's headroom when one exists; otherwise the best
        over the source's outgoing links (a relay would have to start
        on one of them).
        """
        if self.topology.has_link(source, destination):
            return round(self.state.paid_headroom(source, destination, slot), 6)
        best = 0.0
        for link in self.topology.links:
            if link.src == source:
                best = max(
                    best, self.state.paid_headroom(link.src, link.dst, slot)
                )
        return round(best, 6)

    def drain_remaining(self) -> List[Resolution]:
        """Refuse new intake, flush the queue slot by slot, checkpoint.

        Returns every decision made while draining.  Always writes a
        final snapshot (when a store is configured), even if the queue
        was already empty — the shutdown must be resumable.
        """
        self.draining = True
        resolved: List[Resolution] = []
        while self.queue.depth > 0:
            resolved.extend(self.process_slot())
        if self.store:
            self.checkpoint()
        return resolved

    # -- persistence -------------------------------------------------------

    def checkpoint(self) -> None:
        """Snapshot state + queue + clock + decision log (atomic)."""
        if self.store is None:
            raise ServiceError("no checkpoint directory configured")
        started = time.perf_counter()
        self.store.save(
            self.state,
            self.queue.snapshot_payloads(),
            self.next_slot,
            meta={
                "decisions": self.decisions,
                "counts": self.counts,
                "wall_epoch": self.wall_epoch,
            },
        )
        self.slo.record_checkpoint(time.perf_counter() - started)
        self._dirty = False

    # -- reporting ---------------------------------------------------------

    def wall_time(self, slot: float) -> float:
        """Unix timestamp virtual ``slot`` maps to (billing alignment)."""
        return self.config.wall_time(slot, self.wall_epoch)

    def stamped_usage(self, top: int = 0) -> List[Dict[str, Any]]:
        """Per-link ledger samples stamped with wall-clock timestamps.

        One entry per used link, busiest first, each with its charged
        watermark and the wall-stamped per-slot samples — the export a
        billing reconciliation matches against 5-minute ISP invoice
        intervals.  ``top`` limits to the N busiest links (0 = all).
        """
        entries = []
        for src, dst in self.state.ledger.used_links():
            samples = self.state.ledger.stamped_samples(
                src, dst, self.wall_time
            )
            entries.append({
                "link": [src, dst],
                "charged_gb": round(self.state.charged_volume(src, dst), 6),
                "total_gb": round(sum(s["gb"] for s in samples), 6),
                "samples": samples,
            })
        entries.sort(key=lambda e: e["total_gb"], reverse=True)
        return entries[:top] if top else entries

    def telemetry(self, metrics: Optional[Any] = None) -> Dict[str, Any]:
        """The ``metrics`` protocol op's body (JSON-safe).

        ``metrics`` is the daemon's attached
        :class:`~repro.obs.metrics.MetricsSnapshot` (None when
        telemetry is disabled — the broker-level sections still
        answer).
        """
        return {
            "stats": self.stats(),
            "slo": self.slo.evaluate(emit=False),
            "snapshot": metrics.snapshot() if metrics is not None else {},
            "wall": {
                "epoch": round(self.wall_epoch, 3),
                "slot_wall_seconds": self.config.slot_wall_seconds,
                "next_slot": self.next_slot,
                "next_slot_wall_ts": round(self.wall_time(self.next_slot), 3),
            },
            "recovery": {
                "resumed": self.resumed,
                "info": dict(self.recovery_info),
                "verifier": self.verifier_report,
            },
        }

    def stats(self) -> Dict[str, Any]:
        """The ``stats`` protocol response body."""
        return {
            "endpoint": self.config.endpoint,
            "scheduler": self.config.scheduler,
            "datacenters": self.config.datacenters,
            "tick_seconds": self.config.tick_seconds,
            "next_slot": self.next_slot,
            "queue_depth": self.queue.depth,
            "max_queue": self.config.max_queue,
            "draining": self.draining,
            "resumed": self.resumed,
            "cost_per_slot": round(self.state.current_cost_per_slot(), 6),
            "escalations": getattr(self.scheduler, "escalations", 0),
            "fast_slots": getattr(self.scheduler, "fast_slots", 0),
            "degraded": getattr(self.scheduler, "degraded", 0),
            "lp_skipped": getattr(self.scheduler, "lp_skipped", 0),
            "wal": bool(self.store and self.store.wal_enabled),
            "windowed_links": (
                len(self.link_schedule) if self.link_schedule else 0
            ),
            "link_windows": (
                self.link_schedule.num_windows if self.link_schedule else 0
            ),
            "forecast": (
                self.scheduler.forecast.stats()
                if getattr(self.scheduler, "forecast", None) is not None
                else None
            ),
            "period_slots": self.config.period_slots,
            "period_start": self.state.period_start,
            "periods_banked": len(self.state.banked_period_bills),
            "last_period_bill": round(
                self.state.banked_period_bills[-1], 6
            ) if self.state.banked_period_bills else 0.0,
            **(
                self.store.stats()
                if self.store
                else {"checkpoints": 0, "generation": 0, "wal_records": 0,
                      "wal_bytes": 0, "snapshot_bytes": 0}
            ),
            **self.counts,
        }
