"""Snapshot persistence for the daemon: save/load via core/checkpoint.

The store owns one directory with one ``snapshot.json`` (written
atomically by :func:`repro.core.checkpoint.save_snapshot`).  A snapshot
captures the full resume set: the NetworkState's billing accounting,
the pending intake queue, the next virtual slot, and the decision log —
so a daemon killed between slots restarts mid-charging-period without
losing billed-volume history or double-charging replayed work.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.checkpoint import ServiceSnapshot, load_snapshot, save_snapshot
from repro.core.state import NetworkState
from repro.net.topology import Topology
from repro.obs import registry as obs

SNAPSHOT_NAME = "snapshot.json"


class SnapshotStore:
    """Atomic snapshot files under one checkpoint directory."""

    def __init__(self, directory: str):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Snapshots written by this process (stats surface this).
        self.saves = 0

    @property
    def path(self) -> Path:
        return self.directory / SNAPSHOT_NAME

    def exists(self) -> bool:
        return self.path.exists()

    def save(
        self,
        state: NetworkState,
        pending: List[Dict[str, Any]],
        next_slot: int,
        meta: Dict[str, Any],
    ) -> None:
        with obs.span("service.checkpoint", slot=next_slot, pending=len(pending)):
            save_snapshot(state, self.path, pending, next_slot, meta)
        self.saves += 1
        obs.counter("service.checkpoints")

    def load(self, topology: Topology) -> Optional[ServiceSnapshot]:
        """The last snapshot, or ``None`` on a fresh checkpoint dir."""
        if not self.exists():
            return None
        return load_snapshot(self.path, topology)
