"""Snapshot + WAL persistence for the daemon.

Two modes under one checkpoint directory:

**Legacy snapshot mode** (``wal=False``) — one ``snapshot.json``
rewritten atomically every ``checkpoint_every`` slots, exactly as
introduced with the broker.  Cost: O(served requests) bytes per write,
and slots after the last snapshot roll back on a crash.

**WAL mode** (``wal=True``, PR 7) — the directory holds *generations*::

    snapshot-00000001.json   wal-00000001.log
    snapshot-00000002.json   wal-00000002.log      <- newest
    wal-00000000.log                               <- genesis log

Every admission and every slot commit is appended to the current
generation's log (O(1) bytes, fsync'd before the ack) by
:class:`~repro.service.wal.WriteAheadLog`; every ``checkpoint_every``
slots the store *compacts*: writes ``snapshot-<g+1>.json`` with the
full durability dance, switches appends to a fresh ``wal-<g+1>.log``,
and prunes generations older than the retention window.  Log ``g``
therefore covers exactly the interval between snapshot ``g`` and
snapshot ``g+1`` — which is what makes checksum fallback work:
:meth:`recover` loads the newest snapshot whose checksum verifies (a
corrupt one costs a generation, not the history) and replays every
retained log from that generation forward.  Torn log tails are
truncated; stray ``*.tmp`` files from a mid-compaction death are swept.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.checkpoint import (
    ServiceSnapshot,
    fsync_directory,
    load_snapshot,
    save_snapshot,
)
from repro.core.state import NetworkState
from repro.errors import SchedulingError, WalError
from repro.net.topology import Topology
from repro.obs import registry as obs
from repro.service import chaos
from repro.service.wal import WriteAheadLog, scan_wal, truncate_torn_tail

SNAPSHOT_NAME = "snapshot.json"

#: Zero-padded generation width in file names (keeps lexicographic and
#: numeric order identical for the curious shell user).
_GEN_WIDTH = 8


class SnapshotStore:
    """Atomic snapshot files — generational + WAL'd when ``wal=True``."""

    def __init__(
        self,
        directory: str,
        wal: bool = False,
        retain: int = 3,
        fsync: bool = True,
    ):
        if retain < 1:
            raise WalError(f"snapshot retention must be >= 1, got {retain}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal_enabled = wal
        self.retain = retain
        self.fsync = fsync
        #: Snapshots written by this process (stats surface this).
        self.saves = 0
        #: Snapshot bytes written by this process (durability benchmark).
        self.snapshot_bytes = 0
        #: The open append log (WAL mode, after :meth:`open_wal`).
        self.wal: Optional[WriteAheadLog] = None
        #: Lifetime WAL totals across log rotations (stats surface the
        #: sum of these and the open log's own counters).
        self._retired_wal_records = 0
        self._retired_wal_bytes = 0
        #: What the last :meth:`recover` found (fallbacks, torn bytes...).
        self.last_recovery: Dict[str, Any] = {}
        self._generation = 0

    # -- file layout -------------------------------------------------------

    @property
    def path(self) -> Path:
        """Legacy single-file snapshot path."""
        return self.directory / SNAPSHOT_NAME

    @property
    def generation(self) -> int:
        """The generation currently receiving WAL appends."""
        return self._generation

    def snapshot_path(self, generation: int) -> Path:
        return self.directory / f"snapshot-{generation:0{_GEN_WIDTH}d}.json"

    def wal_path(self, generation: int) -> Path:
        return self.directory / f"wal-{generation:0{_GEN_WIDTH}d}.log"

    def _numbered(self, pattern: str, prefix: str, suffix: str) -> List[int]:
        found = []
        for entry in self.directory.glob(pattern):
            stem = entry.name[len(prefix) : -len(suffix)]
            if stem.isdigit():
                found.append(int(stem))
        return sorted(found)

    def snapshot_generations(self) -> List[int]:
        """Generations with a snapshot file on disk, ascending."""
        return self._numbered("snapshot-*.json", "snapshot-", ".json")

    def wal_generations(self) -> List[int]:
        """Generations with a WAL file on disk, ascending."""
        return self._numbered("wal-*.log", "wal-", ".log")

    def newest_generation(self) -> int:
        """Highest generation any on-disk file belongs to (0 if none)."""
        gens = self.snapshot_generations() + self.wal_generations()
        return max(gens) if gens else 0

    def exists(self) -> bool:
        if self.wal_enabled:
            return bool(self.snapshot_generations() or self.wal_generations())
        return self.path.exists()

    # -- WAL appends -------------------------------------------------------

    def open_wal(self) -> WriteAheadLog:
        """Open (creating if needed) the current generation's append log."""
        if not self.wal_enabled:
            raise WalError("open_wal on a store without wal=True")
        if self.wal is None or self.wal.closed:
            self.wal = WriteAheadLog(
                self.wal_path(self._generation),
                fsync=self.fsync,
                crashpoint=chaos.crashpoint,
                mangle=chaos.mangle,
            )
        return self.wal

    def append_wal(self, record: Dict[str, Any]) -> int:
        """Durably append one record to the current generation's log."""
        return self.open_wal().append(record)

    # -- snapshots ---------------------------------------------------------

    def save(
        self,
        state: NetworkState,
        pending: List[Dict[str, Any]],
        next_slot: int,
        meta: Dict[str, Any],
    ) -> None:
        """Write a snapshot: a compaction in WAL mode, a rewrite otherwise."""
        if self.wal_enabled:
            self.compact(state, pending, next_slot, meta)
            return
        with obs.span("service.checkpoint", slot=next_slot, pending=len(pending)):
            self.snapshot_bytes += save_snapshot(
                state, self.path, pending, next_slot, meta,
                fsync=self.fsync, crashpoint=chaos.crashpoint,
            )
        self.saves += 1
        obs.counter("service.checkpoints")

    def compact(
        self,
        state: NetworkState,
        pending: List[Dict[str, Any]],
        next_slot: int,
        meta: Dict[str, Any],
    ) -> int:
        """Snapshot the full state as generation ``g+1``, rotate the log.

        Ordering is the crash-safety argument: the new snapshot reaches
        disk (tmp + fsync + rename + dir fsync) *before* appends switch
        to the new log and *before* anything old is pruned.  A death at
        any boundary leaves either (old snapshot + complete old log) or
        (new snapshot [+ empty-or-partial new log]) — both recoverable.
        Returns the new generation number.
        """
        generation = self._generation + 1
        with obs.span(
            "service.checkpoint", slot=next_slot,
            pending=len(pending), generation=generation,
        ):
            self.snapshot_bytes += save_snapshot(
                state, self.snapshot_path(generation), pending, next_slot,
                meta, fsync=self.fsync, crashpoint=chaos.crashpoint,
            )
        self._retire_wal()
        self._generation = generation
        self.open_wal()
        if self.fsync:
            fsync_directory(self.directory)
        self._prune(generation)
        self.saves += 1
        obs.counter("service.checkpoints", generation=generation)
        return generation

    def _prune(self, generation: int) -> None:
        """Drop generations older than the retention window.

        Keeps the last ``retain`` snapshot generations *and their logs*
        — a fallback to the oldest retained snapshot still replays a
        complete log chain to the head.
        """
        cutoff = generation - self.retain + 1
        for gen in self.snapshot_generations():
            if gen < cutoff:
                self.snapshot_path(gen).unlink(missing_ok=True)
        for gen in self.wal_generations():
            if gen < cutoff:
                self.wal_path(gen).unlink(missing_ok=True)

    # -- recovery ----------------------------------------------------------

    def load(self, topology: Topology) -> Optional[ServiceSnapshot]:
        """Legacy mode: the last snapshot, or ``None`` on a fresh dir.

        Refuses a corrupt snapshot loudly (version/checksum checks in
        :func:`~repro.core.checkpoint.snapshot_from_json`) — serving
        from silently-bad books is the one outcome worse than downtime.
        """
        if not self.path.exists():
            return None
        return load_snapshot(self.path, topology)

    def recover(
        self, topology: Topology
    ) -> Tuple[Optional[ServiceSnapshot], List[Dict[str, Any]], Dict[str, Any]]:
        """WAL mode: newest valid snapshot + the records to replay over it.

        Walks snapshot generations newest-first until one passes its
        checksum (each rejection is a counted *fallback*), truncates
        torn log tails, sweeps stray ``*.tmp`` files, and returns
        ``(snapshot_or_None, records, info)``.  The caller replays
        ``records`` — every intact record from the chosen generation's
        log through the newest log — on top of the snapshot.
        """
        info: Dict[str, Any] = {
            "base_generation": None,
            "fallbacks": 0,
            "fallback_errors": [],
            "replayed_records": 0,
            "torn_bytes": 0,
            "stray_tmp": 0,
        }
        for stray in sorted(self.directory.glob("*.tmp")):
            stray.unlink(missing_ok=True)
            info["stray_tmp"] += 1
            obs.counter("service.recovery.stray_tmp")

        snapshot: Optional[ServiceSnapshot] = None
        base = 0
        for gen in reversed(self.snapshot_generations()):
            try:
                snapshot = load_snapshot(self.snapshot_path(gen), topology)
                base = gen
                break
            except (SchedulingError, OSError, ValueError) as exc:
                # ValueError covers UnicodeDecodeError: a byte-level
                # corruption can break the UTF-8 decode before the
                # checksum ever gets a look.
                info["fallbacks"] += 1
                info["fallback_errors"].append(f"generation {gen}: {exc}")
                obs.counter("service.snapshot.fallback", generation=gen)
        if snapshot is None:
            wal_gens = self.wal_generations()
            if wal_gens and wal_gens[0] > 0:
                raise WalError(
                    "no readable snapshot generation and the retained WAL "
                    f"chain starts at generation {wal_gens[0]}, not genesis; "
                    "the history cannot be rebuilt"
                )
            base = 0

        records: List[Dict[str, Any]] = []
        newest = max([base] + self.wal_generations())
        for gen in range(base, newest + 1):
            scan = scan_wal(self.wal_path(gen))
            if scan.torn:
                info["torn_bytes"] += truncate_torn_tail(scan)
            records.extend(scan.records)

        self._generation = newest
        info["base_generation"] = base if (snapshot or records) else None
        info["replayed_records"] = len(records)
        self.last_recovery = info
        return snapshot, records, info

    # -- reporting ---------------------------------------------------------

    def _retire_wal(self) -> None:
        """Fold the open log's counters into the lifetime totals, close it."""
        if self.wal is not None:
            self._retired_wal_records += self.wal.records_written
            self._retired_wal_bytes += self.wal.bytes_written
            self.wal.close()
            self.wal = None

    def stats(self) -> Dict[str, Any]:
        """Persistence counters for the broker's ``stats`` op.

        ``wal_records``/``wal_bytes`` are lifetime totals across log
        rotations, not just the open generation's log — the durability
        benchmark divides them by request count.
        """
        open_records = self.wal.records_written if self.wal else 0
        open_bytes = self.wal.bytes_written if self.wal else 0
        return {
            "checkpoints": self.saves,
            "generation": self._generation if self.wal_enabled else 0,
            "wal_records": self._retired_wal_records + open_records,
            "wal_bytes": self._retired_wal_bytes + open_bytes,
            "snapshot_bytes": self.snapshot_bytes,
        }

    def close(self) -> None:
        self._retire_wal()
