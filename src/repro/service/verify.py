"""Post-recovery invariant checks on a resumed broker.

A recovery path that silently produces inconsistent books is worse
than a crash — the cost model double-charges (or loses) traffic and
nobody notices until the invoice.  :func:`verify_recovery` is run by
the broker after every WAL resume and by every chaos drill; a failed
check raises :class:`~repro.errors.RecoveryVerifyError` (strict mode),
because serving from bad books must not happen.

Checks:

``ledger_conservation``
    The charged watermark ``X_ij`` of every link equals the maximum
    per-slot volume the ledger actually recorded over the current
    charging period.  Replay that dropped or doubled a commit shows up
    here first.
``no_double_charge``
    The decision log is consistent with the admission/rejection
    tallies, and no client id is simultaneously decided *and* still
    pending — a submission replayed into both states would be charged
    twice.
``watermark_monotonic``
    The process-local request-id counter sits strictly above every
    request id the restored completions reference, so post-resume
    admissions can never collide with pre-crash ones.
``next_slot_consistent``
    The virtual clock is at or past every slot the decision log has
    committed — a rewound clock would re-run (and re-bill) slots.
``queue_bounded``
    The restored intake queue respects the configured bound.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import RecoveryVerifyError
from repro.obs import registry as obs

#: Ledger volumes are accumulated floats; equality up to this.
_EPS = 1e-6


def verify_recovery(broker, strict: bool = True) -> Dict[str, Any]:
    """Run every invariant check against a (typically resumed) broker.

    Returns ``{"ok": bool, "checks": {name: {"ok", "detail"}}}``.  With
    ``strict=True`` (the default) a failed check raises
    :class:`RecoveryVerifyError` naming every violated invariant.
    """
    from repro.traffic.spec import peek_next_request_id

    state = broker.state
    checks: Dict[str, Dict[str, Any]] = {}

    # -- ledger conservation ----------------------------------------------
    worst = ("", 0.0)
    for link in state.topology.links:
        charged = state.charged_volume(link.src, link.dst)
        # The current period's window: [period_start, period_start +
        # horizon) — the same range start_new_period re-seeds from, so
        # the check stays valid after any number of billing rollovers.
        peak = state.ledger.peak_in_range(
            link.src, link.dst, state.period_start,
            state.period_start + state.horizon,
        )
        drift = abs(charged - peak)
        if drift > worst[1]:
            worst = (f"{link.src}->{link.dst}", drift)
    checks["ledger_conservation"] = {
        "ok": worst[1] <= _EPS,
        "detail": (
            "charged == period peak on every link"
            if worst[1] <= _EPS
            else f"link {worst[0]} drifts {worst[1]:.9f} GB from its period peak"
        ),
    }

    # -- no double charge --------------------------------------------------
    decided = broker.counts["admitted"] + broker.counts["rejected"]
    tally_ok = decided == len(broker.decisions)
    pending_ids = set(broker.queue.pending_ids())
    overlap = pending_ids & set(broker.decisions)
    checks["no_double_charge"] = {
        "ok": tally_ok and not overlap,
        "detail": (
            f"{len(broker.decisions)} decisions, tallies admitted+rejected="
            f"{decided}"
            + (f", ids both decided and pending: {sorted(overlap)}" if overlap else "")
        ),
    }

    # -- watermark monotonicity -------------------------------------------
    # No restored completions (an admissions-only resume: the crash
    # landed before any slot committed) means no ids to collide with —
    # default -1 so a fresh counter at 0 passes.
    highest = max(state.completions, default=-1)
    watermark = peek_next_request_id()
    checks["watermark_monotonic"] = {
        "ok": watermark > highest,
        "detail": (
            f"next request id {watermark} vs highest restored "
            f"completion id {highest}"
        ),
    }

    # -- next-slot consistency --------------------------------------------
    last_committed = max(
        (rec.get("slot", -1) for rec in broker.decisions.values()), default=-1
    )
    checks["next_slot_consistent"] = {
        "ok": broker.next_slot > last_committed and broker.next_slot >= 0,
        "detail": (
            f"next_slot={broker.next_slot}, last committed decision "
            f"slot={last_committed}"
        ),
    }

    # -- queue bound -------------------------------------------------------
    checks["queue_bounded"] = {
        "ok": broker.queue.depth <= broker.config.max_queue,
        "detail": (
            f"depth {broker.queue.depth} <= max_queue "
            f"{broker.config.max_queue}"
        ),
    }

    ok = all(c["ok"] for c in checks.values())
    report = {"ok": ok, "checks": checks}
    obs.counter("service.recovery.verified" if ok else "service.recovery.failed")
    if strict and not ok:
        failed = ", ".join(
            f"{name} ({c['detail']})" for name, c in checks.items() if not c["ok"]
        )
        raise RecoveryVerifyError(
            f"post-recovery invariant checks failed: {failed}"
        )
    return report
