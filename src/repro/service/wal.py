"""Append-only, fsync'd, CRC-checksummed write-ahead log.

The broker's durability upgrade (PR 7): instead of rewriting the whole
snapshot JSON every few slots — O(served requests) bytes per write —
each admission and each slot commit is logged as one O(1)-sized record
*before* the client sees its ack.  Recovery replays the log over the
newest valid snapshot generation (see :class:`repro.service.store`),
so the resumed broker is exact even though snapshots are only compacted
periodically.

Record framing, designed so a crash can land anywhere::

    [ length u32 | crc32 u32 | payload bytes ]  repeated

``length`` and ``crc32`` are little-endian and cover the payload (a
compact-JSON object).  A torn tail — short header, short payload, CRC
mismatch, or unparseable JSON — marks the end of the recoverable
prefix: everything before it is intact by checksum, everything at and
after it is discarded by :func:`truncate_torn_tail`.  Tearing is an
expected crash artifact, never an error.

Record types the broker writes (:mod:`repro.service.slotloop`)::

    {"type": "admit",  "entry": {..pending payload..}, "submitted": n}
    {"type": "commit", "slot": t, "batch": [client ids],
     "decisions": {id: record}, "counts": {...}, "lane": "fast|lp|degraded"}

``admit`` is fsync'd before the submission is acknowledged as pending;
``commit`` is fsync'd before any of the slot's decisions are released
to waiting clients — the checkpoint-before-ack contract at per-record
cost instead of per-snapshot cost.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import WalError
from repro.obs import registry as obs

PathLike = Union[str, Path]

#: ``<length u32, crc32 u32>`` little-endian record header.
RECORD_HEADER = struct.Struct("<II")

#: Parse bound on one record's payload.  Real records are a few hundred
#: bytes; a length field beyond this is framing garbage, not a record.
MAX_RECORD_BYTES = 16 * 1024 * 1024

#: Record type tags.
REC_ADMIT = "admit"
REC_COMMIT = "commit"


def encode_record(record: Dict[str, Any]) -> bytes:
    """One record as its on-disk frame (header + compact JSON payload)."""
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_RECORD_BYTES:
        raise WalError(
            f"WAL record of {len(payload)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte bound"
        )
    return RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class WalScan:
    """The readable prefix of one WAL file.

    ``valid_bytes`` is the offset the intact prefix ends at;
    ``torn_bytes`` is how much trailing garbage follows it (0 for a
    cleanly closed log); ``torn_reason`` says what ended the scan.
    """

    path: Path
    records: List[Dict[str, Any]] = field(default_factory=list)
    valid_bytes: int = 0
    torn_bytes: int = 0
    torn_reason: str = ""

    @property
    def torn(self) -> bool:
        return self.torn_bytes > 0


def scan_wal(path: PathLike) -> WalScan:
    """Read every intact record of a WAL file; stop at the first tear.

    Never raises on file *content* — corruption is a crash artifact the
    caller truncates, not an exception.  A missing file scans as empty.
    """
    target = Path(path)
    scan = WalScan(path=target)
    if not target.exists():
        return scan
    data = target.read_bytes()
    offset = 0
    while offset < len(data):
        header = data[offset : offset + RECORD_HEADER.size]
        if len(header) < RECORD_HEADER.size:
            scan.torn_reason = "short header"
            break
        length, crc = RECORD_HEADER.unpack(header)
        if length > MAX_RECORD_BYTES:
            scan.torn_reason = f"implausible record length {length}"
            break
        start = offset + RECORD_HEADER.size
        payload = data[start : start + length]
        if len(payload) < length:
            scan.torn_reason = "short payload"
            break
        if zlib.crc32(payload) != crc:
            scan.torn_reason = "checksum mismatch"
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            scan.torn_reason = "payload is not valid JSON"
            break
        scan.records.append(record)
        offset = start + length
        scan.valid_bytes = offset
    scan.torn_bytes = len(data) - scan.valid_bytes
    return scan


def truncate_torn_tail(scan: WalScan) -> int:
    """Cut a scanned file back to its intact prefix; returns bytes cut.

    The truncation is fsync'd: a recovery that trimmed a torn tail and
    then crashed again must not resurrect the garbage.
    """
    if not scan.torn:
        return 0
    with open(scan.path, "r+b") as fh:
        fh.truncate(scan.valid_bytes)
        fh.flush()
        os.fsync(fh.fileno())
    obs.counter(
        "service.wal.torn_truncated", scan.torn_bytes, reason=scan.torn_reason
    )
    return scan.torn_bytes


class WriteAheadLog:
    """One open, append-only WAL file.

    ``fsync=True`` (the default) makes every append durable before it
    returns — the property the before-ack contract rests on.  The
    ``crashpoint`` / ``mangle`` hooks are the chaos harness's taps (see
    :mod:`repro.service.chaos`); production leaves them ``None``.
    """

    def __init__(
        self,
        path: PathLike,
        fsync: bool = True,
        crashpoint: Optional[Callable[[str], None]] = None,
        mangle: Optional[Callable[[str, bytes], bytes]] = None,
    ):
        self.path = Path(path)
        self.fsync = fsync
        self._crashpoint = crashpoint or (lambda stage: None)
        self._mangle = mangle or (lambda stage, data: data)
        self._fh: Optional[Any] = open(self.path, "ab")
        #: Appended by this process (not the on-disk total after resume).
        self.records_written = 0
        self.bytes_written = 0

    @property
    def closed(self) -> bool:
        return self._fh is None

    def size_bytes(self) -> int:
        """Current on-disk size (records from before a resume included)."""
        return self.path.stat().st_size if self.path.exists() else 0

    def append(self, record: Dict[str, Any]) -> int:
        """Frame, write, and (by default) fsync one record.

        Returns the frame size in bytes.  The chaos taps sit exactly at
        the boundaries a real crash distinguishes: before the write,
        between write and fsync (data may or may not reach disk), and
        after the fsync (record durable, ack not yet sent).
        """
        if self._fh is None:
            raise WalError(f"append to closed WAL {self.path}")
        frame = encode_record(record)
        self._crashpoint("wal.pre_write")
        data = self._mangle("wal.append", frame)
        self._fh.write(data)
        self._fh.flush()
        self._crashpoint("wal.pre_fsync")
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._crashpoint("wal.post_fsync")
        self.records_written += 1
        self.bytes_written += len(data)
        return len(frame)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({str(self.path)!r}, records={self.records_written}, "
            f"bytes={self.bytes_written})"
        )
