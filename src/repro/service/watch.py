"""``repro watch``: a live terminal dashboard over a running daemon.

Polls the ``metrics`` protocol op on an interval and renders the
response as a plain-text dashboard: broker vitals, SLO objectives with
their budgets and OK/BREACH states, latency histograms (p50/p90/p99),
and the lane/admission counter set.  ANSI clear-screen between frames
(suppressible) keeps it feeling live on a terminal while staying pipe-
safe in scripts and tests.

The renderer is a pure function of one ``metrics`` response dict, so
tests (and anything else) can feed it captured snapshots.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Dict, List, Optional

from repro.analysis import format_table
from repro.errors import ServiceError
from repro.service.loadgen import _Connection, parse_endpoint

#: ANSI: clear screen + home.
CLEAR = "\x1b[2J\x1b[H"

#: Histograms worth a dashboard row, in display order; anything else
#: present in the snapshot follows alphabetically.
_PREFERRED_HISTOGRAMS = (
    "service.slot",
    "service.decision_s",
    "service.admission_latency_s",
    "scheduler.solve",
    "hybrid.fastpath",
    "hybrid.escalate",
    "service.checkpoint",
)

#: Counters surfaced on the dashboard when present.
_COUNTER_ROWS = (
    "service.submitted",
    "service.admitted",
    "service.rejected",
    "service.backpressure",
    "hybrid.fast_slots",
    "hybrid.escalations",
    "service.checkpoints",
    "slo.breaches",
)


def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.2f}ms"


def render_dashboard(response: Dict[str, Any]) -> str:
    """One dashboard frame for a ``metrics`` op response dict."""
    stats = response.get("stats", {})
    slo = response.get("slo", {})
    snapshot = response.get("snapshot", {})
    wall = response.get("wall", {})
    lines: List[str] = []

    lines.append(
        f"postcard broker — {stats.get('endpoint', '?')} "
        f"scheduler={stats.get('scheduler', '?')} "
        f"slot={stats.get('next_slot', '?')} "
        f"queue={stats.get('queue_depth', '?')}/{stats.get('max_queue', '?')}"
    )
    lines.append(
        f"submitted={stats.get('submitted', 0)} "
        f"admitted={stats.get('admitted', 0)} "
        f"rejected={stats.get('rejected', 0)} "
        f"backpressured={stats.get('backpressured', 0)} "
        f"cost/slot={stats.get('cost_per_slot', 0.0)} "
        f"draining={stats.get('draining', False)}"
    )
    if wall:
        lines.append(
            f"wall: slot {wall.get('next_slot', '?')} ~ "
            f"{time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(wall.get('next_slot_wall_ts', 0.0)))} "
            f"({wall.get('slot_wall_seconds', '?')}s per slot)"
        )
    forecast = stats.get("forecast")
    if forecast:
        lines.append(
            f"forecast: predictor={forecast.get('predictor', '?')} "
            f"{'warm' if forecast.get('active') else 'warming'} "
            f"mape={forecast.get('mape', 0.0):.2f} "
            f"trust={forecast.get('trust', 0.0):.2f} "
            f"shifted={forecast.get('shifted_gb', 0.0):.1f}GB "
            f"guard-trips={forecast.get('guard_trips', 0)}"
        )

    if slo:
        lines.append("")
        lines.append("SLO objectives:")
        rows = []
        for name, state in slo.items():
            rows.append([
                name,
                f"{state['value']:.4f}",
                f"{state['budget']:.4f}",
                state.get("window", 0),
                "ok" if state.get("ok") else "BREACH",
            ])
        lines.append(format_table(
            ["objective", "value", "budget", "window", "state"], rows
        ))

    histograms = snapshot.get("histograms", {})
    if histograms:
        ordered = [n for n in _PREFERRED_HISTOGRAMS if n in histograms]
        ordered += sorted(n for n in histograms if n not in ordered)
        rows = []
        for name in ordered:
            stat = histograms[name]
            if not stat.get("count"):
                continue
            rows.append([
                name,
                stat["count"],
                _ms(stat["p50"]),
                _ms(stat["p90"]),
                _ms(stat["p99"]),
                _ms(stat["max"]),
            ])
        if rows:
            lines.append("")
            lines.append("latency (p50/p90/p99/max):")
            lines.append(format_table(
                ["stage", "count", "p50", "p90", "p99", "max"], rows
            ))

    counters = snapshot.get("counters", {})
    rows = [
        [name, counters[name]["total"]]
        for name in _COUNTER_ROWS
        if name in counters
    ]
    if rows:
        lines.append("")
        lines.append("counters:")
        lines.append(format_table(["counter", "total"], rows))

    gauges = snapshot.get("gauges", {})
    active = gauges.get("service.connections.active")
    if active is not None:
        lines.append(
            f"connections: active={active['last']:.0f} "
            f"(peak {active['max']:.0f})"
        )
    return "\n".join(lines) + "\n"


def render_fleet_dashboard(responses: Dict[str, Dict[str, Any]]) -> str:
    """One fleet frame: a per-shard vitals table plus each shard's SLOs.

    ``responses`` maps shard name to its ``metrics`` response dict (or
    to ``{"down": reason}`` for an unreachable shard — it still gets a
    row, marked down, so a dead shard is loud on the dashboard).
    """
    lines: List[str] = [f"postcard fleet — {len(responses)} shard(s)"]
    rows = []
    breaches = []
    for name in sorted(responses):
        body = responses[name]
        if "down" in body and "stats" not in body:
            rows.append([name, "DOWN", "-", "-", "-", "-", "-", "-"])
            continue
        stats = body.get("stats", {})
        snapshot = body.get("snapshot", {})
        decision = snapshot.get("histograms", {}).get("service.decision_s", {})
        rows.append([
            name,
            stats.get("next_slot", "?"),
            f"{stats.get('queue_depth', '?')}/{stats.get('max_queue', '?')}",
            stats.get("submitted", 0),
            stats.get("admitted", 0),
            stats.get("rejected", 0),
            _ms(decision["p99"]) if decision.get("count") else "-",
            stats.get("cost_per_slot", 0.0),
        ])
        for obj, state in body.get("slo", {}).items():
            if not state.get("ok", True):
                breaches.append(f"{name}: {obj} at {state['value']:.4f} "
                                f"(budget {state['budget']:.4f})")
    lines.append(format_table(
        ["shard", "slot", "queue", "submitted", "admitted", "rejected",
         "p99 decide", "cost/slot"],
        rows,
    ))
    if breaches:
        lines.append("")
        lines.append("SLO breaches:")
        lines.extend(f"  {b}" for b in breaches)
    return "\n".join(lines) + "\n"


async def run_watch(
    *,
    host: str = "127.0.0.1",
    port: int = 7411,
    socket_path: Optional[str] = None,
    endpoints: Optional[Dict[str, str]] = None,
    interval_s: float = 1.0,
    iterations: int = 0,
    clear: bool = True,
    write: Callable[[str], Any] = print,
) -> int:
    """Poll ``metrics`` and render dashboard frames.

    With ``endpoints`` (shard name -> endpoint spec) the watch runs in
    fleet mode: every endpoint is polled each interval and rendered as
    one per-shard row via :func:`render_fleet_dashboard`; a shard that
    stops answering is shown DOWN rather than killing the watch.
    Otherwise a single daemon at ``host``/``port``/``socket_path`` gets
    the full single-broker dashboard.

    ``iterations=0`` runs until the connection drops (daemon drained)
    or the caller interrupts; otherwise exactly that many frames are
    rendered — what tests and one-shot ``--once`` invocations use.
    Returns the number of frames rendered.
    """
    if endpoints:
        return await _run_fleet_watch(
            endpoints, interval_s=interval_s, iterations=iterations,
            clear=clear, write=write,
        )
    conn = await _Connection.open(host, port, socket_path)
    frames = 0
    try:
        while True:
            response = await conn.call({"op": "metrics"})
            if not response.get("ok"):
                raise ServiceError(
                    f"metrics op refused: {response.get('message', response)}"
                )
            frame = render_dashboard(response)
            write((CLEAR if clear else "") + frame)
            frames += 1
            if iterations and frames >= iterations:
                return frames
            await asyncio.sleep(interval_s)
    except ServiceError:
        if frames == 0:
            raise
        return frames
    finally:
        await conn.close()


async def _run_fleet_watch(
    endpoints: Dict[str, str],
    *,
    interval_s: float,
    iterations: int,
    clear: bool,
    write: Callable[[str], Any],
) -> int:
    conns: Dict[str, _Connection] = {}

    async def poll(name: str) -> Dict[str, Any]:
        conn = conns.get(name)
        try:
            if conn is None:
                h, p, sp = parse_endpoint(endpoints[name])
                conn = await _Connection.open(h, p, sp)
                conns[name] = conn
            response = await conn.call({"op": "metrics"})
        except (ServiceError, OSError, ConnectionError) as exc:
            stale = conns.pop(name, None)
            if stale is not None:
                await stale.close()
            return {"down": str(exc)}
        if not response.get("ok"):
            return {"down": response.get("message", "metrics refused")}
        return response

    frames = 0
    try:
        while True:
            bodies = await asyncio.gather(*(poll(n) for n in endpoints))
            responses = dict(zip(endpoints, bodies))
            if all("down" in b and "stats" not in b for b in responses.values()):
                if frames == 0:
                    raise ServiceError(
                        "no shard answered: "
                        + "; ".join(
                            f"{n}: {b['down']}" for n, b in responses.items()
                        )
                    )
                return frames
            write((CLEAR if clear else "") + render_fleet_dashboard(responses))
            frames += 1
            if iterations and frames >= iterations:
                return frames
            await asyncio.sleep(interval_s)
    finally:
        for conn in conns.values():
            await conn.close()
