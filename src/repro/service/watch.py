"""``repro watch``: a live terminal dashboard over a running daemon.

Polls the ``metrics`` protocol op on an interval and renders the
response as a plain-text dashboard: broker vitals, SLO objectives with
their budgets and OK/BREACH states, latency histograms (p50/p90/p99),
and the lane/admission counter set.  ANSI clear-screen between frames
(suppressible) keeps it feeling live on a terminal while staying pipe-
safe in scripts and tests.

The renderer is a pure function of one ``metrics`` response dict, so
tests (and anything else) can feed it captured snapshots.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Dict, List, Optional

from repro.analysis import format_table
from repro.errors import ServiceError
from repro.service.loadgen import _Connection

#: ANSI: clear screen + home.
CLEAR = "\x1b[2J\x1b[H"

#: Histograms worth a dashboard row, in display order; anything else
#: present in the snapshot follows alphabetically.
_PREFERRED_HISTOGRAMS = (
    "service.slot",
    "service.decision_s",
    "service.admission_latency_s",
    "scheduler.solve",
    "hybrid.fastpath",
    "hybrid.escalate",
    "service.checkpoint",
)

#: Counters surfaced on the dashboard when present.
_COUNTER_ROWS = (
    "service.submitted",
    "service.admitted",
    "service.rejected",
    "service.backpressure",
    "hybrid.fast_slots",
    "hybrid.escalations",
    "service.checkpoints",
    "slo.breaches",
)


def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.2f}ms"


def render_dashboard(response: Dict[str, Any]) -> str:
    """One dashboard frame for a ``metrics`` op response dict."""
    stats = response.get("stats", {})
    slo = response.get("slo", {})
    snapshot = response.get("snapshot", {})
    wall = response.get("wall", {})
    lines: List[str] = []

    lines.append(
        f"postcard broker — {stats.get('endpoint', '?')} "
        f"scheduler={stats.get('scheduler', '?')} "
        f"slot={stats.get('next_slot', '?')} "
        f"queue={stats.get('queue_depth', '?')}/{stats.get('max_queue', '?')}"
    )
    lines.append(
        f"submitted={stats.get('submitted', 0)} "
        f"admitted={stats.get('admitted', 0)} "
        f"rejected={stats.get('rejected', 0)} "
        f"backpressured={stats.get('backpressured', 0)} "
        f"cost/slot={stats.get('cost_per_slot', 0.0)} "
        f"draining={stats.get('draining', False)}"
    )
    if wall:
        lines.append(
            f"wall: slot {wall.get('next_slot', '?')} ~ "
            f"{time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(wall.get('next_slot_wall_ts', 0.0)))} "
            f"({wall.get('slot_wall_seconds', '?')}s per slot)"
        )

    if slo:
        lines.append("")
        lines.append("SLO objectives:")
        rows = []
        for name, state in slo.items():
            rows.append([
                name,
                f"{state['value']:.4f}",
                f"{state['budget']:.4f}",
                state.get("window", 0),
                "ok" if state.get("ok") else "BREACH",
            ])
        lines.append(format_table(
            ["objective", "value", "budget", "window", "state"], rows
        ))

    histograms = snapshot.get("histograms", {})
    if histograms:
        ordered = [n for n in _PREFERRED_HISTOGRAMS if n in histograms]
        ordered += sorted(n for n in histograms if n not in ordered)
        rows = []
        for name in ordered:
            stat = histograms[name]
            if not stat.get("count"):
                continue
            rows.append([
                name,
                stat["count"],
                _ms(stat["p50"]),
                _ms(stat["p90"]),
                _ms(stat["p99"]),
                _ms(stat["max"]),
            ])
        if rows:
            lines.append("")
            lines.append("latency (p50/p90/p99/max):")
            lines.append(format_table(
                ["stage", "count", "p50", "p90", "p99", "max"], rows
            ))

    counters = snapshot.get("counters", {})
    rows = [
        [name, counters[name]["total"]]
        for name in _COUNTER_ROWS
        if name in counters
    ]
    if rows:
        lines.append("")
        lines.append("counters:")
        lines.append(format_table(["counter", "total"], rows))

    gauges = snapshot.get("gauges", {})
    active = gauges.get("service.connections.active")
    if active is not None:
        lines.append(
            f"connections: active={active['last']:.0f} "
            f"(peak {active['max']:.0f})"
        )
    return "\n".join(lines) + "\n"


async def run_watch(
    *,
    host: str = "127.0.0.1",
    port: int = 7411,
    socket_path: Optional[str] = None,
    interval_s: float = 1.0,
    iterations: int = 0,
    clear: bool = True,
    write: Callable[[str], Any] = print,
) -> int:
    """Poll the daemon's ``metrics`` op and render dashboard frames.

    ``iterations=0`` runs until the connection drops (daemon drained)
    or the caller interrupts; otherwise exactly that many frames are
    rendered — what tests and one-shot ``--once`` invocations use.
    Returns the number of frames rendered.
    """
    conn = await _Connection.open(host, port, socket_path)
    frames = 0
    try:
        while True:
            response = await conn.call({"op": "metrics"})
            if not response.get("ok"):
                raise ServiceError(
                    f"metrics op refused: {response.get('message', response)}"
                )
            frame = render_dashboard(response)
            write((CLEAR if clear else "") + frame)
            frames += 1
            if iterations and frames >= iterations:
                return frames
            await asyncio.sleep(interval_s)
    except ServiceError:
        if frames == 0:
            raise
        return frames
    finally:
        await conn.close()
