"""The time-slotted simulator driving schedulers over workloads."""

from repro.sim.engine import Simulation
from repro.sim.faults import FaultModel, Outage
from repro.sim.metrics import SimulationResult, SlotRecord
from repro.sim.parallel import (
    FaultSpec,
    RunTask,
    run_comparison_parallel,
    run_tasks,
)
from repro.sim.recovery import RecoveryManager, SlotDisruption
from repro.sim.runner import ExperimentSetting, SchedulerComparison, run_comparison

__all__ = [
    "Simulation",
    "SimulationResult",
    "SlotRecord",
    "ExperimentSetting",
    "SchedulerComparison",
    "run_comparison",
    "run_comparison_parallel",
    "run_tasks",
    "RunTask",
    "FaultSpec",
    "FaultModel",
    "Outage",
    "RecoveryManager",
    "SlotDisruption",
]
