"""The simulation engine: slot loop, auditing, metric collection.

Timing is attributed per stage through :mod:`repro.obs` spans:
``sim.scheduler`` (the scheduler's own decision time, what
``SlotRecord.solve_seconds`` reports), ``sim.record`` (the engine's
metric bookkeeping, previously invisible), and ``sim.audit`` (the
post-run ledger cross-check).  The spans always measure — the numbers
land in the result even without a sink — and additionally stream to
any attached sink for ``--profile`` / ``--obs-jsonl`` runs.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.core.interfaces import Scheduler
from repro.obs import registry as obs
from repro.sim.metrics import SimulationResult, SlotRecord
from repro.traffic.workload import Workload
from repro.units import VOLUME_ATOL


class Simulation:
    """Drive one scheduler over one workload for a span of slots.

    Per slot: pull the released files from the workload, hand them to
    the scheduler (which commits its decisions into its own
    :class:`~repro.core.state.NetworkState`), and record metrics.
    After the loop, the engine audits the scheduler's ledger — aggregate
    capacity on every used link-slot, and deadline compliance of every
    completion — so a buggy scheduler cannot silently report good
    numbers.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        workload: Workload,
        num_slots: int,
        slots_per_period: int = 0,
        start_slot: int = 0,
    ):
        """``slots_per_period > 0`` splits the run into independent
        charging periods: at every boundary the scheduler's paid peaks
        expire (see :meth:`NetworkState.start_new_period`), and the
        result carries per-period bills.  The paper's setting is a
        single period (the default).

        ``start_slot > 0`` resumes a run mid-window (the checkpoint
        workflow: restore the scheduler's state from a snapshot, then
        drive the remaining slots).  Completions restored from before
        ``start_slot`` are not re-audited for lateness — their requests
        were released outside this engine's window."""
        if num_slots < 1:
            raise SimulationError(f"num_slots must be >= 1, got {num_slots}")
        if slots_per_period < 0:
            raise SimulationError("slots_per_period must be non-negative")
        if not 0 <= start_slot < num_slots:
            raise SimulationError(
                f"start_slot must be in [0, {num_slots}), got {start_slot}"
            )
        self.scheduler = scheduler
        self.workload = workload
        self.num_slots = num_slots
        self.slots_per_period = slots_per_period
        self.start_slot = start_slot

    def run(self, audit: bool = True) -> SimulationResult:
        with obs.span(
            "sim.run", scheduler=self.scheduler.name, slots=self.num_slots
        ):
            return self._run(audit)

    def _run(self, audit: bool) -> SimulationResult:
        result = SimulationResult(
            scheduler_name=self.scheduler.name, num_slots=self.num_slots
        )
        deadlines = {}

        # Surprise outages need execution-time detection: the recovery
        # manager shadows every commitment and, after each slot, voids
        # traffic that rode a dead link-slot and salvages the files.
        # Announced-only (or absent) fault models take the fast path —
        # the engine then behaves bit-identically to a fault-free run.
        fault_model = getattr(self.scheduler.state, "fault_model", None)
        recovery = None
        if fault_model is not None and getattr(fault_model, "has_surprise", False):
            from repro.sim.recovery import RecoveryManager

            recovery = RecoveryManager(self.scheduler, fault_model)

        for slot in range(self.start_slot, self.num_slots):
            if (
                self.slots_per_period
                and slot > 0
                and slot % self.slots_per_period == 0
            ):
                bill = self.scheduler.state.start_new_period(slot)
                result.period_bills.append(bill)
            requests = self.workload.requests_at(slot)
            for request in requests:
                deadlines[request.request_id] = request.last_slot

            obs.counter("sim.requests", len(requests))
            rejected_before = len(self.scheduler.state.rejected)
            with obs.timed_span(
                "sim.scheduler", slot=slot, scheduler=self.scheduler.name
            ) as sched_span:
                schedule = self.scheduler.on_slot(slot, requests)
            elapsed = sched_span.seconds
            rejected_now = len(self.scheduler.state.rejected) - rejected_before

            disruption = None
            if recovery is not None:
                recovery.observe(slot, requests, schedule)
                disruption = recovery.execute_slot(slot)

            with obs.timed_span("sim.record", slot=slot) as record_span:
                requested_gb = sum(r.size_gb for r in requests)
                transit_gb = schedule.total_transit_volume()
                storage_gb = schedule.total_storage_volume()
                cost_after = self.scheduler.state.current_cost_per_slot()
            record = SlotRecord(
                slot=slot,
                num_requests=len(requests),
                num_rejected=rejected_now,
                requested_gb=requested_gb,
                scheduled_transit_gb=transit_gb,
                scheduled_storage_gb=storage_gb,
                cost_per_slot_after=cost_after,
                solve_seconds=elapsed,
                overhead_seconds=record_span.seconds,
            )
            if disruption is not None and disruption.any:
                record.disrupted_gb = disruption.disrupted_gb
                record.salvaged_gb = disruption.salvaged_gb
                record.lost_gb = disruption.lost_gb
                record.deadline_misses = disruption.deadline_misses
            result.slots.append(record)
            result.total_requests += len(requests)
            result.total_rejected += rejected_now
            result.total_requested_gb += requested_gb
            result.total_transit_gb += transit_gb
            result.total_storage_gb_slots += storage_gb
            result.solve_seconds_total += elapsed
            result.overhead_seconds_total += record_span.seconds

        state = self.scheduler.state
        result.final_cost_per_slot = state.current_cost_per_slot()
        result.free_ride_fraction = state.ledger.free_ride_fraction()
        # Hybrid schedulers expose their lane split; every other
        # scheduler leaves both at zero (same duck-typed pattern as
        # fault_model above).
        result.escalations = getattr(self.scheduler, "escalations", 0)
        result.fast_slots = getattr(self.scheduler, "fast_slots", 0)
        forecast = getattr(self.scheduler, "forecast", None)
        if forecast is not None:
            result.forecast = forecast.stats()
        self._deadlines = deadlines
        if self.slots_per_period:
            # Close the trailing (possibly partial) period, extended to
            # cover in-flight transfers still draining.
            tail_end = max(
                state.period_start + self.slots_per_period,
                self.num_slots,
            )
            result.period_bills.append(
                state.ledger.period_cost(state.period_start, tail_end)
            )
        if recovery is not None:
            result.disrupted_gb = recovery.disrupted_gb
            result.salvaged_gb = recovery.salvaged_gb
            result.lost_gb = recovery.lost_gb
            result.deadline_misses = recovery.deadline_misses
            result.recovery_replans = recovery.replans
            result.slo_violations = sorted(recovery.slo_violations)

        for request_id, completed_at in state.completions.items():
            deadline = deadlines.get(request_id)
            if deadline is None:
                if self.start_slot > 0:
                    # Restored from a checkpoint: the file was released
                    # (and audited) before this engine's window began.
                    continue
                raise SimulationError(
                    f"scheduler completed unknown file {request_id}"
                )
            result.lateness[request_id] = max(0, completed_at - deadline)

        if audit:
            with obs.timed_span(
                "sim.audit", scheduler=self.scheduler.name
            ) as audit_span:
                self._audit(result)
            result.audit_seconds = audit_span.seconds
        return result

    def _audit(self, result: SimulationResult) -> None:
        """Cross-check the scheduler's ledger against hard constraints.

        Traffic voided by surprise outages has already been refunded
        from the ledger, so the capacity check naturally sees only what
        physically flowed.
        """
        state = self.scheduler.state
        ledger = state.ledger
        link_schedule = getattr(state, "link_schedule", None)
        for src, dst in ledger.used_links():
            capacity = state.topology.link(src, dst).capacity
            usage = ledger.usage(src, dst)
            for slot, volume in usage.volumes.items():
                if volume > capacity + max(VOLUME_ATOL, 1e-6 * capacity):
                    raise SimulationError(
                        f"audit: link ({src},{dst}) carries {volume:.6f} GB at "
                        f"slot {slot}, over capacity {capacity:.6f}"
                    )
                if (
                    link_schedule is not None
                    and volume > VOLUME_ATOL
                    and not link_schedule.is_up(src, dst, slot)
                ):
                    raise SimulationError(
                        f"audit: link ({src},{dst}) carries {volume:.6f} GB at "
                        f"slot {slot}, outside its availability windows"
                    )
        late = {rid: l for rid, l in result.lateness.items() if l > 0}
        if late:
            raise SimulationError(f"audit: files completed late: {late}")
        # Every released file must be completed or rejected — except
        # files whose deadline extends past the simulated window, which
        # a replanning scheduler may legitimately still be draining,
        # and files already booked as SLO violations by the recovery
        # layer (their loss is the recorded outcome, not a bug).
        accounted = set(state.completions) | {
            r.request_id for r in state.rejected
        }
        accounted.update(result.slo_violations)
        unaccounted = [
            rid
            for rid, deadline in self._deadlines.items()
            if rid not in accounted and deadline < self.num_slots
        ]
        if unaccounted:
            raise SimulationError(
                f"audit: files neither completed nor rejected despite "
                f"in-window deadlines: {sorted(unaccounted)}"
            )
